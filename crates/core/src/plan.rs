//! Physical query plans and the plan builder.
//!
//! A [`QueryPlan`] is a tree of physical operators built bottom-up with
//! [`PlanBuilder`]. The paper studies the *scheduler phase* — it assumes the
//! optimizer has already produced a plan — so plans here are constructed
//! explicitly (the `uot-tpch` crate hand-builds the TPC-H plans).
//!
//! Each operator carries the [`Uot`] of its **input edge**: how many blocks
//! its producer must accumulate before the scheduler hands them over.

use crate::error::EngineError;
use crate::topology::PlanTopology;
use crate::uot::Uot;
use crate::Result;
use std::sync::Arc;
use uot_expr::{AggSpec, CmpOp, Predicate, ScalarExpr};
use uot_storage::{DataType, Schema, Table};

/// Identifier of an operator within one plan (its index).
pub type OpId = usize;

/// Where an operator's streamed input comes from.
#[derive(Debug, Clone)]
pub enum Source {
    /// A base table in the catalog (all blocks available at query start).
    Table(Arc<Table>),
    /// The output stream of an upstream operator.
    Op(OpId),
}

/// Hash-join variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Emit probe ⨝ build combinations.
    Inner,
    /// Emit probe rows with at least one match (e.g. `EXISTS`).
    Semi,
    /// Emit probe rows with no match (e.g. `NOT EXISTS`).
    Anti,
}

/// One sort key: column index of the operator's input and direction.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    /// Input column to sort by.
    pub col: usize,
    /// Descending order when true.
    pub desc: bool,
}

impl SortKey {
    /// Ascending key on `col`.
    pub fn asc(col: usize) -> Self {
        SortKey { col, desc: false }
    }

    /// Descending key on `col`.
    pub fn desc(col: usize) -> Self {
        SortKey { col, desc: true }
    }
}

/// One Lookahead Information Passing filter attached to a select: rows
/// whose `key_cols` (of the select's *input*) are definitely absent from
/// the referenced build's Bloom filter are dropped at the scan — before
/// they are materialized, transferred, or probed (Zhu et al. \[42\], used by
/// the paper in Sections VI-C and VII-B7).
#[derive(Debug, Clone)]
pub struct LipFilter {
    /// The `BuildHash` operator whose Bloom filter is consulted.
    pub build: OpId,
    /// Key columns of the select's input matching the build's key.
    pub key_cols: Vec<usize>,
}

/// The physical operator algebra.
#[derive(Debug, Clone)]
pub enum OperatorKind {
    /// Filter + project in one pass (Quickstep's "select work order").
    Select {
        /// Input stream.
        source: Source,
        /// Row filter.
        predicate: Predicate,
        /// Output expressions (often bare column refs).
        projections: Vec<ScalarExpr>,
        /// LIP filters to consult (empty = none). The select cannot start
        /// before the referenced builds finish.
        lip: Vec<LipFilter>,
    },
    /// Build a join hash table over the input stream. Produces a hash table,
    /// not blocks; its single consumer must be a `Probe`.
    BuildHash {
        /// Input stream (the build side).
        source: Source,
        /// Key columns of the input.
        key_cols: Vec<usize>,
        /// Input columns stored as the hash-table payload.
        payload_cols: Vec<usize>,
    },
    /// Probe a hash table with the input stream (the paper's canonical
    /// consumer operator).
    Probe {
        /// Probe-side input stream.
        probe: Source,
        /// The `BuildHash` operator whose table is probed.
        build: OpId,
        /// Key columns of the probe input.
        probe_key_cols: Vec<usize>,
        /// Probe-side columns to emit.
        probe_out_cols: Vec<usize>,
        /// Payload columns (indices into the build payload) to emit; must be
        /// empty for semi/anti joins.
        build_out_cols: Vec<usize>,
        /// Join variant.
        join: JoinType,
    },
    /// Hash aggregation with optional grouping. Streams its input; emits all
    /// groups at finalize (inherently blocking on the output side).
    Aggregate {
        /// Input stream.
        source: Source,
        /// Grouping columns of the input.
        group_by: Vec<usize>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
    /// Full sort of the input (blocking), with optional `LIMIT`.
    Sort {
        /// Input stream.
        source: Source,
        /// Sort keys, most significant first.
        keys: Vec<SortKey>,
        /// Keep only the first `n` rows if set.
        limit: Option<usize>,
    },
    /// Nested-loops join: the `right` side is materialized in full, then each
    /// left block joins against it under conjunctive column comparisons.
    NestedLoops {
        /// Streamed (outer) side.
        left: Source,
        /// Materialized (inner) side.
        right: OpId,
        /// Join conditions: `left[col] op right[col]`, all must hold.
        conds: Vec<(usize, CmpOp, usize)>,
        /// Left columns to emit.
        left_out: Vec<usize>,
        /// Right columns to emit.
        right_out: Vec<usize>,
    },
    /// Pass through the first `n` rows.
    Limit {
        /// Input stream.
        source: Source,
        /// Row budget.
        n: usize,
    },
}

impl OperatorKind {
    /// The streamed input of this operator (the edge the UoT applies to).
    pub fn stream_source(&self) -> &Source {
        match self {
            OperatorKind::Select { source, .. }
            | OperatorKind::BuildHash { source, .. }
            | OperatorKind::Aggregate { source, .. }
            | OperatorKind::Sort { source, .. }
            | OperatorKind::Limit { source, .. } => source,
            OperatorKind::Probe { probe, .. } => probe,
            OperatorKind::NestedLoops { left, .. } => left,
        }
    }

    /// Upstream operators whose *data* this one owns exclusively, besides
    /// the streamed source: the build side of a probe and the materialized
    /// side of an NLJ. (Used for single-consumer plan validation.)
    pub fn blocking_deps(&self) -> Vec<OpId> {
        match self {
            OperatorKind::Probe { build, .. } => vec![*build],
            OperatorKind::NestedLoops { right, .. } => vec![*right],
            _ => vec![],
        }
    }

    /// All upstream operators that must finish before this operator's work
    /// orders may start: the data dependencies plus any LIP filter sources
    /// (a select may read the Bloom filters of several builds without
    /// consuming them).
    pub fn scheduling_deps(&self) -> Vec<OpId> {
        let mut deps = self.blocking_deps();
        if let OperatorKind::Select { lip, .. } = self {
            deps.extend(lip.iter().map(|l| l.build));
        }
        deps
    }

    /// Short kind label for metrics and schedule dumps.
    pub fn kind_label(&self) -> &'static str {
        match self {
            OperatorKind::Select { .. } => "select",
            OperatorKind::BuildHash { .. } => "build",
            OperatorKind::Probe { .. } => "probe",
            OperatorKind::Aggregate { .. } => "aggregate",
            OperatorKind::Sort { .. } => "sort",
            OperatorKind::NestedLoops { .. } => "nlj",
            OperatorKind::Limit { .. } => "limit",
        }
    }
}

/// One operator in a plan.
#[derive(Debug, Clone)]
pub struct Operator {
    /// The physical algorithm.
    pub kind: OperatorKind,
    /// Display name (auto-generated, overridable).
    pub name: String,
    /// UoT of this operator's input edge; `None` uses the engine default.
    pub uot: Option<Uot>,
    /// Schema of this operator's output blocks. For `BuildHash` this is the
    /// payload schema (what the hash table stores).
    pub out_schema: Arc<Schema>,
}

/// A validated physical plan.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    ops: Vec<Operator>,
    sink: OpId,
    /// Indexed adjacency (consumers, reverse scheduling dependencies,
    /// critical-path flags), precomputed at build time.
    topology: PlanTopology,
}

impl QueryPlan {
    /// All operators, indexed by [`OpId`].
    pub fn ops(&self) -> &[Operator] {
        &self.ops
    }

    /// The operator whose output is the query result.
    pub fn sink(&self) -> OpId {
        self.sink
    }

    /// The single consumer of operator `id`, if any.
    pub fn consumer_of(&self, id: OpId) -> Option<OpId> {
        self.topology.consumer_of(id)
    }

    /// The precomputed plan topology (consumers, reverse dependencies,
    /// critical-path flags).
    pub fn topology(&self) -> &PlanTopology {
        &self.topology
    }

    /// The operator at `id`.
    pub fn op(&self, id: OpId) -> &Operator {
        &self.ops[id]
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Schema of the blocks streamed into operator `id` (the base table's
    /// schema, or the upstream operator's output schema).
    pub fn input_schema(&self, id: OpId) -> Arc<Schema> {
        match self.op(id).kind.stream_source() {
            Source::Table(t) => t.schema().clone(),
            Source::Op(src) => self.op(*src).out_schema.clone(),
        }
    }

    /// True for a plan with no operators (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Schema of the query result.
    pub fn result_schema(&self) -> &Arc<Schema> {
        &self.ops[self.sink].out_schema
    }

    /// Override the input-edge UoT of every operator (experiment sweeps).
    /// `Uot::Blocks(0)` is normalized to `Blocks(1)`.
    pub fn with_uniform_uot(mut self, uot: Uot) -> QueryPlan {
        for op in &mut self.ops {
            op.uot = Some(uot.normalized());
        }
        self
    }

    /// Override the input-edge UoT of one operator. `Uot::Blocks(0)` is
    /// normalized to `Blocks(1)`.
    pub fn with_op_uot(mut self, id: OpId, uot: Uot) -> QueryPlan {
        self.ops[id].uot = Some(uot.normalized());
        self
    }
}

/// Bottom-up plan constructor. Each method validates its arguments eagerly
/// and returns the new operator's [`OpId`].
#[derive(Debug, Default)]
pub struct PlanBuilder {
    ops: Vec<Operator>,
}

impl PlanBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        PlanBuilder { ops: Vec::new() }
    }

    fn source_schema(&self, s: &Source) -> Result<Arc<Schema>> {
        match s {
            Source::Table(t) => Ok(t.schema().clone()),
            Source::Op(id) => {
                if *id >= self.ops.len() {
                    return Err(EngineError::InvalidOperatorRef {
                        referenced: *id,
                        by: self.ops.len(),
                    });
                }
                if matches!(self.ops[*id].kind, OperatorKind::BuildHash { .. }) {
                    return Err(EngineError::InvalidPlan(format!(
                        "operator {} consumes the block stream of a BuildHash; \
                         hash tables are only consumable by Probe",
                        self.ops.len()
                    )));
                }
                Ok(self.ops[*id].out_schema.clone())
            }
        }
    }

    fn source_label(&self, s: &Source) -> String {
        match s {
            Source::Table(t) => t.name().to_string(),
            Source::Op(id) => format!("#{id}"),
        }
    }

    fn check_cols(&self, cols: &[usize], schema: &Schema, by: usize) -> Result<()> {
        for &c in cols {
            if c >= schema.len() {
                return Err(EngineError::Expr(uot_expr::ExprError::ColumnOutOfRange {
                    index: c,
                    len: schema.len(),
                }));
            }
        }
        let _ = by;
        Ok(())
    }

    fn push(&mut self, kind: OperatorKind, name: String, out_schema: Arc<Schema>) -> OpId {
        let id = self.ops.len();
        self.ops.push(Operator {
            kind,
            name,
            uot: None,
            out_schema,
        });
        id
    }

    /// Add a select (filter + project) over `source`.
    pub fn select(
        &mut self,
        source: Source,
        predicate: Predicate,
        projections: Vec<ScalarExpr>,
        out_names: &[&str],
    ) -> Result<OpId> {
        let in_schema = self.source_schema(&source)?;
        if projections.is_empty() {
            return Err(EngineError::InvalidPlan(
                "select with no projections".into(),
            ));
        }
        if out_names.len() != projections.len() {
            return Err(EngineError::InvalidPlan(format!(
                "select has {} projections but {} output names",
                projections.len(),
                out_names.len()
            )));
        }
        let mut cols = Vec::new();
        predicate.referenced_columns(&mut cols);
        for p in &projections {
            p.referenced_columns(&mut cols);
        }
        self.check_cols(&cols, &in_schema, self.ops.len())?;
        let out_types: Vec<DataType> = projections
            .iter()
            .map(|p| p.output_type(&in_schema).map_err(EngineError::from))
            .collect::<Result<_>>()?;
        let out_schema = Schema::from_pairs(
            &out_names
                .iter()
                .zip(&out_types)
                .map(|(n, t)| (*n, *t))
                .collect::<Vec<_>>(),
        );
        let name = format!("select({})", self.source_label(&source));
        Ok(self.push(
            OperatorKind::Select {
                source,
                predicate,
                projections,
                lip: Vec::new(),
            },
            name,
            out_schema,
        ))
    }

    /// Add a select that keeps all columns of `source` (pure filter).
    pub fn filter(&mut self, source: Source, predicate: Predicate) -> Result<OpId> {
        let in_schema = self.source_schema(&source)?;
        let projections: Vec<ScalarExpr> = (0..in_schema.len()).map(uot_expr::col).collect();
        let names: Vec<&str> = in_schema
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        self.select(source, predicate, projections, &names)
    }

    /// Attach LIP filters to a previously-added select: rows whose
    /// `key_cols` are definitely absent from `build`'s Bloom filter are
    /// dropped at the scan. The select then waits for those builds before
    /// starting (they are *scheduling* dependencies, not data consumers, so
    /// a build can serve its probe and several LIP readers at once).
    pub fn add_lip(&mut self, select: OpId, build: OpId, key_cols: Vec<usize>) -> Result<()> {
        if build >= self.ops.len() || select >= self.ops.len() {
            return Err(EngineError::InvalidOperatorRef {
                referenced: build.max(select),
                by: select,
            });
        }
        // Builders assign ids bottom-up; requiring build < select statically
        // rules out wait-for cycles (a build can never transitively stream
        // from a select that waits for it).
        if build >= select {
            return Err(EngineError::InvalidPlan(format!(
                "LIP source {build} must be built before select {select}"
            )));
        }
        let build_key_arity = match &self.ops[build].kind {
            OperatorKind::BuildHash { key_cols, .. } => key_cols.len(),
            _ => {
                return Err(EngineError::InvalidPlan(format!(
                    "LIP source {build} is not a BuildHash"
                )))
            }
        };
        if key_cols.len() != build_key_arity {
            return Err(EngineError::InvalidPlan(format!(
                "LIP key arity {} != build key arity {build_key_arity}",
                key_cols.len()
            )));
        }
        let in_schema = match &self.ops[select].kind {
            OperatorKind::Select { source, .. } => match source {
                Source::Table(t) => t.schema().clone(),
                Source::Op(id) => self.ops[*id].out_schema.clone(),
            },
            _ => {
                return Err(EngineError::InvalidPlan(format!(
                    "operator {select} is not a Select; LIP attaches to selects"
                )))
            }
        };
        self.check_cols(&key_cols, &in_schema, select)?;
        for &k in &key_cols {
            if !in_schema.dtype(k).hashable() {
                return Err(EngineError::Storage(
                    uot_storage::StorageError::UnhashableType(in_schema.dtype(k).name()),
                ));
            }
        }
        if let OperatorKind::Select { lip, .. } = &mut self.ops[select].kind {
            lip.push(LipFilter { build, key_cols });
        }
        Ok(())
    }

    /// Add a hash-table build over `source`.
    pub fn build_hash(
        &mut self,
        source: Source,
        key_cols: Vec<usize>,
        payload_cols: Vec<usize>,
    ) -> Result<OpId> {
        let in_schema = self.source_schema(&source)?;
        if key_cols.is_empty() {
            return Err(EngineError::InvalidPlan("build_hash with no key".into()));
        }
        self.check_cols(&key_cols, &in_schema, self.ops.len())?;
        self.check_cols(&payload_cols, &in_schema, self.ops.len())?;
        for &k in &key_cols {
            if !in_schema.dtype(k).hashable() {
                return Err(EngineError::Storage(
                    uot_storage::StorageError::UnhashableType(in_schema.dtype(k).name()),
                ));
            }
        }
        let payload_schema = in_schema.project(&payload_cols);
        let name = format!("build({})", self.source_label(&source));
        Ok(self.push(
            OperatorKind::BuildHash {
                source,
                key_cols,
                payload_cols,
            },
            name,
            payload_schema,
        ))
    }

    /// Add a probe of `build`'s hash table, streaming `probe`.
    #[allow(clippy::too_many_arguments)]
    pub fn probe(
        &mut self,
        probe: Source,
        build: OpId,
        probe_key_cols: Vec<usize>,
        probe_out_cols: Vec<usize>,
        build_out_cols: Vec<usize>,
        join: JoinType,
    ) -> Result<OpId> {
        let probe_schema = self.source_schema(&probe)?;
        if build >= self.ops.len() {
            return Err(EngineError::InvalidOperatorRef {
                referenced: build,
                by: self.ops.len(),
            });
        }
        let payload_schema = match &self.ops[build].kind {
            OperatorKind::BuildHash { key_cols, .. } => {
                if key_cols.len() != probe_key_cols.len() {
                    return Err(EngineError::InvalidPlan(format!(
                        "probe key arity {} != build key arity {}",
                        probe_key_cols.len(),
                        key_cols.len()
                    )));
                }
                self.ops[build].out_schema.clone()
            }
            _ => {
                return Err(EngineError::InvalidPlan(format!(
                    "operator {build} is not a BuildHash"
                )))
            }
        };
        self.check_cols(&probe_key_cols, &probe_schema, self.ops.len())?;
        self.check_cols(&probe_out_cols, &probe_schema, self.ops.len())?;
        self.check_cols(&build_out_cols, &payload_schema, self.ops.len())?;
        for &k in &probe_key_cols {
            if !probe_schema.dtype(k).hashable() {
                return Err(EngineError::Storage(
                    uot_storage::StorageError::UnhashableType(probe_schema.dtype(k).name()),
                ));
            }
        }
        if join != JoinType::Inner && !build_out_cols.is_empty() {
            return Err(EngineError::InvalidPlan(
                "semi/anti joins cannot emit build-side columns".into(),
            ));
        }
        let out_schema = probe_schema
            .project(&probe_out_cols)
            .join(&payload_schema, &build_out_cols);
        let name = format!("probe({})", self.source_label(&probe));
        Ok(self.push(
            OperatorKind::Probe {
                probe,
                build,
                probe_key_cols,
                probe_out_cols,
                build_out_cols,
                join,
            },
            name,
            out_schema,
        ))
    }

    /// Add a hash aggregation over `source`.
    pub fn aggregate(
        &mut self,
        source: Source,
        group_by: Vec<usize>,
        aggs: Vec<AggSpec>,
        agg_names: &[&str],
    ) -> Result<OpId> {
        let in_schema = self.source_schema(&source)?;
        if aggs.is_empty() {
            return Err(EngineError::InvalidPlan(
                "aggregate with no aggregates".into(),
            ));
        }
        if aggs.len() != agg_names.len() {
            return Err(EngineError::InvalidPlan(format!(
                "aggregate has {} aggs but {} names",
                aggs.len(),
                agg_names.len()
            )));
        }
        self.check_cols(&group_by, &in_schema, self.ops.len())?;
        for &g in &group_by {
            if !in_schema.dtype(g).hashable() {
                return Err(EngineError::Storage(
                    uot_storage::StorageError::UnhashableType(in_schema.dtype(g).name()),
                ));
            }
        }
        let mut pairs: Vec<(String, DataType)> = group_by
            .iter()
            .map(|&g| (in_schema.column(g).name.clone(), in_schema.dtype(g)))
            .collect();
        for (spec, name) in aggs.iter().zip(agg_names) {
            pairs.push((
                name.to_string(),
                spec.output_type(&in_schema).map_err(EngineError::from)?,
            ));
        }
        let out_schema = Schema::from_pairs(
            &pairs
                .iter()
                .map(|(n, t)| (n.as_str(), *t))
                .collect::<Vec<_>>(),
        );
        let name = format!("aggregate({})", self.source_label(&source));
        Ok(self.push(
            OperatorKind::Aggregate {
                source,
                group_by,
                aggs,
            },
            name,
            out_schema,
        ))
    }

    /// Add a sort (with optional limit) over `source`.
    pub fn sort(
        &mut self,
        source: Source,
        keys: Vec<SortKey>,
        limit: Option<usize>,
    ) -> Result<OpId> {
        let in_schema = self.source_schema(&source)?;
        if keys.is_empty() {
            return Err(EngineError::InvalidPlan("sort with no keys".into()));
        }
        let cols: Vec<usize> = keys.iter().map(|k| k.col).collect();
        self.check_cols(&cols, &in_schema, self.ops.len())?;
        let name = format!("sort({})", self.source_label(&source));
        Ok(self.push(
            OperatorKind::Sort {
                source,
                keys,
                limit,
            },
            name,
            in_schema,
        ))
    }

    /// Add a nested-loops join with the `right` operator's output fully
    /// materialized.
    pub fn nested_loops(
        &mut self,
        left: Source,
        right: OpId,
        conds: Vec<(usize, CmpOp, usize)>,
        left_out: Vec<usize>,
        right_out: Vec<usize>,
    ) -> Result<OpId> {
        let left_schema = self.source_schema(&left)?;
        if right >= self.ops.len() {
            return Err(EngineError::InvalidOperatorRef {
                referenced: right,
                by: self.ops.len(),
            });
        }
        if matches!(self.ops[right].kind, OperatorKind::BuildHash { .. }) {
            return Err(EngineError::InvalidPlan(
                "nested loops cannot consume a BuildHash".into(),
            ));
        }
        let right_schema = self.ops[right].out_schema.clone();
        let lcols: Vec<usize> = conds.iter().map(|c| c.0).collect();
        let rcols: Vec<usize> = conds.iter().map(|c| c.2).collect();
        self.check_cols(&lcols, &left_schema, self.ops.len())?;
        self.check_cols(&rcols, &right_schema, self.ops.len())?;
        self.check_cols(&left_out, &left_schema, self.ops.len())?;
        self.check_cols(&right_out, &right_schema, self.ops.len())?;
        let out_schema = left_schema
            .project(&left_out)
            .join(&right_schema, &right_out);
        let name = format!("nlj({})", self.source_label(&left));
        Ok(self.push(
            OperatorKind::NestedLoops {
                left,
                right,
                conds,
                left_out,
                right_out,
            },
            name,
            out_schema,
        ))
    }

    /// Add a limit over `source`.
    pub fn limit(&mut self, source: Source, n: usize) -> Result<OpId> {
        let in_schema = self.source_schema(&source)?;
        let name = format!("limit({})", self.source_label(&source));
        Ok(self.push(OperatorKind::Limit { source, n }, name, in_schema))
    }

    /// Rename an operator (for nicer metrics output).
    pub fn rename(&mut self, id: OpId, name: impl Into<String>) {
        self.ops[id].name = name.into();
    }

    /// Set the input-edge UoT of an operator. `Uot::Blocks(0)` is normalized
    /// to `Blocks(1)`.
    pub fn set_uot(&mut self, id: OpId, uot: Uot) {
        self.ops[id].uot = Some(uot.normalized());
    }

    /// Finish the plan with `sink` as the result operator.
    pub fn build(self, sink: OpId) -> Result<QueryPlan> {
        if sink >= self.ops.len() {
            return Err(EngineError::InvalidOperatorRef {
                referenced: sink,
                by: sink,
            });
        }
        if matches!(self.ops[sink].kind, OperatorKind::BuildHash { .. }) {
            return Err(EngineError::InvalidPlan(
                "a BuildHash cannot be the sink".into(),
            ));
        }
        let mut consumers: Vec<Option<OpId>> = vec![None; self.ops.len()];
        for (id, op) in self.ops.iter().enumerate() {
            let mut record = |src: OpId| -> Result<()> {
                if consumers[src].is_some() {
                    return Err(EngineError::InvalidPlan(format!(
                        "operator {src} is consumed by more than one operator"
                    )));
                }
                consumers[src] = Some(id);
                Ok(())
            };
            if let Source::Op(src) = op.kind.stream_source() {
                record(*src)?;
            }
            for dep in op.kind.blocking_deps() {
                record(dep)?;
            }
        }
        // Every non-sink operator must be consumed exactly once.
        for (id, c) in consumers.iter().enumerate() {
            if id != sink && c.is_none() {
                return Err(EngineError::InvalidPlan(format!(
                    "operator {id} ({}) has no consumer and is not the sink",
                    self.ops[id].name
                )));
            }
        }
        if consumers[sink].is_some() {
            return Err(EngineError::InvalidPlan(
                "the sink operator must not have a consumer".into(),
            ));
        }
        // Normalize degenerate UoT overrides here so downstream code never
        // sees a zero threshold.
        let mut ops = self.ops;
        for op in &mut ops {
            op.uot = op.uot.map(Uot::normalized);
        }
        let topology = PlanTopology::compute(&ops, consumers);
        Ok(QueryPlan {
            ops,
            sink,
            topology,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uot_expr::{cmp, col, lit, CmpOp};
    use uot_storage::{BlockFormat, TableBuilder, Value};

    fn table(name: &str, rows: i32) -> Arc<Table> {
        let s = Schema::from_pairs(&[
            ("k", DataType::Int32),
            ("v", DataType::Float64),
            ("d", DataType::Date),
        ]);
        let mut tb = TableBuilder::new(name, s, BlockFormat::Column, 256);
        for i in 0..rows {
            tb.append(&[Value::I32(i), Value::F64(i as f64), Value::Date(i)])
                .unwrap();
        }
        Arc::new(tb.finish())
    }

    #[test]
    fn simple_select_plan() {
        let t = table("t", 10);
        let mut pb = PlanBuilder::new();
        let s = pb
            .select(
                Source::Table(t),
                cmp(col(0), CmpOp::Lt, lit(5i32)),
                vec![col(0), col(1)],
                &["k", "v"],
            )
            .unwrap();
        let plan = pb.build(s).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.sink(), s);
        assert_eq!(plan.result_schema().len(), 2);
        assert_eq!(plan.consumer_of(s), None);
    }

    #[test]
    fn select_probe_plan_wiring() {
        let build_t = table("dim", 5);
        let probe_t = table("fact", 20);
        let mut pb = PlanBuilder::new();
        let b = pb
            .build_hash(Source::Table(build_t), vec![0], vec![0, 1])
            .unwrap();
        let s = pb
            .filter(Source::Table(probe_t), cmp(col(0), CmpOp::Lt, lit(10i32)))
            .unwrap();
        let p = pb
            .probe(
                Source::Op(s),
                b,
                vec![0],
                vec![0, 2],
                vec![1],
                JoinType::Inner,
            )
            .unwrap();
        let plan = pb.build(p).unwrap();
        assert_eq!(plan.consumer_of(b), Some(p));
        assert_eq!(plan.consumer_of(s), Some(p));
        // probe output: fact.k, fact.d, dim.v
        assert_eq!(plan.result_schema().len(), 3);
        assert_eq!(plan.result_schema().dtype(1), DataType::Date);
        assert_eq!(plan.result_schema().dtype(2), DataType::Float64);
        assert_eq!(plan.op(p).kind.blocking_deps(), vec![b]);
    }

    #[test]
    fn aggregate_schema() {
        let t = table("t", 10);
        let mut pb = PlanBuilder::new();
        let a = pb
            .aggregate(
                Source::Table(t),
                vec![0],
                vec![AggSpec::sum(col(1)), AggSpec::count_star()],
                &["sum_v", "n"],
            )
            .unwrap();
        let plan = pb.build(a).unwrap();
        let s = plan.result_schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.column(0).name, "k");
        assert_eq!(s.dtype(1), DataType::Float64);
        assert_eq!(s.dtype(2), DataType::Int64);
    }

    #[test]
    fn validation_catches_mistakes() {
        let t = table("t", 10);
        let mut pb = PlanBuilder::new();
        // out-of-range key
        assert!(pb
            .build_hash(Source::Table(t.clone()), vec![9], vec![0])
            .is_err());
        // float key
        assert!(pb
            .build_hash(Source::Table(t.clone()), vec![1], vec![0])
            .is_err());
        // empty projections
        assert!(pb
            .select(Source::Table(t.clone()), Predicate::True, vec![], &[])
            .is_err());
        // name/projection mismatch
        assert!(pb
            .select(Source::Table(t.clone()), Predicate::True, vec![col(0)], &[])
            .is_err());
        // sort without keys
        assert!(pb.sort(Source::Table(t.clone()), vec![], None).is_err());
        // probe of non-build
        let s = pb
            .filter(Source::Table(t.clone()), Predicate::True)
            .unwrap();
        assert!(pb
            .probe(
                Source::Table(t.clone()),
                s,
                vec![0],
                vec![0],
                vec![],
                JoinType::Inner
            )
            .is_err());
        // semi join cannot emit build columns
        let b = pb
            .build_hash(Source::Table(t.clone()), vec![0], vec![1])
            .unwrap();
        assert!(pb
            .probe(
                Source::Table(t.clone()),
                b,
                vec![0],
                vec![0],
                vec![0],
                JoinType::Semi
            )
            .is_err());
        // probe/build key arity mismatch
        assert!(pb
            .probe(
                Source::Table(t),
                b,
                vec![0, 2],
                vec![0],
                vec![],
                JoinType::Inner
            )
            .is_err());
    }

    #[test]
    fn build_hash_stream_cannot_be_consumed_as_blocks() {
        let t = table("t", 10);
        let mut pb = PlanBuilder::new();
        let b = pb.build_hash(Source::Table(t), vec![0], vec![0]).unwrap();
        assert!(pb.filter(Source::Op(b), Predicate::True).is_err());
        assert!(pb.build(b).is_err()); // build cannot be the sink
    }

    #[test]
    fn dangling_and_double_consumption_rejected() {
        let t = table("t", 10);
        // dangling operator
        let mut pb = PlanBuilder::new();
        let _orphan = pb
            .filter(Source::Table(t.clone()), Predicate::True)
            .unwrap();
        let s2 = pb
            .filter(Source::Table(t.clone()), Predicate::True)
            .unwrap();
        assert!(pb.build(s2).is_err());

        // double consumption
        let mut pb = PlanBuilder::new();
        let s = pb
            .filter(Source::Table(t.clone()), Predicate::True)
            .unwrap();
        let _c1 = pb.filter(Source::Op(s), Predicate::True).unwrap();
        let c2 = pb.filter(Source::Op(s), Predicate::True).unwrap();
        assert!(pb.build(c2).is_err());
    }

    #[test]
    fn uot_overrides() {
        let t = table("t", 10);
        let mut pb = PlanBuilder::new();
        let s = pb.filter(Source::Table(t), Predicate::True).unwrap();
        pb.set_uot(s, Uot::Blocks(4));
        let plan = pb.build(s).unwrap();
        assert_eq!(plan.op(s).uot, Some(Uot::Blocks(4)));
        let plan = plan.with_uniform_uot(Uot::Table);
        assert_eq!(plan.op(s).uot, Some(Uot::Table));
        let plan = plan.with_op_uot(s, Uot::Blocks(2));
        assert_eq!(plan.op(s).uot, Some(Uot::Blocks(2)));
    }

    #[test]
    fn nested_loops_wiring() {
        let t = table("t", 6);
        let mut pb = PlanBuilder::new();
        let r = pb
            .filter(Source::Table(t.clone()), cmp(col(0), CmpOp::Lt, lit(3i32)))
            .unwrap();
        let j = pb
            .nested_loops(
                Source::Table(t),
                r,
                vec![(0, CmpOp::Gt, 0)],
                vec![0],
                vec![0],
            )
            .unwrap();
        let plan = pb.build(j).unwrap();
        assert_eq!(plan.result_schema().len(), 2);
        assert_eq!(plan.op(j).kind.blocking_deps(), vec![r]);
        assert_eq!(plan.op(j).kind.kind_label(), "nlj");
    }

    #[test]
    fn rename_and_labels() {
        let t = table("t", 3);
        let mut pb = PlanBuilder::new();
        let s = pb.filter(Source::Table(t), Predicate::True).unwrap();
        assert_eq!(pb.ops[s].name, "select(t)");
        pb.rename(s, "my_filter");
        let plan = pb.build(s).unwrap();
        assert_eq!(plan.op(s).name, "my_filter");
        assert_eq!(plan.op(s).kind.kind_label(), "select");
    }
}
