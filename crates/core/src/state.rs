//! Shared runtime state for one executing query.
//!
//! Work orders run on worker threads and only touch this state plus their
//! input block; all scheduling decisions stay in the scheduler thread. The
//! state is therefore limited to thread-safe structures: output buffers,
//! shared join hash tables, aggregate partial lists, collected block lists
//! (sort input / nested-loops inner side) and the limit counter.

use crate::bloom::BloomFilter;
use crate::cancel::CancellationToken;
use crate::error::EngineError;
use crate::fault::FaultPlan;
use crate::hash_table::{JoinHashTable, ProbeMatch};
use crate::output::OutputBuffer;
use crate::plan::{OperatorKind, QueryPlan, Source};
use crate::Result;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::AtomicI64;
use std::sync::Arc;
use std::time::Instant;
use uot_expr::AggState;
use uot_storage::{
    hash_key::FxBuildHasher, BlockFormat, BlockPool, HashKey, KeyBatch, KeyExtractor,
    SpilledHandle, StorageBlock, Value,
};

/// One side (build or probe) of a grace hash join, partitioned by hash radix.
///
/// Each partition has at most one *open* block accumulating rows in memory;
/// full blocks are spilled to disk immediately, so the resident footprint of
/// a grace side is bounded by `nparts × block_bytes` regardless of input
/// size.
#[derive(Debug, Default)]
pub struct GraceSide {
    /// Per-partition open (partially filled) block, if any.
    pub open: Vec<Option<StorageBlock>>,
    /// Per-partition spilled full blocks.
    pub spilled: Vec<Vec<SpilledHandle>>,
}

impl GraceSide {
    /// Empty side with `nparts` partitions.
    pub fn with_parts(nparts: usize) -> Self {
        GraceSide {
            open: (0..nparts).map(|_| None).collect(),
            spilled: (0..nparts).map(|_| Vec::new()).collect(),
        }
    }
}

/// Shared state of one grace (partitioned, out-of-core) hash join.
///
/// Present in [`ExecContext::grace`] — keyed by **both** the build and the
/// probe operator id — when [`ExecContext::plan_grace`] decided the build
/// side will not fit the memory budget. The build and probe operators then
/// partition their inputs into [`GraceSide`]s instead of building/probing a
/// monolithic hash table, and a `FinalizeJoin` work order joins the
/// partitions one at a time.
#[derive(Debug)]
pub struct GraceJoinState {
    /// The `BuildHash` operator feeding this join.
    pub build_op: usize,
    /// The `Probe` operator.
    pub probe_op: usize,
    /// Partition count (power of two).
    pub nparts: usize,
    /// Partitioned build input.
    pub build: Mutex<GraceSide>,
    /// Partitioned probe input.
    pub probe: Mutex<GraceSide>,
}

impl GraceJoinState {
    /// Partition index for a 64-bit key hash. Uses bits 32.. so it stays
    /// disjoint from both the hash table's shard bits (top 16) and its
    /// in-shard slot bits (bottom), making sub-partitioning on deeper bits
    /// meaningful during recursive respill.
    pub fn partition_of(&self, hash: u64) -> usize {
        (hash >> 32) as usize & (self.nparts - 1)
    }
}

/// One group's accumulated state in a hash aggregation.
#[derive(Debug, Clone)]
pub struct GroupEntry {
    /// The grouping-column values (materialized once per group).
    pub group_vals: Vec<Value>,
    /// One accumulator per aggregate.
    pub states: Vec<AggState>,
}

/// A per-work-order partial aggregation result.
#[derive(Debug, Default)]
pub struct AggPartial {
    /// Group key → accumulated entry.
    pub groups: HashMap<HashKey, GroupEntry, FxBuildHasher>,
}

/// Runtime state attached to one operator.
#[derive(Debug)]
pub struct OpRuntime {
    /// Output staging (absent for `BuildHash`, which produces a hash table).
    pub output: Option<OutputBuffer>,
    /// The hash table (only for `BuildHash`).
    pub hash_table: Option<Arc<JoinHashTable>>,
    /// LIP Bloom filter over the build keys — present only when some select
    /// references this build via a [`crate::plan::LipFilter`].
    pub bloom: Option<Arc<BloomFilter>>,
    /// Rows dropped by LIP filters at this select (metrics).
    pub lip_pruned: std::sync::atomic::AtomicUsize,
    /// Partial aggregates awaiting the finalize step (only for `Aggregate`).
    pub agg_partials: Mutex<Vec<AggPartial>>,
    /// Collected input blocks: the sort input, or the materialized inner
    /// side of a nested-loops join.
    pub collected: Mutex<Vec<Arc<StorageBlock>>>,
    /// Remaining row budget (only for `Limit`).
    pub limit_remaining: AtomicI64,
}

/// Reusable per-work-order buffers for the batched key pipeline. Checked out
/// of the [`ExecContext`] pool at work-order start (one lock op) and returned
/// at the end, so per-block extraction and probing never allocate in steady
/// state.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Extracted keys + hashes for the current block.
    pub keys: KeyBatch,
    /// Resolved probe matches (inner joins).
    pub matches: Vec<ProbeMatch>,
    /// Per-row existence flags (semi/anti joins).
    pub exists: Vec<bool>,
    /// Selected row indices (semi/anti output, LIP survivors).
    pub rows: Vec<u32>,
}

/// One group of LIP filters sharing a key-column set: keys are extracted and
/// hashed once per block, then every Bloom filter in the group probes the
/// same hash vector.
#[derive(Debug)]
pub struct LipGroup {
    /// Extractor over the select's input schema for the shared key columns.
    pub extractor: KeyExtractor,
    /// The `BuildHash` operators whose Bloom filters consume these keys.
    pub builds: Vec<usize>,
}

/// Everything a worker needs to execute any work order of the query.
#[derive(Debug)]
pub struct ExecContext {
    /// The plan being executed.
    pub plan: Arc<QueryPlan>,
    /// The global temporary-block pool.
    pub pool: Arc<BlockPool>,
    /// Per-operator runtime state, indexed by `OpId`.
    pub runtimes: Vec<OpRuntime>,
    /// Format of temporary blocks (the paper: row store regardless of base
    /// table format; configurable here).
    pub temp_format: BlockFormat,
    /// Capacity of temporary blocks in bytes (grace-join partition buffers
    /// check out blocks of this size).
    pub block_bytes: usize,
    /// Shard count for join hash tables (grace partitions build their
    /// per-partition tables with the same setting).
    pub hash_table_shards: usize,
    /// Per-operator key extractor, compiled once at context build: build
    /// keys, probe keys, or group-by keys depending on the operator kind.
    extractors: Vec<Option<KeyExtractor>>,
    /// Per-select LIP filters grouped by distinct key-column set.
    pub lip_groups: Vec<Vec<LipGroup>>,
    /// Pool of reusable [`Scratch`] buffers (≤ one per concurrent worker).
    scratch: Mutex<Vec<Scratch>>,
    /// Cooperative cancellation flag, checked between blocks by loop
    /// operators and at every scheduler dispatch.
    pub cancel: CancellationToken,
    /// Fault-injection registry (empty outside chaos tests).
    pub faults: Arc<FaultPlan>,
    /// Trace sink, when structured tracing is enabled for this query.
    /// `None` (the default) keeps every `trace_event` call a single branch.
    pub trace: Option<Arc<crate::trace::TraceSink>>,
    /// Which query this context belongs to: [`QueryId::SOLO`] for standalone
    /// `Engine` runs, a service-assigned id under a `QueryService`.
    pub query: crate::query_id::QueryId,
    /// Per-query fusion plan: which pipelines run as fused push-based loops.
    /// The default (empty) state fuses nothing — every direct-context test
    /// and staged run keeps the historical path.
    pub fusion: crate::fusion::FusionState,
    /// Grace hash-join state, keyed by both the build and the probe operator
    /// id. Empty unless [`plan_grace`](Self::plan_grace) decided some build
    /// side exceeds the memory budget.
    pub grace: HashMap<usize, Arc<GraceJoinState>>,
    /// Query start, for the `after` field of cancellation errors.
    started: Instant,
}

impl ExecContext {
    /// Allocate runtime state for `plan`.
    pub fn new(
        plan: Arc<QueryPlan>,
        pool: Arc<BlockPool>,
        temp_format: BlockFormat,
        block_bytes: usize,
        hash_table_shards: usize,
    ) -> Result<Self> {
        // Which builds need a Bloom filter (referenced by some select's LIP
        // list), and a capacity estimate from the upstream base table.
        let mut needs_bloom = vec![false; plan.len()];
        for op in plan.ops() {
            if let OperatorKind::Select { lip, .. } = &op.kind {
                for l in lip {
                    needs_bloom[l.build] = true;
                }
            }
        }
        let estimated_rows = |mut id: usize| -> usize {
            loop {
                match plan.op(id).kind.stream_source() {
                    Source::Table(t) => return t.num_rows().max(16),
                    Source::Op(src) => id = *src,
                }
            }
        };
        // Compile key extractors once per operator: the batched pipeline's
        // single dispatch per block replaces one dispatch per row.
        let mut extractors = Vec::with_capacity(plan.len());
        let mut lip_groups: Vec<Vec<LipGroup>> = Vec::with_capacity(plan.len());
        for (id, op) in plan.ops().iter().enumerate() {
            let key_cols: Option<&[usize]> = match &op.kind {
                OperatorKind::BuildHash { key_cols, .. } => Some(key_cols),
                OperatorKind::Probe { probe_key_cols, .. } => Some(probe_key_cols),
                OperatorKind::Aggregate { group_by, .. } if !group_by.is_empty() => Some(group_by),
                _ => None,
            };
            extractors.push(match key_cols {
                Some(cols) => Some(KeyExtractor::compile(&plan.input_schema(id), cols)?),
                None => None,
            });
            let mut groups: Vec<LipGroup> = Vec::new();
            let mut group_cols: Vec<&[usize]> = Vec::new();
            if let OperatorKind::Select { lip, .. } = &op.kind {
                for l in lip {
                    match group_cols.iter().position(|c| *c == l.key_cols.as_slice()) {
                        Some(i) => groups[i].builds.push(l.build),
                        None => {
                            group_cols.push(&l.key_cols);
                            groups.push(LipGroup {
                                extractor: KeyExtractor::compile(
                                    &plan.input_schema(id),
                                    &l.key_cols,
                                )?,
                                builds: vec![l.build],
                            });
                        }
                    }
                }
            }
            lip_groups.push(groups);
        }
        let mut runtimes = Vec::with_capacity(plan.len());
        for (id, op) in plan.ops().iter().enumerate() {
            let (output, hash_table) = match &op.kind {
                OperatorKind::BuildHash { .. } => (
                    None,
                    Some(Arc::new(JoinHashTable::new(
                        op.out_schema.clone(),
                        hash_table_shards,
                    ))),
                ),
                _ => (
                    Some(OutputBuffer::new(
                        op.out_schema.clone(),
                        temp_format,
                        block_bytes,
                    )),
                    None,
                ),
            };
            let limit_remaining = match &op.kind {
                OperatorKind::Limit { n, .. } => AtomicI64::new(*n as i64),
                _ => AtomicI64::new(0),
            };
            let bloom = (needs_bloom[id])
                .then(|| Arc::new(BloomFilter::with_capacity(estimated_rows(id), 0.01)));
            runtimes.push(OpRuntime {
                output,
                hash_table,
                bloom,
                lip_pruned: std::sync::atomic::AtomicUsize::new(0),
                agg_partials: Mutex::new(Vec::new()),
                collected: Mutex::new(Vec::new()),
                limit_remaining,
            });
        }
        Ok(ExecContext {
            plan,
            pool,
            runtimes,
            temp_format,
            block_bytes,
            hash_table_shards,
            extractors,
            lip_groups,
            scratch: Mutex::new(Vec::new()),
            cancel: CancellationToken::new(),
            faults: Arc::new(FaultPlan::empty()),
            trace: None,
            query: crate::query_id::QueryId::SOLO,
            fusion: crate::fusion::FusionState::default(),
            grace: HashMap::new(),
            started: Instant::now(),
        })
    }

    /// Decide which hash joins must run as grace (partitioned, out-of-core)
    /// joins under `budget` bytes of memory. Called once before execution
    /// when the spill tier is enabled.
    ///
    /// The build-side size estimate walks the build's stream source down to
    /// its base table and assumes every row survives with 2× expansion for
    /// hash-table overhead — deliberately pessimistic, since choosing grace
    /// for a join that would have fit costs one extra disk round-trip while
    /// the opposite choice aborts the query. A join goes grace when its
    /// estimate exceeds half the budget; the partition count doubles until a
    /// single partition's share fits a quarter of the budget (capped at 64).
    pub fn plan_grace(&mut self, budget: usize) {
        for (id, op) in self.plan.ops().iter().enumerate() {
            let OperatorKind::Probe { build, .. } = &op.kind else {
                continue;
            };
            let build_op = *build;
            let mut src = self.plan.op(build_op).kind.stream_source();
            let base_rows = loop {
                match src {
                    Source::Table(t) => break t.num_rows(),
                    Source::Op(s) => src = self.plan.op(*s).kind.stream_source(),
                }
            };
            let width = self.plan.input_schema(build_op).tuple_width().max(8);
            let est = base_rows * width * 2;
            if est <= budget / 2 {
                continue;
            }
            let mut nparts = 2usize;
            while est / nparts > budget / 4 && nparts < 64 {
                nparts *= 2;
            }
            let state = Arc::new(GraceJoinState {
                build_op,
                probe_op: id,
                nparts,
                build: Mutex::new(GraceSide::with_parts(nparts)),
                probe: Mutex::new(GraceSide::with_parts(nparts)),
            });
            self.grace.insert(build_op, state.clone());
            self.grace.insert(id, state);
        }
    }

    /// Attribute this context to `query` (builder-style; the service sets
    /// its assigned id so every error, metric and trace carries it).
    pub fn with_query(mut self, query: crate::query_id::QueryId) -> Self {
        self.query = query;
        self
    }

    /// Attach a shared cancellation token (builder-style; the default token
    /// is private to this context and can only be tripped through it).
    pub fn with_cancellation(mut self, token: CancellationToken) -> Self {
        self.cancel = token;
        self
    }

    /// Attach a fault-injection plan (builder-style; chaos tests only).
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// Attach a fusion plan (builder-style): chains recorded in it execute
    /// as fused push-based loops instead of staged transfers.
    pub fn with_fusion(mut self, fusion: crate::fusion::FusionState) -> Self {
        self.fusion = fusion;
        self
    }

    /// Attach a trace sink (builder-style): every scheduler and work-order
    /// event is recorded into it until the context is dropped.
    pub fn with_trace(mut self, sink: Arc<crate::trace::TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Record a trace event if a sink is installed. The closure keeps event
    /// construction (byte sums, gauge reads) off the untraced fast path.
    #[inline]
    pub fn trace_event(&self, f: impl FnOnce() -> crate::trace::TraceEventKind) {
        if let Some(sink) = &self.trace {
            sink.record(f());
        }
    }

    /// Between-blocks cancellation check for block-loop operators.
    ///
    /// The returned error's `completed_work_orders` is a placeholder (0):
    /// only the driver knows the authoritative count and rewrites the error
    /// before surfacing it.
    pub fn check_cancelled(&self) -> Result<()> {
        if self.cancel.is_cancelled() {
            Err(EngineError::Cancelled {
                after: self.started.elapsed(),
                completed_work_orders: 0,
            })
        } else {
            Ok(())
        }
    }

    /// Wall time since this context was created (query start).
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// The compiled key extractor for operator `id` (panics when `id` has no
    /// keyed kind — plan validation guarantees builds/probes/grouped
    /// aggregates always have one).
    pub fn key_extractor(&self, id: usize) -> &KeyExtractor {
        // invariant: `new` compiles an extractor for every keyed kind (build,
        // probe, grouped aggregate) and only those kinds' work orders call
        // this — no user input reaches it with a keyless operator.
        self.extractors[id]
            .as_ref()
            .expect("operator kind has key columns")
    }

    /// Check a [`Scratch`] out of the pool (or allocate a fresh one).
    pub fn take_scratch(&self) -> Scratch {
        self.scratch.lock().pop().unwrap_or_default()
    }

    /// Return a [`Scratch`] for reuse by later work orders.
    pub fn put_scratch(&self, s: Scratch) {
        self.scratch.lock().push(s);
    }

    /// The hash table of build operator `id` (panics if `id` is not a build —
    /// plan validation guarantees probes only reference builds).
    pub fn hash_table(&self, id: usize) -> &Arc<JoinHashTable> {
        // invariant: PlanBuilder::probe rejects a non-build `build` reference
        // up front, and `new` allocates a hash table for every BuildHash op.
        self.runtimes[id]
            .hash_table
            .as_ref()
            .expect("plan validation guarantees a hash table here")
    }

    /// The output buffer of operator `id` (panics for builds).
    pub fn output(&self, id: usize) -> &OutputBuffer {
        // invariant: `new` gives every non-build operator an output buffer,
        // and builds produce hash tables, never blocks — no work-order path
        // asks a build for its output buffer.
        self.runtimes[id]
            .output
            .as_ref()
            .expect("operator produces blocks")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanBuilder, Source};
    use uot_storage::{DataType, MemoryTracker, Schema, Table, TableBuilder};

    fn table() -> Arc<Table> {
        let s = Schema::from_pairs(&[("k", DataType::Int32)]);
        let mut tb = TableBuilder::new("t", s, BlockFormat::Column, 64);
        tb.append(&[Value::I32(1)]).unwrap();
        Arc::new(tb.finish())
    }

    #[test]
    fn context_allocates_per_op_state() {
        let t = table();
        let mut pb = PlanBuilder::new();
        let b = pb
            .build_hash(Source::Table(t.clone()), vec![0], vec![0])
            .unwrap();
        let p = pb
            .probe(
                Source::Table(t),
                b,
                vec![0],
                vec![0],
                vec![0],
                crate::plan::JoinType::Inner,
            )
            .unwrap();
        let plan = Arc::new(pb.build(p).unwrap());
        let pool = BlockPool::new(MemoryTracker::new());
        let ctx = ExecContext::new(plan, pool, BlockFormat::Row, 1024, 4).unwrap();
        assert!(ctx.runtimes[b].hash_table.is_some());
        assert!(ctx.runtimes[b].output.is_none());
        assert!(ctx.runtimes[p].output.is_some());
        assert!(ctx.runtimes[p].hash_table.is_none());
        // accessors
        let _ = ctx.hash_table(b);
        let _ = ctx.output(p);
    }

    #[test]
    fn limit_budget_initialized() {
        let t = table();
        let mut pb = PlanBuilder::new();
        let l = pb.limit(Source::Table(t), 7).unwrap();
        let plan = Arc::new(pb.build(l).unwrap());
        let pool = BlockPool::new(MemoryTracker::new());
        let ctx = ExecContext::new(plan, pool, BlockFormat::Row, 1024, 4).unwrap();
        assert_eq!(
            ctx.runtimes[l]
                .limit_remaining
                .load(std::sync::atomic::Ordering::Relaxed),
            7
        );
    }
}
