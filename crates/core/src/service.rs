//! The multi-query service: one worker pool, one memory budget, many
//! concurrent queries.
//!
//! The [`Engine`](crate::engine::Engine) spins up a fresh scheduler and
//! worker pool per query — the right shape for studying one query's UoT
//! behaviour, the wrong shape for a server. [`QueryService`] is the
//! long-lived form: a single scheduler thread multiplexes one
//! [`SchedulerCore`] per admitted query over a shared pool of worker
//! threads, and every dispatched [`WorkOrder`], pool allocation, metric and
//! trace event carries the query's [`QueryId`].
//!
//! Three mechanisms keep tenants honest:
//!
//! * **Admission control** — each query reserves a slice of the global
//!   memory budget before it runs. While the sum of active reservations
//!   would exceed the budget, new queries wait in a FIFO admission queue
//!   (bounded by [`ServiceConfig::max_queued`]); a reservation that can
//!   never fit is rejected immediately with
//!   [`EngineError::AdmissionRejected`].
//! * **Per-query budgets** — an admitted query allocates from its own
//!   [`BlockPool`] whose [`MemoryTracker`] is parented on the service-wide
//!   tracker, so a query that outgrows its reservation fails alone with
//!   [`EngineError::BudgetExceeded`] (naming its [`QueryId`]) while the
//!   global gauge stays exact.
//! * **Fair dispatch** — ready work is drawn round-robin across active
//!   queries, one work order per query per turn, so a block-rich scan
//!   cannot starve a short probe. Within one query the per-operator
//!   policy (critical-first, downstream-first, FIFO) is unchanged.
//!
//! Cancellation ([`QueryHandle::cancel`]) and per-query deadlines tear down
//! exactly one query — its staged blocks, parked bytes and pool free lists
//! drain back to the global tracker — while sibling queries keep running.

use crate::cancel::CancellationToken;
use crate::engine::QueryResult;
use crate::error::EngineError;
use crate::exec_options::ExecOptions;
use crate::metrics::TaskRecord;
use crate::obs::hub::{HubCounter, HubHistogram, HubObserver};
use crate::obs::observer::MaybeTracingObserver;
use crate::obs::{
    CompositeObserver, ExplainAnalyze, HubSnapshot, IntrospectionServer, LiveQuery, LiveRegistry,
    MetricsHub, ServerState, TracingObserver, WatchdogConfig,
};
use crate::ops::execute_work_order_contained;
use crate::plan::{OpId, OperatorKind, QueryPlan};
use crate::query_id::QueryId;
use crate::scheduler::{ExecMode, MetricsObserver, SchedulerConfig, SchedulerCore};
use crate::state::ExecContext;
use crate::trace::{TraceSink, DEFAULT_TRACE_CAPACITY};
use crate::uot::Uot;
use crate::work_order::{WorkKind, WorkOrder};
use crate::Result;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uot_sql::{CacheStats, PlanCache, PlanCacheOutcome};
use uot_storage::{BlockFormat, BlockPool, Catalog, MemoryTracker, Schema, StorageBlock};

/// The per-query observer stack: metrics always, the live hub always,
/// tracing when enabled. One concrete type so every query's
/// [`SchedulerCore`] is the same type.
type ServiceObserver =
    CompositeObserver<MetricsObserver, CompositeObserver<HubObserver, MaybeTracingObserver>>;

/// Service-wide configuration: the shared worker pool, the global memory
/// budget admission control carves reservations from, and the per-query
/// execution defaults (block size, temporary format, UoT).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads shared by every admitted query.
    pub workers: usize,
    /// Global budget in bytes for temporary memory across *all* queries.
    pub memory_budget: usize,
    /// Reservation for queries that do not set
    /// [`ExecOptions::reservation`].
    pub default_reservation: usize,
    /// Admission-queue depth: submissions past it are rejected with
    /// [`EngineError::AdmissionRejected`] instead of queueing.
    pub max_queued: usize,
    /// Size of temporary storage blocks in bytes.
    pub block_bytes: usize,
    /// Format of temporary blocks.
    pub temp_format: BlockFormat,
    /// Default unit of transfer for every edge without an override.
    pub default_uot: Uot,
    /// Default fused-pipeline policy (per-query override via
    /// [`ExecOptions::fusion`]).
    pub fusion: crate::fusion::FusionPolicy,
    /// Default budget-degradation policy (per-query override via
    /// [`ExecOptions::degrade`]).
    /// [`DegradePolicy::Spill`](crate::engine::DegradePolicy::Spill) arms a
    /// per-query disk spill tier against the query's own reservation, so a
    /// query that outgrows it degrades to out-of-core execution instead of
    /// failing with [`EngineError::BudgetExceeded`].
    pub degrade: crate::engine::DegradePolicy,
    /// Optional per-operator concurrency cap (applies within each query).
    pub max_dop_per_op: Option<usize>,
    /// Shards per join hash table.
    pub hash_table_shards: usize,
    /// Whether per-query block pools reuse returned blocks.
    pub pool_reuse: bool,
    /// Trace every query (per-query opt-in via [`ExecOptions::trace`]).
    pub trace: bool,
    /// Event capacity of each per-query trace sink.
    pub trace_capacity: usize,
    /// Catalog [`QueryService::submit_sql`] resolves table names against
    /// (empty by default; plan-based submissions never consult it).
    pub catalog: Arc<Catalog>,
    /// HTTP introspection endpoint: `Some(port)` binds `127.0.0.1:port`
    /// (0 = ephemeral, see [`QueryService::http_addr`]) serving `/metrics`,
    /// `/queries` and `/healthz`. `None` (the default) runs no server.
    pub http_port: Option<u16>,
    /// The watchdog thread flagging stalled edges and deadline-threatened
    /// queries (enabled by default; it costs one registry scan per
    /// [`WatchdogConfig::poll_interval`]).
    pub watchdog: WatchdogConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            memory_budget: 256 << 20,
            default_reservation: 16 << 20,
            max_queued: 64,
            block_bytes: 128 * 1024,
            temp_format: BlockFormat::Row,
            default_uot: Uot::LOW,
            fusion: crate::fusion::FusionPolicy::Auto,
            degrade: crate::engine::DegradePolicy::Off,
            max_dop_per_op: None,
            hash_table_shards: 64,
            pool_reuse: true,
            trace: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            catalog: Catalog::new(),
            http_port: None,
            watchdog: WatchdogConfig::default(),
        }
    }
}

impl ServiceConfig {
    fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(EngineError::Config(
                "a query service needs at least 1 worker (got workers=0)".into(),
            ));
        }
        if self.memory_budget == 0 {
            return Err(EngineError::Config(
                "memory_budget=0 would reject every admission".into(),
            ));
        }
        if self.default_reservation == 0 || self.default_reservation > self.memory_budget {
            return Err(EngineError::Config(format!(
                "default_reservation={} must be in 1..={} (the global budget)",
                self.default_reservation, self.memory_budget
            )));
        }
        if self.max_dop_per_op == Some(0) {
            return Err(EngineError::Config(
                "max_dop_per_op must be at least 1 (Some(0) would make every \
                 operator unschedulable)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// A submitted query: cancel it, or wait for its result.
#[derive(Debug)]
pub struct QueryHandle {
    id: QueryId,
    token: CancellationToken,
    rx: Receiver<Result<QueryResult>>,
}

impl QueryHandle {
    /// The service-assigned id of this query.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// Cancel this query (cooperative: it stops at the next cancellation
    /// point and yields [`EngineError::Cancelled`]). Sibling queries are
    /// unaffected.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// The cancellation token governing this query.
    pub fn token(&self) -> CancellationToken {
        self.token.clone()
    }

    /// The result if the query already finished (`None` while running).
    pub fn try_wait(&self) -> Option<Result<QueryResult>> {
        self.rx.try_recv()
    }

    /// Block until the query finishes.
    pub fn wait(self) -> Result<QueryResult> {
        self.rx.recv().unwrap_or(Err(EngineError::ServiceShutdown))
    }
}

/// One query as submitted, before admission.
struct Submission {
    id: QueryId,
    plan: QueryPlan,
    opts: ExecOptions,
    token: CancellationToken,
    reply: Sender<Result<QueryResult>>,
    reservation: usize,
    /// Plan-cache outcome when the query arrived as SQL (`None` for
    /// pre-built plans); stamped onto the final metrics.
    cache: Option<PlanCacheOutcome>,
    /// Submission time — the hub's latency and admission-wait histograms
    /// both count from here.
    submitted: Instant,
    /// `EXPLAIN ANALYZE` submission: deliver the rendered plan tree as the
    /// result rows instead of the statement's own output.
    explain: bool,
}

/// A finished work order reported back by a worker.
struct Completion {
    wo: WorkOrder,
    worker: usize,
    start: Duration,
    end: Duration,
    produced: Result<Vec<StorageBlock>>,
}

/// Everything the scheduler thread multiplexes over one channel — no
/// `select!` needed: submissions, completions and shutdown arrive in order.
enum ToService {
    Submit(Box<Submission>),
    Done(Box<Completion>),
    Shutdown,
}

/// Work handed to a shared worker: the owning query's context travels with
/// the order, so one worker executes for many queries back to back.
enum ToWorker {
    Run(Arc<ExecContext>, WorkOrder),
}

/// A long-lived, multi-query execution service (see the module docs).
///
/// Dropping the service shuts it down gracefully: active queries drain,
/// queued submissions are rejected with [`EngineError::ServiceShutdown`],
/// and all threads are joined.
#[derive(Debug)]
pub struct QueryService {
    to_service: Sender<ToService>,
    scheduler: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    next_id: AtomicU64,
    tracker: Arc<MemoryTracker>,
    config: ServiceConfig,
    /// Compiled plans shared by every [`QueryService::submit_sql`] client,
    /// keyed by normalized SQL text.
    plan_cache: PlanCache<QueryPlan>,
    /// Always-on live metrics, shared with every query's observer stack.
    hub: Arc<MetricsHub>,
    /// Live registry behind `/queries` and the watchdog.
    registry: Arc<LiveRegistry>,
    /// The HTTP introspection endpoint, when configured.
    http: Option<IntrospectionServer>,
    watchdog: Option<std::thread::JoinHandle<()>>,
    watchdog_stop: Arc<AtomicBool>,
}

impl QueryService {
    /// Start the service: one scheduler thread plus
    /// [`ServiceConfig::workers`] worker threads.
    pub fn start(config: ServiceConfig) -> Result<Self> {
        config.validate()?;
        let tracker = MemoryTracker::new();
        let hub = Arc::new(MetricsHub::new());
        let registry = Arc::new(LiveRegistry::new());
        let (to_service, service_rx) = crossbeam::channel::unbounded::<ToService>();
        let (work_tx, work_rx) = crossbeam::channel::unbounded::<ToWorker>();
        let mut workers = Vec::with_capacity(config.workers);
        for worker_id in 0..config.workers {
            let work_rx = work_rx.clone();
            let done_tx = to_service.clone();
            workers.push(std::thread::spawn(move || {
                while let Ok(ToWorker::Run(ctx, wo)) = work_rx.recv() {
                    let t0 = ctx.elapsed();
                    // Contained execution: a panicking work order becomes an
                    // error completion instead of killing a shared worker.
                    let produced = execute_work_order_contained(&ctx, &wo);
                    let t1 = ctx.elapsed();
                    if done_tx
                        .send(ToService::Done(Box::new(Completion {
                            wo,
                            worker: worker_id,
                            start: t0,
                            end: t1,
                            produced,
                        })))
                        .is_err()
                    {
                        break;
                    }
                }
            }));
        }
        let loop_state = SchedulerLoop {
            config: config.clone(),
            tracker: tracker.clone(),
            work_tx,
            free_slots: config.workers,
            active: HashMap::new(),
            order: VecDeque::new(),
            pending: VecDeque::new(),
            reserved: 0,
            draining: false,
            hub: hub.clone(),
            registry: registry.clone(),
        };
        let scheduler = std::thread::spawn(move || loop_state.run(service_rx));
        let http = match config.http_port {
            None => None,
            Some(port) => Some(
                IntrospectionServer::start(
                    port,
                    Arc::new(ServerState {
                        hub: hub.clone(),
                        registry: registry.clone(),
                        tracker: tracker.clone(),
                        started: Instant::now(),
                    }),
                )
                .map_err(|e| {
                    EngineError::Config(format!("introspection endpoint bind failed: {e}"))
                })?,
            ),
        };
        let watchdog_stop = Arc::new(AtomicBool::new(false));
        let watchdog = if config.watchdog.enabled {
            let (stop, hub, registry, wd) = (
                watchdog_stop.clone(),
                hub.clone(),
                registry.clone(),
                config.watchdog,
            );
            Some(
                std::thread::Builder::new()
                    .name("uot-watchdog".into())
                    .spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            std::thread::sleep(wd.poll_interval);
                            registry.watchdog_pass(&hub, wd.stall_timeout, wd.deadline_fraction);
                        }
                    })
                    .expect("spawn watchdog thread"),
            )
        } else {
            None
        };
        Ok(QueryService {
            to_service,
            scheduler: Some(scheduler),
            workers,
            next_id: AtomicU64::new(1),
            tracker,
            config,
            plan_cache: PlanCache::new(),
            hub,
            registry,
            http,
            watchdog,
            watchdog_stop,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The service-wide memory tracker every per-query pool parents on.
    /// `current_bytes()` is the global pool occupancy across all queries;
    /// it returns to 0 whenever no query holds temporary memory.
    pub fn tracker(&self) -> &Arc<MemoryTracker> {
        &self.tracker
    }

    /// Bytes of temporary memory currently held across all queries.
    pub fn memory_in_use(&self) -> usize {
        self.tracker.current_bytes()
    }

    /// The always-on live metrics hub (counters + histograms across every
    /// query this service has run).
    pub fn hub(&self) -> &Arc<MetricsHub> {
        &self.hub
    }

    /// A consistent-enough point-in-time copy of the hub (see
    /// [`MetricsHub::snapshot`]).
    pub fn hub_snapshot(&self) -> HubSnapshot {
        self.hub.snapshot()
    }

    /// The live query registry (`/queries` reads it; tests can too).
    pub fn registry(&self) -> &Arc<LiveRegistry> {
        &self.registry
    }

    /// Bound address of the HTTP introspection endpoint — the actual port
    /// when [`ServiceConfig::http_port`] was `Some(0)`; `None` when no
    /// endpoint was configured.
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.as_ref().map(|s| s.addr())
    }

    /// Submit a SQL statement with default [`ExecOptions`] — the primary
    /// front door: compile (or fetch from the plan cache), then run.
    pub fn submit_sql(&self, sql: &str) -> Result<QueryHandle> {
        self.submit_sql_with(sql, ExecOptions::default())
    }

    /// Submit a SQL statement with per-query [`ExecOptions`].
    ///
    /// Compilation happens on the calling thread against
    /// [`ServiceConfig::catalog`], memoized in the service-wide plan cache;
    /// frontend failures return [`EngineError::Sql`] immediately instead of
    /// through the handle. [`QueryMetrics::plan_cache`](crate::metrics::QueryMetrics::plan_cache)
    /// on the result records whether this submission hit the cache.
    /// `EXPLAIN ANALYZE <stmt>` submissions execute the inner statement
    /// normally (same plan cache, same options) and deliver the rendered
    /// [`ExplainAnalyze`] tree as the result rows; the real metrics, trace
    /// and [`QueryResult::explain`] stay attached.
    pub fn submit_sql_with(&self, sql: &str, opts: ExecOptions) -> Result<QueryHandle> {
        let (sql, explain) = match uot_sql::strip_explain_analyze(sql) {
            Some(inner) => (inner, true),
            None => (sql, false),
        };
        let (plan, outcome) = self
            .plan_cache
            .get_or_compile(sql, || crate::sql::compile(sql, &self.config.catalog))?;
        self.submit_inner((*plan).clone(), opts, Some(outcome), explain)
    }

    /// Counters of the shared SQL plan cache.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    /// Submit a pre-built `plan` with default [`ExecOptions`] (escape hatch
    /// for plans SQL cannot express; [`QueryService::submit_sql`] is the
    /// primary API).
    pub fn submit(&self, plan: QueryPlan) -> Result<QueryHandle> {
        self.submit_with(plan, ExecOptions::default())
    }

    /// Submit a pre-built `plan`. Returns immediately with a [`QueryHandle`];
    /// admission (or rejection), execution and teardown happen on the service
    /// threads, and the outcome is delivered through [`QueryHandle::wait`].
    pub fn submit_with(&self, plan: QueryPlan, opts: ExecOptions) -> Result<QueryHandle> {
        self.submit_inner(plan, opts, None, false)
    }

    fn submit_inner(
        &self,
        plan: QueryPlan,
        opts: ExecOptions,
        cache: Option<PlanCacheOutcome>,
        explain: bool,
    ) -> Result<QueryHandle> {
        let id = QueryId::new(self.next_id.fetch_add(1, Ordering::Relaxed));
        let token = CancellationToken::new();
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
        let reservation = opts.reservation.unwrap_or(self.config.default_reservation);
        self.hub.add(HubCounter::QueriesSubmitted, 1);
        let sub = Submission {
            id,
            plan,
            opts,
            token: token.clone(),
            reply: reply_tx,
            reservation,
            cache,
            submitted: Instant::now(),
            explain,
        };
        self.to_service
            .send(ToService::Submit(Box::new(sub)))
            .map_err(|_| EngineError::ServiceShutdown)?;
        Ok(QueryHandle {
            id,
            token,
            rx: reply_rx,
        })
    }

    /// Shut down gracefully: drain active queries, reject queued ones, join
    /// every thread. (Dropping the service does the same.)
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.to_service.send(ToService::Shutdown);
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.watchdog_stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
        if let Some(mut server) = self.http.take() {
            server.shutdown();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Scheduler-thread state of one admitted query.
struct ActiveQuery {
    ctx: Arc<ExecContext>,
    core: SchedulerCore<ServiceObserver>,
    reply: Sender<Result<QueryResult>>,
    schema: Arc<Schema>,
    sink: Option<Arc<TraceSink>>,
    reservation: usize,
    /// Plan-cache outcome for SQL submissions, stamped onto the metrics.
    cache: Option<PlanCacheOutcome>,
    /// Deadline relative to admission (the context's start).
    deadline: Option<Duration>,
    /// Submission time (the hub's end-to-end latency histogram).
    submitted: Instant,
    /// Deliver the rendered `EXPLAIN ANALYZE` tree as the result rows.
    explain: bool,
    /// This query's live-registry record.
    live: Arc<LiveQuery>,
    /// seq -> (op, bytes its stream input charged): enough to release
    /// resources and attribute losses even if a work order body is lost.
    in_flight: HashMap<usize, (OpId, usize)>,
    completed: usize,
    first_error: Option<EngineError>,
}

/// The scheduler thread's event loop.
struct SchedulerLoop {
    config: ServiceConfig,
    tracker: Arc<MemoryTracker>,
    work_tx: Sender<ToWorker>,
    free_slots: usize,
    active: HashMap<QueryId, ActiveQuery>,
    /// Round-robin dispatch ring over active queries.
    order: VecDeque<QueryId>,
    /// FIFO admission queue (reservations that do not currently fit).
    pending: VecDeque<Box<Submission>>,
    /// Sum of active reservations, ≤ `config.memory_budget`.
    reserved: usize,
    draining: bool,
    /// The service's always-on metrics hub.
    hub: Arc<MetricsHub>,
    /// The service's live query registry.
    registry: Arc<LiveRegistry>,
}

impl SchedulerLoop {
    fn run(mut self, rx: Receiver<ToService>) {
        loop {
            self.check_deadlines();
            // Sweep before dispatching: finalizing a drained query may admit
            // a queued one, whose first work orders dispatch this same turn.
            self.sweep_finished();
            self.dispatch();
            if self.draining && self.active.is_empty() {
                self.admit_pending(); // draining: rejects everything queued
                break;
            }
            let msg = match self.next_deadline() {
                None => match rx.recv() {
                    Ok(m) => m,
                    Err(_) => break,
                },
                Some(remaining) => match rx.recv_timeout(remaining) {
                    Ok(m) => m,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                },
            };
            match msg {
                ToService::Submit(sub) => self.handle_submit(sub),
                ToService::Done(c) => self.handle_done(*c),
                ToService::Shutdown => self.draining = true,
            }
        }
        // `work_tx` drops here; idle workers see the hangup and exit.
    }

    /// Nearest deadline among active, not-yet-cancelled queries — the recv
    /// timeout that guarantees deadlines fire while the service is idle.
    fn next_deadline(&self) -> Option<Duration> {
        self.active
            .values()
            .filter(|q| !q.ctx.cancel.is_cancelled())
            .filter_map(|q| q.deadline.map(|d| d.saturating_sub(q.ctx.elapsed())))
            .min()
    }

    fn check_deadlines(&self) {
        for q in self.active.values() {
            if let Some(d) = q.deadline {
                if q.ctx.elapsed() >= d {
                    q.ctx.cancel.cancel();
                }
            }
            if q.ctx.cancel.is_cancelled() {
                q.live.set_cancelling();
            }
        }
    }

    /// Fill free worker slots round-robin: one work order per query per
    /// pass, so every active query makes progress each turn.
    fn dispatch(&mut self) {
        while self.free_slots > 0 && !self.order.is_empty() {
            let mut dispatched_any = false;
            for _ in 0..self.order.len() {
                if self.free_slots == 0 {
                    break;
                }
                let id = self.order.pop_front().expect("ring is non-empty");
                self.order.push_back(id);
                let Some(q) = self.active.get_mut(&id) else {
                    continue;
                };
                // A failed or cancelled query stops dispatching; its
                // in-flight completions still drain through `handle_done`.
                if q.first_error.is_some() || q.ctx.cancel.is_cancelled() {
                    continue;
                }
                let Some(wo) = q.core.next_work_order() else {
                    continue;
                };
                let charged = match &wo.kind {
                    WorkKind::Stream { block }
                        if q.ctx.plan.topology().stream_parent(wo.op).is_some() =>
                    {
                        block.allocated_bytes()
                    }
                    _ => 0,
                };
                let (seq, op) = (wo.seq, wo.op);
                q.in_flight.insert(seq, (op, charged));
                if self.work_tx.send(ToWorker::Run(q.ctx.clone(), wo)).is_err() {
                    q.in_flight.remove(&seq);
                    q.core.fail_in_flight(op, charged);
                    if q.first_error.is_none() {
                        q.first_error = Some(EngineError::Internal(
                            "worker pool hung up unexpectedly".into(),
                        ));
                    }
                    continue;
                }
                self.free_slots -= 1;
                dispatched_any = true;
            }
            if !dispatched_any {
                break;
            }
        }
    }

    fn handle_done(&mut self, c: Completion) {
        self.free_slots += 1;
        // The query must still be active: finalization requires in-flight
        // work to have drained. Defensive skip if it somehow is not.
        let Some(q) = self.active.get_mut(&c.wo.query) else {
            return;
        };
        q.in_flight.remove(&c.wo.seq);
        match c.produced {
            Ok(produced) => {
                q.completed += 1;
                let record = TaskRecord {
                    op: c.wo.op,
                    worker: c.worker,
                    start: c.start,
                    end: c.end,
                };
                if let Err(e) = q.core.on_complete(&c.wo, produced, record) {
                    if q.first_error.is_none() {
                        q.first_error = Some(e);
                    }
                }
            }
            Err(e) => {
                q.core.on_error(&c.wo);
                if q.first_error.is_none() {
                    q.first_error = Some(e);
                }
            }
        }
    }

    fn handle_submit(&mut self, sub: Box<Submission>) {
        if self.draining {
            self.hub.add(HubCounter::QueriesFailed, 1);
            let _ = sub.reply.send(Err(EngineError::ServiceShutdown));
            return;
        }
        if let Err(e) = validate_plan(&sub.plan, &self.config) {
            self.hub.add(HubCounter::QueriesFailed, 1);
            let _ = sub.reply.send(Err(e));
            return;
        }
        if sub.reservation == 0 || sub.reservation > self.config.memory_budget {
            self.hub.add(HubCounter::AdmissionRejected, 1);
            let _ = sub.reply.send(Err(EngineError::AdmissionRejected {
                query: sub.id,
                reservation: sub.reservation,
                budget: self.config.memory_budget,
                reason: "reservation can never fit the global budget".into(),
            }));
            return;
        }
        // FIFO admission: no queue-jumping past an earlier waiter even if
        // this reservation would fit right now.
        if self.pending.is_empty() && self.reserved + sub.reservation <= self.config.memory_budget {
            self.activate(*sub);
        } else if self.pending.len() < self.config.max_queued {
            self.hub.add(HubCounter::AdmissionQueued, 1);
            self.registry.enqueue(sub.id, sub.reservation);
            self.pending.push_back(sub);
        } else {
            self.hub.add(HubCounter::AdmissionRejected, 1);
            let _ = sub.reply.send(Err(EngineError::AdmissionRejected {
                query: sub.id,
                reservation: sub.reservation,
                budget: self.config.memory_budget,
                reason: format!("admission queue full ({} queued)", self.pending.len()),
            }));
        }
    }

    /// Admit queued submissions in FIFO order while their reservations fit
    /// (on draining: reject them all).
    fn admit_pending(&mut self) {
        while let Some(front) = self.pending.front() {
            if self.draining {
                let sub = self.pending.pop_front().expect("front exists");
                self.registry.remove(sub.id);
                let _ = sub.reply.send(Err(EngineError::ServiceShutdown));
                continue;
            }
            if self.reserved + front.reservation > self.config.memory_budget {
                break;
            }
            let sub = self.pending.pop_front().expect("front exists");
            self.activate(*sub);
        }
    }

    /// Carve the query's reservation out of the global budget and set up its
    /// context, observer stack and scheduling core.
    fn activate(&mut self, sub: Submission) {
        let Submission {
            id,
            plan,
            opts,
            token,
            reply,
            reservation,
            cache,
            submitted,
            explain,
        } = sub;
        self.hub.record(
            HubHistogram::AdmissionWaitUs,
            submitted.elapsed().as_micros() as u64,
        );
        // The per-query tracker mirrors into the service tracker (charged
        // against the *global* budget first), and the per-query pool caps
        // this query at its own reservation.
        let tracker = MemoryTracker::with_parent(self.tracker.clone(), self.config.memory_budget);
        let pool = BlockPool::with_budget(tracker.clone(), reservation);
        pool.set_reuse_enabled(self.config.pool_reuse);
        let plan = Arc::new(plan);
        let schema = plan.result_schema().clone();
        let sink = (self.config.trace || opts.trace)
            .then(|| TraceSink::for_query(self.config.trace_capacity, id));
        // The query's live record: progress, occupancy and spill activity
        // stream into it from the observer stack and the spill hook, and the
        // HTTP endpoint and watchdog read it concurrently.
        let live = LiveQuery::new(
            id,
            plan.ops()[plan.sink()].name.clone(),
            reservation,
            opts.deadline,
            tracker.clone(),
            sink.clone(),
            plan.len(),
        );
        // Spill mode gives this query a private disk tier charged against its
        // own tracker: evicted bytes come off the reservation (and thus the
        // global budget), so only resident bytes count toward admission.
        let degrade = opts.degrade.unwrap_or(self.config.degrade);
        let spill_enabled = degrade == crate::engine::DegradePolicy::Spill;
        if spill_enabled {
            match uot_storage::SpillStore::new(None, tracker.clone()) {
                Ok(store) => {
                    store.set_observer(crate::spill::EngineSpillHook::with_telemetry(
                        opts.faults.clone(),
                        sink.clone(),
                        tracker.clone(),
                        Some(self.hub.clone()),
                        Some(live.clone()),
                    ));
                    pool.enable_spill(store);
                }
                Err(e) => {
                    self.registry.remove(id);
                    self.hub.add(HubCounter::QueriesFailed, 1);
                    let _ = reply.send(Err(e.into()));
                    return;
                }
            }
        }
        let ctx = match ExecContext::new(
            plan,
            pool,
            self.config.temp_format,
            self.config.block_bytes,
            self.config.hash_table_shards,
        ) {
            Ok(c) => c,
            Err(e) => {
                self.registry.remove(id);
                self.hub.add(HubCounter::QueriesFailed, 1);
                let _ = reply.send(Err(e));
                return;
            }
        };
        let mut ctx = ctx.with_query(id).with_cancellation(token);
        if let Some(faults) = opts.faults {
            ctx = ctx.with_faults(faults);
        }
        if let Some(sink) = &sink {
            ctx = ctx.with_trace(sink.clone());
        }
        if spill_enabled {
            ctx.plan_grace(reservation);
        }
        let uot = opts.uot.unwrap_or(self.config.default_uot).normalized();
        // Fused chains hold their intermediate state in registers and stack —
        // nothing the pool can evict — so spill mode pins every edge to the
        // staged path.
        let fusion_policy = if spill_enabled {
            crate::fusion::FusionPolicy::Never
        } else {
            opts.fusion.unwrap_or(self.config.fusion)
        };
        let fusion_state = crate::fusion::plan_fusion(
            &ctx.plan,
            fusion_policy,
            self.config.workers,
            self.config.block_bytes,
            uot,
        );
        let ctx = Arc::new(ctx.with_fusion(fusion_state));
        let sched = SchedulerConfig {
            mode: ExecMode::Parallel {
                workers: self.config.workers,
            },
            default_uot: uot,
            max_dop_per_op: self.config.max_dop_per_op,
            deadline: opts.deadline,
        };
        let observer = CompositeObserver::new(
            MetricsObserver::new(&ctx.plan),
            CompositeObserver::new(
                HubObserver::new(self.hub.clone(), tracker).with_live(live.clone()),
                MaybeTracingObserver(sink.clone().map(TracingObserver::new)),
            ),
        );
        let core = SchedulerCore::with_observer(ctx.clone(), sched, observer);
        self.reserved += reservation;
        self.order.push_back(id);
        self.registry.admit(live.clone());
        self.active.insert(
            id,
            ActiveQuery {
                ctx,
                core,
                reply,
                schema,
                sink,
                reservation,
                cache,
                deadline: opts.deadline,
                submitted,
                explain,
                live,
                in_flight: HashMap::new(),
                completed: 0,
                first_error: None,
            },
        );
    }

    /// Finalize every query whose in-flight work has drained and that is
    /// finished, failed, cancelled or stalled.
    fn sweep_finished(&mut self) {
        let done: Vec<QueryId> = self
            .active
            .iter()
            .filter(|(_, q)| {
                q.in_flight.is_empty()
                    && (q.first_error.is_some()
                        || q.ctx.cancel.is_cancelled()
                        || q.core.all_finished()
                        || q.core.ready_len() == 0)
            })
            .map(|(&id, _)| id)
            .collect();
        for id in done {
            self.finalize(id);
        }
    }

    /// Tear down one query — the same contract as a standalone run: metrics
    /// are captured, then every byte it charged drains back through its
    /// parented tracker to the service tracker, on success and error paths
    /// alike. Its reservation is released and queued admissions retried.
    fn finalize(&mut self, id: QueryId) {
        let Some(mut q) = self.active.remove(&id) else {
            return;
        };
        self.order.retain(|&x| x != id);
        // Error precedence mirrors the standalone driver: first work-order
        // error, else a tripped token, else a stall diagnostic.
        let mut error = q.first_error.take();
        if error.is_none() && q.ctx.cancel.is_cancelled() {
            error = Some(EngineError::Cancelled {
                after: Duration::ZERO,
                completed_work_orders: 0,
            });
        }
        if error.is_none() && !q.core.all_finished() {
            error = Some(q.core.stall_error());
        }
        let wall = q.ctx.elapsed();
        let (blocks, mut metrics) = q.core.into_results(wall, self.config.workers);
        metrics.plan_cache = q.cache;
        self.registry.remove(id);
        match &error {
            None => self.hub.add(HubCounter::QueriesCompleted, 1),
            Some(EngineError::Cancelled { .. }) => self.hub.add(HubCounter::QueriesCancelled, 1),
            Some(_) => self.hub.add(HubCounter::QueriesFailed, 1),
        }
        self.hub.record(
            HubHistogram::QueryLatencyUs,
            q.submitted.elapsed().as_micros() as u64,
        );
        let result = match error {
            None => {
                let trace = q
                    .sink
                    .map(|s| s.finish(q.ctx.plan.ops().iter().map(|op| op.name.clone()).collect()));
                let explain = ExplainAnalyze::build(&q.ctx.plan, &metrics);
                // An EXPLAIN ANALYZE submission delivers the rendered tree
                // as its rows; everything measured stays attached.
                let (schema, blocks) = if q.explain {
                    explain.result_blocks()
                } else {
                    (q.schema, blocks)
                };
                Ok(QueryResult {
                    schema,
                    blocks,
                    metrics,
                    trace,
                    explain: Some(explain),
                })
            }
            Some(e) => Err(crate::scheduler::finalize_error(e, wall, q.completed)),
        };
        let _ = q.reply.send(result);
        self.reserved -= q.reservation;
        self.admit_pending();
    }
}

/// The per-plan half of [`crate::engine::Engine`]'s config validation:
/// temporary blocks must hold at least one output tuple of every
/// block-producing operator.
fn validate_plan(plan: &QueryPlan, config: &ServiceConfig) -> Result<()> {
    for (id, op) in plan.ops().iter().enumerate() {
        if matches!(op.kind, OperatorKind::BuildHash { .. }) {
            continue;
        }
        let width = op.out_schema.tuple_width();
        if width > config.block_bytes {
            return Err(EngineError::Config(format!(
                "block_bytes={} cannot hold one {}-byte tuple of op{} ({})",
                config.block_bytes, width, id, op.name
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{JoinType, PlanBuilder, Source};
    use uot_expr::{cmp, col, lit, AggSpec, CmpOp};
    use uot_storage::{DataType, Table, TableBuilder, Value};

    fn table(name: &str, n: i32) -> Arc<Table> {
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Float64)]);
        let mut tb = TableBuilder::new(name, s, BlockFormat::Column, 96);
        for i in 0..n {
            tb.append(&[Value::I32(i), Value::F64(i as f64 * 2.0)])
                .unwrap();
        }
        Arc::new(tb.finish())
    }

    fn join_agg_plan(rows: i32) -> QueryPlan {
        let dim = table("dim", 20);
        let fact = table("fact", rows);
        let mut pb = PlanBuilder::new();
        let b = pb.build_hash(Source::Table(dim), vec![0], vec![1]).unwrap();
        let s = pb
            .filter(Source::Table(fact), cmp(col(0), CmpOp::Lt, lit(100i32)))
            .unwrap();
        let p = pb
            .probe(Source::Op(s), b, vec![0], vec![0], vec![0], JoinType::Inner)
            .unwrap();
        let a = pb
            .aggregate(
                Source::Op(p),
                vec![],
                vec![AggSpec::count_star(), AggSpec::sum(col(1))],
                &["n", "s"],
            )
            .unwrap();
        pb.build(a).unwrap()
    }

    fn small_service(workers: usize) -> QueryService {
        QueryService::start(ServiceConfig {
            workers,
            memory_budget: 64 << 20,
            default_reservation: 8 << 20,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn two_concurrent_queries_complete_and_pool_drains() {
        let svc = small_service(4);
        let h1 = svc.submit(join_agg_plan(200)).unwrap();
        let h2 = svc.submit(join_agg_plan(400)).unwrap();
        assert_ne!(h1.id(), h2.id());
        let r1 = h1.wait().unwrap();
        let r2 = h2.wait().unwrap();
        assert_eq!(r1.rows()[0][0], Value::I64(20));
        assert_eq!(r2.rows()[0][0], Value::I64(20));
        assert_eq!(r1.metrics.query.raw(), 1);
        assert_eq!(r2.metrics.query.raw(), 2);
        assert_eq!(svc.memory_in_use(), 0, "global pool must drain");
        svc.shutdown();
    }

    #[test]
    fn admission_queues_until_a_reservation_frees() {
        // Budget fits exactly one reservation: the second query queues and
        // still completes once the first finishes.
        let svc = QueryService::start(ServiceConfig {
            workers: 2,
            memory_budget: 8 << 20,
            default_reservation: 8 << 20,
            ..Default::default()
        })
        .unwrap();
        let h1 = svc.submit(join_agg_plan(300)).unwrap();
        let h2 = svc.submit(join_agg_plan(300)).unwrap();
        assert_eq!(h1.wait().unwrap().rows()[0][0], Value::I64(20));
        assert_eq!(h2.wait().unwrap().rows()[0][0], Value::I64(20));
        assert_eq!(svc.memory_in_use(), 0);
    }

    #[test]
    fn impossible_reservation_is_rejected() {
        let svc = small_service(2);
        let err = svc
            .submit_with(
                join_agg_plan(50),
                ExecOptions::default().with_reservation(usize::MAX),
            )
            .unwrap()
            .wait()
            .unwrap_err();
        match err {
            EngineError::AdmissionRejected { query, reason, .. } => {
                assert_eq!(query.raw(), 1);
                assert!(reason.contains("never fit"), "{reason}");
            }
            other => panic!("expected AdmissionRejected, got {other}"),
        }
        assert_eq!(svc.memory_in_use(), 0);
    }

    #[test]
    fn full_admission_queue_rejects() {
        let svc = QueryService::start(ServiceConfig {
            workers: 1,
            memory_budget: 1 << 20,
            default_reservation: 1 << 20,
            max_queued: 0,
            ..Default::default()
        })
        .unwrap();
        // First admits; with a zero-depth queue the second must be rejected
        // while the first still holds the whole budget.
        let h1 = svc.submit(join_agg_plan(2000)).unwrap();
        let h2 = svc.submit(join_agg_plan(50)).unwrap();
        let e2 = h2.wait().unwrap_err();
        assert!(matches!(e2, EngineError::AdmissionRejected { .. }), "{e2}");
        h1.wait().unwrap();
        assert_eq!(svc.memory_in_use(), 0);
    }

    #[test]
    fn cancelling_one_query_leaves_siblings_running() {
        let svc = small_service(2);
        let victim = svc.submit(join_agg_plan(4000)).unwrap();
        let survivor = svc.submit(join_agg_plan(200)).unwrap();
        victim.cancel();
        let r = survivor.wait().unwrap();
        assert_eq!(r.rows()[0][0], Value::I64(20));
        match victim.wait() {
            Err(EngineError::Cancelled { .. }) => {}
            Err(other) => panic!("expected Cancelled, got {other}"),
            // Tiny race: the victim may have finished before the cancel
            // landed; that is a legal outcome too.
            Ok(r) => assert_eq!(r.rows()[0][0], Value::I64(20)),
        }
        assert_eq!(svc.memory_in_use(), 0, "teardown must drain the victim");
    }

    #[test]
    fn per_query_deadline_fires_while_siblings_survive() {
        let svc = small_service(2);
        let doomed = svc
            .submit_with(
                join_agg_plan(4000),
                ExecOptions::default().with_deadline(Duration::ZERO),
            )
            .unwrap();
        let survivor = svc.submit(join_agg_plan(200)).unwrap();
        let e = doomed.wait().unwrap_err();
        assert!(matches!(e, EngineError::Cancelled { .. }), "{e}");
        assert_eq!(survivor.wait().unwrap().rows()[0][0], Value::I64(20));
        assert_eq!(svc.memory_in_use(), 0);
    }

    #[test]
    fn per_query_budget_fails_only_the_offender() {
        let svc = QueryService::start(ServiceConfig {
            workers: 2,
            memory_budget: 64 << 20,
            default_reservation: 8 << 20,
            default_uot: Uot::Table,
            block_bytes: 96,
            // Fusion off: the overflow below relies on Table-UoT staging,
            // which a fused pipeline would bypass.
            fusion: crate::fusion::FusionPolicy::Never,
            ..Default::default()
        })
        .unwrap();
        // A tiny reservation the Table-UoT staging must overflow.
        let offender = svc
            .submit_with(
                join_agg_plan(2000),
                ExecOptions::default().with_reservation(600),
            )
            .unwrap();
        let sibling = svc.submit(join_agg_plan(200)).unwrap();
        let err = offender.wait().unwrap_err();
        match &err {
            EngineError::BudgetExceeded {
                query,
                budget,
                global_budget,
                ..
            } => {
                assert_eq!(query.raw(), 1);
                assert_eq!(*budget, 600);
                assert_eq!(*global_budget, 64 << 20);
            }
            other => panic!("expected BudgetExceeded, got {other}"),
        }
        assert_eq!(sibling.wait().unwrap().rows()[0][0], Value::I64(20));
        assert_eq!(svc.memory_in_use(), 0);
    }

    /// A filter whose Table-UoT staging dwarfs a small reservation, feeding
    /// an aggregate (the spill-friendly consumer: streaming work orders hold
    /// no output blocks, so the flushed transfer drains as it is consumed).
    fn select_agg_plan(rows: i32) -> QueryPlan {
        let fact = table("fact", rows);
        let mut pb = PlanBuilder::new();
        let s = pb
            .filter(Source::Table(fact), cmp(col(0), CmpOp::Lt, lit(100i32)))
            .unwrap();
        let a = pb
            .aggregate(Source::Op(s), vec![], vec![AggSpec::count_star()], &["n"])
            .unwrap();
        pb.build(a).unwrap()
    }

    #[test]
    fn spill_lets_an_overcommitted_query_complete() {
        // A 600-byte reservation the Table-UoT staging must overflow — the
        // same wall per_query_budget_fails_only_the_offender hits — but with
        // DegradePolicy::Spill the staged blocks evict to this query's disk
        // tier and the query completes, while an unrelated sibling runs
        // untouched on its own reservation.
        let svc = QueryService::start(ServiceConfig {
            workers: 2,
            memory_budget: 64 << 20,
            default_reservation: 8 << 20,
            default_uot: Uot::Table,
            block_bytes: 96,
            fusion: crate::fusion::FusionPolicy::Never,
            ..Default::default()
        })
        .unwrap();
        let spilled = svc
            .submit_with(
                select_agg_plan(2000),
                ExecOptions::default()
                    .with_reservation(600)
                    .with_degrade(crate::engine::DegradePolicy::Spill),
            )
            .unwrap();
        let sibling = svc.submit(join_agg_plan(200)).unwrap();
        let r = spilled.wait().unwrap();
        assert_eq!(r.rows()[0][0], Value::I64(100));
        assert!(
            r.metrics.spill_events > 0,
            "a 600-byte reservation under Table UoT must evict staged blocks"
        );
        assert_eq!(sibling.wait().unwrap().rows()[0][0], Value::I64(20));
        assert_eq!(svc.memory_in_use(), 0, "resident bytes must drain");
        svc.shutdown();
    }

    #[test]
    fn traced_query_stamps_its_id() {
        let svc = small_service(2);
        let h = svc
            .submit_with(join_agg_plan(100), ExecOptions::default().traced())
            .unwrap();
        let id = h.id();
        let r = h.wait().unwrap();
        let trace = r.trace.expect("tracing was requested");
        assert_eq!(trace.query, id);
        assert!(!trace.events.is_empty());
    }

    #[test]
    fn shutdown_rejects_queued_and_later_submissions() {
        let svc = QueryService::start(ServiceConfig {
            workers: 1,
            memory_budget: 1 << 20,
            default_reservation: 1 << 20,
            ..Default::default()
        })
        .unwrap();
        let h1 = svc.submit(join_agg_plan(1000)).unwrap();
        let h2 = svc.submit(join_agg_plan(50)).unwrap(); // queued behind h1
        drop(svc); // graceful: drains h1, rejects h2
        assert!(h1.wait().is_ok());
        assert!(matches!(
            h2.wait().unwrap_err(),
            EngineError::ServiceShutdown | EngineError::AdmissionRejected { .. }
        ));
    }

    #[test]
    fn invalid_config_is_rejected_at_start() {
        assert!(QueryService::start(ServiceConfig {
            workers: 0,
            ..Default::default()
        })
        .is_err());
        assert!(QueryService::start(ServiceConfig {
            default_reservation: 0,
            ..Default::default()
        })
        .is_err());
        assert!(QueryService::start(ServiceConfig {
            max_dop_per_op: Some(0),
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn undersized_blocks_are_rejected_per_query() {
        let svc = QueryService::start(ServiceConfig {
            block_bytes: 8,
            workers: 1,
            ..Default::default()
        })
        .unwrap();
        let err = svc.submit(join_agg_plan(10)).unwrap().wait().unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err}");
    }
}
