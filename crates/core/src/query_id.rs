//! Query identity: the attribution key for multi-query execution.
//!
//! Once many queries share one worker pool and one block-pool budget, every
//! dispatchable unit, pool charge, metric and trace event must say *which*
//! query it belongs to. [`QueryId`] is that key. Standalone `Engine` runs use
//! [`QueryId::SOLO`] (id 0); the `QueryService` hands out ids from 1 upward
//! per submission.

use std::fmt;

/// Identity of one query admitted to the engine.
///
/// `Ord` follows admission order, which the service's round-robin cursor and
/// diagnostics rely on. Displayed as `q<N>` (`q0` is the solo id).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(u64);

impl QueryId {
    /// The id used by single-query entry points (`Engine::execute` and the
    /// bare scheduler drivers): there is only one query, it is `q0`.
    pub const SOLO: QueryId = QueryId(0);

    /// Construct from a raw id. The service assigns these monotonically.
    pub fn new(raw: u64) -> Self {
        QueryId(raw)
    }

    /// The raw numeric id (used e.g. as the Chrome-trace `pid`).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_is_zero_and_displays() {
        assert_eq!(QueryId::SOLO, QueryId::new(0));
        assert_eq!(QueryId::SOLO.to_string(), "q0");
        assert_eq!(QueryId::new(17).to_string(), "q17");
        assert_eq!(QueryId::new(17).raw(), 17);
    }

    #[test]
    fn ordered_by_admission() {
        assert!(QueryId::new(1) < QueryId::new(2));
        assert_eq!(QueryId::default(), QueryId::SOLO);
    }
}
