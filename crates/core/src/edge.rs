//! Transfer edges: the data path between a producer and its consumer.
//!
//! The paper's central mechanism — accumulate a producer's output blocks
//! until the edge's [`Uot`] threshold is reached, then transfer them to the
//! consumer — lives here as a first-class type. The scheduler owns one
//! [`TransferEdge`] per operator, describing what happens to that operator's
//! output:
//!
//! * **Sink** — the operator is the plan sink; blocks go straight to the
//!   query result, no staging.
//! * **Stream** — blocks stage at the consumer's input until the UoT
//!   threshold is met ([`TransferAction::Transfer`]), with partial
//!   accumulations flushed when the producer finishes (Section III-B:
//!   "partially filled blocks are scheduled for data transfer at the end of
//!   the operator's execution").
//! * **Materialize** — the inner side of a nested-loops join. The consumer
//!   cannot start before this producer finishes, so the UoT is immaterial:
//!   blocks bypass staging and park at the producer for bulk consumption.
//!
//! The edge also owns the **collected-bytes accounting**: blocks parked for
//! bulk consumption (a sort's input, an NLJ's materialized inner side) are
//! charged to the edge and released in one step when the consumer finishes,
//! which is what makes `peak_temp_bytes` reflect the paper's Section VI
//! footprint analysis.

use crate::plan::OpId;
use crate::query_id::QueryId;
use crate::uot::Uot;
use std::sync::Arc;
use uot_storage::{SpillSlot, StorageBlock};

/// Where an operator's output goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeDest {
    /// Plan sink: blocks are query results.
    Sink,
    /// Streamed edge into `0` with UoT staging.
    Stream(OpId),
    /// Materialization edge into nested-loops join `0` (UoT bypass).
    Materialize(OpId),
}

/// What the scheduler should do with freshly produced blocks.
///
/// Stream edges stage blocks wrapped in [`SpillSlot`]s: while a block sits
/// below the UoT threshold it is *cold* — the only live reference is the
/// slot's — and the block pool may evict it to the disk spill tier under
/// memory pressure. The scheduler resolves slots back into blocks (faulting
/// spilled ones in) at transfer time.
#[derive(Debug)]
pub enum TransferAction {
    /// Append to the query result set.
    Emit(Vec<Arc<StorageBlock>>),
    /// The UoT threshold was reached: transfer these slots to the consumer.
    Transfer(Vec<Arc<SpillSlot>>),
    /// Still accumulating below the threshold. Carries the slots staged by
    /// *this* call so the scheduler can register them as eviction victims.
    Hold(Vec<Arc<SpillSlot>>),
    /// Materialization edge: park these blocks at the producer for the
    /// consuming join.
    Materialize(Vec<Arc<StorageBlock>>),
}

/// The outgoing data edge of one operator.
#[derive(Debug)]
pub struct TransferEdge {
    dest: EdgeDest,
    /// Accumulation threshold in blocks (`usize::MAX` for [`Uot::Table`]).
    threshold: usize,
    /// Blocks staged on this edge, below the threshold — each wrapped in a
    /// [`SpillSlot`] so the pool's second tier can evict cold ones.
    staged: Vec<Arc<SpillSlot>>,
    /// Bytes of tracked blocks parked for bulk consumption downstream of
    /// this edge; released when the consumer finishes.
    collected_bytes: usize,
    /// The query whose plan this edge belongs to: staged blocks and parked
    /// bytes are charged against this query's reservation, and a teardown
    /// drains exactly the edges carrying its id.
    query: QueryId,
}

impl TransferEdge {
    /// Edge of the sink operator.
    pub fn sink() -> Self {
        TransferEdge {
            dest: EdgeDest::Sink,
            threshold: 1,
            staged: Vec::new(),
            collected_bytes: 0,
            query: QueryId::SOLO,
        }
    }

    /// Streamed edge into `consumer` with the given UoT.
    pub fn stream(consumer: OpId, uot: Uot) -> Self {
        TransferEdge {
            dest: EdgeDest::Stream(consumer),
            threshold: uot.threshold_blocks(),
            staged: Vec::new(),
            collected_bytes: 0,
            query: QueryId::SOLO,
        }
    }

    /// Materialization edge into nested-loops join `consumer`.
    pub fn materialize(consumer: OpId) -> Self {
        TransferEdge {
            dest: EdgeDest::Materialize(consumer),
            threshold: 1,
            staged: Vec::new(),
            collected_bytes: 0,
            query: QueryId::SOLO,
        }
    }

    /// Attribute this edge to `query` (builder-style; the scheduler stamps
    /// the owning context's id when it builds the edge set).
    pub fn owned_by(mut self, query: QueryId) -> Self {
        self.query = query;
        self
    }

    /// The query this edge belongs to.
    pub fn query(&self) -> QueryId {
        self.query
    }

    /// Where this edge leads.
    pub fn dest(&self) -> EdgeDest {
        self.dest
    }

    /// The consumer on the other end, if any.
    pub fn consumer(&self) -> Option<OpId> {
        match self.dest {
            EdgeDest::Sink => None,
            EdgeDest::Stream(c) | EdgeDest::Materialize(c) => Some(c),
        }
    }

    /// Blocks currently staged on this edge.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Accumulation threshold in blocks (`usize::MAX` for [`Uot::Table`]).
    pub fn threshold_blocks(&self) -> usize {
        self.threshold
    }

    /// Stage freshly produced blocks and decide what to do with them. `tag`
    /// identifies the producing operator; spill trace events carry it.
    pub fn stage(&mut self, blocks: Vec<Arc<StorageBlock>>, tag: usize) -> TransferAction {
        if blocks.is_empty() {
            return TransferAction::Hold(Vec::new());
        }
        match self.dest {
            EdgeDest::Sink => TransferAction::Emit(blocks),
            EdgeDest::Materialize(_) => TransferAction::Materialize(blocks),
            EdgeDest::Stream(_) => {
                let fresh: Vec<Arc<SpillSlot>> =
                    blocks.into_iter().map(|b| SpillSlot::new(b, tag)).collect();
                self.staged.extend(fresh.iter().cloned());
                if self.staged.len() >= self.threshold {
                    TransferAction::Transfer(std::mem::take(&mut self.staged))
                } else {
                    TransferAction::Hold(fresh)
                }
            }
        }
    }

    /// Flush a partial accumulation (producer finished before the threshold
    /// was reached). Returns the staged slots; empty for non-stream edges.
    pub fn flush(&mut self) -> Vec<Arc<SpillSlot>> {
        std::mem::take(&mut self.staged)
    }

    /// Charge bytes of blocks parked for bulk consumption to this edge.
    pub fn add_collected(&mut self, bytes: usize) {
        self.collected_bytes += bytes;
    }

    /// Release the parked bytes (the consumer finished).
    pub fn take_collected(&mut self) -> usize {
        std::mem::take(&mut self.collected_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uot_storage::{BlockFormat, DataType, Schema, Value};

    fn block(rows: i32) -> Arc<StorageBlock> {
        let s = Schema::from_pairs(&[("k", DataType::Int32)]);
        let mut b = StorageBlock::new(s, BlockFormat::Row, 256).unwrap();
        for i in 0..rows {
            b.append_row(&[Value::I32(i)]).unwrap();
        }
        Arc::new(b)
    }

    #[test]
    fn threshold_accumulates_then_transfers() {
        let mut e = TransferEdge::stream(7, Uot::Blocks(3));
        assert!(matches!(
            e.stage(vec![block(1)], 0),
            TransferAction::Hold(_)
        ));
        assert!(matches!(
            e.stage(vec![block(1)], 0),
            TransferAction::Hold(_)
        ));
        assert_eq!(e.staged_len(), 2);
        match e.stage(vec![block(1)], 0) {
            TransferAction::Transfer(slots) => assert_eq!(slots.len(), 3),
            other => panic!("expected transfer, got {other:?}"),
        }
        assert_eq!(e.staged_len(), 0);
    }

    #[test]
    fn oversized_batch_transfers_at_once() {
        let mut e = TransferEdge::stream(1, Uot::Blocks(2));
        match e.stage(vec![block(1), block(1), block(1)], 0) {
            TransferAction::Transfer(slots) => assert_eq!(slots.len(), 3),
            other => panic!("expected transfer, got {other:?}"),
        }
    }

    #[test]
    fn table_uot_holds_until_flush() {
        let mut e = TransferEdge::stream(2, Uot::Table);
        for _ in 0..50 {
            assert!(matches!(
                e.stage(vec![block(1)], 0),
                TransferAction::Hold(_)
            ));
        }
        assert_eq!(e.staged_len(), 50);
        let flushed = e.flush();
        assert_eq!(flushed.len(), 50);
        assert_eq!(e.staged_len(), 0);
    }

    #[test]
    fn partial_flush_on_producer_finish() {
        let mut e = TransferEdge::stream(2, Uot::Blocks(4));
        match e.stage(vec![block(1), block(1)], 0) {
            TransferAction::Hold(fresh) => {
                assert_eq!(fresh.len(), 2, "hold reports the newly staged slots")
            }
            other => panic!("expected hold, got {other:?}"),
        }
        let flushed = e.flush();
        assert_eq!(flushed.len(), 2, "partial accumulation must flush");
        assert!(e.flush().is_empty(), "second flush is empty");
    }

    #[test]
    fn materialization_edge_bypasses_staging() {
        let mut e = TransferEdge::materialize(4);
        match e.stage(vec![block(1), block(1)], 0) {
            TransferAction::Materialize(blocks) => assert_eq!(blocks.len(), 2),
            other => panic!("expected materialize, got {other:?}"),
        }
        assert_eq!(e.staged_len(), 0, "bypass edges never stage");
        assert_eq!(e.consumer(), Some(4));
        assert_eq!(e.dest(), EdgeDest::Materialize(4));
    }

    #[test]
    fn sink_edge_emits_immediately() {
        let mut e = TransferEdge::sink();
        match e.stage(vec![block(2)], 0) {
            TransferAction::Emit(blocks) => assert_eq!(blocks.len(), 1),
            other => panic!("expected emit, got {other:?}"),
        }
        assert_eq!(e.consumer(), None);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut e = TransferEdge::stream(0, Uot::Blocks(1));
        match e.stage(Vec::new(), 0) {
            TransferAction::Hold(fresh) => assert!(fresh.is_empty()),
            other => panic!("expected hold, got {other:?}"),
        }
        assert_eq!(e.staged_len(), 0);
    }

    #[test]
    fn collected_bytes_accumulate_and_release() {
        let mut e = TransferEdge::materialize(3);
        e.add_collected(100);
        e.add_collected(28);
        assert_eq!(e.take_collected(), 128);
        assert_eq!(e.take_collected(), 0, "release is one-shot");
    }

    #[test]
    fn edges_default_to_solo_and_take_an_owner() {
        assert_eq!(TransferEdge::sink().query(), QueryId::SOLO);
        let e = TransferEdge::stream(1, Uot::Blocks(2)).owned_by(QueryId::new(5));
        assert_eq!(e.query(), QueryId::new(5));
    }

    #[test]
    fn blocks_zero_behaves_like_one() {
        let mut e = TransferEdge::stream(1, Uot::Blocks(0));
        assert!(matches!(
            e.stage(vec![block(1)], 0),
            TransferAction::Transfer(_)
        ));
    }

    #[test]
    fn staged_slots_resolve_back_to_their_blocks() {
        let mut e = TransferEdge::stream(1, Uot::Blocks(2));
        assert!(matches!(
            e.stage(vec![block(3)], 9),
            TransferAction::Hold(_)
        ));
        let slots = e.flush();
        assert_eq!(slots.len(), 1);
        let b = slots[0].take(None).unwrap();
        assert_eq!(b.num_rows(), 3);
    }
}
