//! Fused pipeline execution: the UoT→0 endpoint of the transfer spectrum.
//!
//! Every point on the paper's spectrum — `Uot::Blocks(1)` through
//! `Uot::Table` — still materializes intermediate blocks between operators
//! and stages them on a [`TransferEdge`](crate::transfer::TransferEdge).
//! This module adds the missing endpoint: a *fused* pipeline compiles a
//! maximal chain of stream-connected operators
//! (scan/select → LIP filter → hash-probe(s) → aggregate-or-sink) into one
//! push-based loop over the input batch. Per block the fused loop evaluates
//! predicates, consults LIP Bloom filters, hashes once, probes with the
//! prefetched [`ProbeSession`](crate::hash_table::ProbeSession), gathers
//! payload columns, and feeds the aggregate accumulator directly — no
//! intermediate block is ever staged on an edge inside the fused region.
//!
//! Fused chains still execute as ordinary work orders on the head operator,
//! so cancellation, deadlines, panic containment, budgets, and per-query
//! attribution all keep working. Build sides, sorts, nested-loops joins and
//! limits stay on the staged path.
//!
//! [`plan_fusion`] decides per pipeline using `uot-model`'s
//! [`CostParams::fusion_wins`] estimate (policy [`FusionPolicy::Auto`]), or
//! unconditionally under [`FusionPolicy::Always`] / [`FusionPolicy::Never`].

use crate::error::EngineError;
use crate::plan::{OpId, OperatorKind, QueryPlan, Source};
use crate::state::ExecContext;
use crate::uot::Uot;
use crate::Result;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use uot_model::{CostParams, HardwareProfile};
use uot_storage::StorageBlock;

/// Per-pipeline fusion decision policy, settable per engine/service and per
/// submission via [`ExecOptions`](crate::exec_options::ExecOptions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionPolicy {
    /// Fuse a pipeline when the cost model says the fused loop beats the
    /// better of the two staged strategies (the default).
    #[default]
    Auto,
    /// Fuse every fusible pipeline (used by equivalence tests and benches).
    Always,
    /// Never fuse; every pipeline runs on the staged path.
    Never,
}

/// Execution counters of one fused chain, filled in by [`execute_fused`]
/// and read back when the chain's tail operator finishes (the
/// `PipelineFused` trace event and `QueryMetrics` fusion counts).
#[derive(Debug, Default)]
pub struct ChainStats {
    /// Input batches pushed through the fused loop.
    pub batches: AtomicUsize,
    /// Input rows pushed through the fused loop.
    pub rows: AtomicUsize,
    /// Summed wall time inside the fused loop, nanoseconds.
    pub elapsed_ns: AtomicU64,
}

/// One fused pipeline: a maximal chain of stream-connected operators that
/// executes as a single push-based loop headed by `ops[0]`.
#[derive(Debug)]
pub struct FusedChain {
    /// Pipeline id (index into [`FusionState::chains`]).
    pub id: usize,
    /// Chain members in stream order: `ops[0]` is the head (receives the
    /// staged input), the last entry is the tail (owns the output).
    pub ops: Vec<OpId>,
    /// Human-readable chain label, e.g. `select(lineitem)+probe(#0)+agg`.
    pub label: String,
    /// Execution counters (batches / rows / elapsed).
    pub stats: ChainStats,
}

impl FusedChain {
    /// The operator that receives the chain's staged input.
    pub fn head(&self) -> OpId {
        self.ops[0]
    }

    /// The operator that owns the chain's output (and its `TransferEdge`).
    pub fn tail(&self) -> OpId {
        *self.ops.last().expect("chains have >= 2 members")
    }
}

/// The per-query fusion plan: which pipelines run fused, plus lookup tables
/// the scheduler and workers consult on the hot path. The default (empty)
/// state fuses nothing and adds a single `Vec::get` miss per lookup.
#[derive(Debug, Default)]
pub struct FusionState {
    /// Fused chains, indexed by pipeline id.
    chains: Vec<FusedChain>,
    /// `op -> chain id` when `op` heads a fused chain.
    head_chain: Vec<Option<usize>>,
    /// `op -> head OpId` when `op` is any member of a fused chain.
    member_head: Vec<Option<OpId>>,
    /// `op -> chain id` when `op` is the tail of a fused chain.
    tail_chain: Vec<Option<usize>>,
    /// Total stream pipelines in the plan (fused + staged).
    total_pipelines: usize,
}

impl FusionState {
    /// All fused chains of this query.
    pub fn chains(&self) -> &[FusedChain] {
        &self.chains
    }

    /// The fused chain headed by `op`, if any.
    pub fn chain_for_head(&self, op: OpId) -> Option<&FusedChain> {
        self.head_chain
            .get(op)
            .copied()
            .flatten()
            .map(|id| &self.chains[id])
    }

    /// The head of the fused chain `op` belongs to, if any (including the
    /// head itself).
    pub fn head_of_member(&self, op: OpId) -> Option<OpId> {
        self.member_head.get(op).copied().flatten()
    }

    /// The fused chain whose tail is `op`, if any.
    pub fn chain_for_tail(&self, op: OpId) -> Option<&FusedChain> {
        self.tail_chain
            .get(op)
            .copied()
            .flatten()
            .map(|id| &self.chains[id])
    }

    /// Number of pipelines that run fused.
    pub fn fused_count(&self) -> usize {
        self.chains.len()
    }

    /// Number of pipelines that run on the staged path.
    pub fn staged_count(&self) -> usize {
        self.total_pipelines - self.chains.len()
    }
}

/// May the stream edge `producer -> consumer` live inside a fused loop?
///
/// The producer must be a per-block pass-through (select or probe), the
/// consumer must accept a pushed batch (select, probe, or aggregate — an
/// aggregate terminates its chain at the accumulator), and the edge must be
/// a plain stream edge: `consumer` streams from `producer` and `producer`
/// is not materialized in full for an NLJ inner side.
fn fusible_link(plan: &QueryPlan, producer: OpId, consumer: OpId) -> bool {
    if plan.topology().stream_parent(consumer) != Some(producer) {
        return false;
    }
    if plan.topology().materialization_target(producer) == Some(consumer) {
        return false;
    }
    let p_ok = matches!(
        plan.op(producer).kind,
        OperatorKind::Select { .. } | OperatorKind::Probe { .. }
    );
    let c_ok = matches!(
        plan.op(consumer).kind,
        OperatorKind::Select { .. } | OperatorKind::Probe { .. } | OperatorKind::Aggregate { .. }
    );
    p_ok && c_ok
}

/// Walk an operator's stream ancestry to its base table.
fn base_table(plan: &QueryPlan, mut op: OpId) -> Option<&Arc<uot_storage::Table>> {
    loop {
        match plan.op(op).kind.stream_source() {
            Source::Table(t) => return Some(t),
            Source::Op(src) => op = *src,
        }
    }
}

/// Estimated bytes of chain-resident state the fused loop touches per batch
/// besides the input: every probed hash table (approximated by its build
/// side's base-table footprint). This is what erodes the fused loop's cache
/// residency in [`CostParams::fused_extra_cost`].
fn resident_bytes(plan: &QueryPlan, chain: &[OpId]) -> f64 {
    let mut total = 0.0;
    for &op in chain {
        if let OperatorKind::Probe { build, .. } = &plan.op(op).kind {
            if let Some(t) = base_table(plan, *build) {
                total += (t.num_rows() * t.schema().tuple_width()) as f64;
            }
        }
    }
    total
}

/// Extract maximal fusible chains from `plan` and decide per chain whether
/// to fuse, per `policy`. `workers`, `block_bytes` and `uot` parameterize
/// the staged-vs-fused cost estimate ([`FusionPolicy::Auto`]).
pub fn plan_fusion(
    plan: &QueryPlan,
    policy: FusionPolicy,
    workers: usize,
    block_bytes: usize,
    uot: Uot,
) -> FusionState {
    let n = plan.len();
    // Partition the stream graph into maximal runs of fusible links. An op
    // with no fusible parent starts a run; runs extend while links fuse.
    let mut has_fusible_parent = vec![false; n];
    for op in 0..n {
        if let Some(c) = plan.consumer_of(op) {
            if fusible_link(plan, op, c) {
                has_fusible_parent[c] = true;
            }
        }
    }
    let mut runs: Vec<Vec<OpId>> = Vec::new();
    for (op, &mid_run) in has_fusible_parent.iter().enumerate() {
        if mid_run {
            continue;
        }
        let mut run = vec![op];
        let mut cur = op;
        while let Some(c) = plan.consumer_of(cur) {
            if !fusible_link(plan, cur, c) {
                break;
            }
            run.push(c);
            cur = c;
            // An aggregate feeds its accumulator; nothing fuses past it.
            if matches!(plan.op(c).kind, OperatorKind::Aggregate { .. }) {
                break;
            }
        }
        runs.push(run);
    }
    let total_pipelines = runs.len();

    let mut state = FusionState {
        chains: Vec::new(),
        head_chain: vec![None; n],
        member_head: vec![None; n],
        tail_chain: vec![None; n],
        total_pipelines,
    };
    for run in runs {
        if run.len() < 2 {
            continue;
        }
        let fuse = match policy {
            FusionPolicy::Never => false,
            FusionPolicy::Always => true,
            FusionPolicy::Auto => {
                // Cost the chain like the staged sweeps do: N transfers of
                // `uot` blocks each, against the fused loop whose extra cost
                // is one instruction-cache term plus cache pressure from the
                // chain's resident hash tables.
                let head = run[0];
                let input_blocks = base_table(plan, head)
                    .map(|t| t.blocks().len())
                    .unwrap_or(1);
                let uot_blocks = match uot.normalized() {
                    Uot::Blocks(b) => b.max(1).min(input_blocks.max(1)),
                    Uot::Table => input_blocks.max(1),
                };
                let n_uots = (input_blocks / uot_blocks).max(1);
                let params = CostParams::derive(
                    HardwareProfile::haswell(),
                    (block_bytes * uot_blocks) as f64,
                    workers.max(1),
                    n_uots,
                );
                params.fusion_wins(resident_bytes(plan, &run))
            }
        };
        if !fuse {
            continue;
        }
        let id = state.chains.len();
        let label = run
            .iter()
            .map(|&op| plan.op(op).name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        for &op in &run {
            state.member_head[op] = Some(run[0]);
        }
        state.head_chain[run[0]] = Some(id);
        state.tail_chain[*run.last().expect("non-empty run")] = Some(id);
        state.chains.push(FusedChain {
            id,
            ops: run,
            label,
            stats: ChainStats::default(),
        });
    }
    state
}

/// Push one input batch through `chain`'s fused loop.
///
/// Each member transforms the batch in place of a staged transfer: selects
/// and probes hand the next member a virtual block (zero-copy when a select
/// passes every row through identity projections), and an aggregate tail
/// feeds its accumulator directly. Only a non-aggregate tail materializes —
/// through its own pooled [`OutputBuffer`](crate::output::OutputBuffer), the
/// same choke point the staged path uses. Returns the completed output
/// blocks, exactly as a staged work order on the tail would.
pub fn execute_fused(
    ctx: &ExecContext,
    chain: &FusedChain,
    block: &Arc<StorageBlock>,
) -> Result<Vec<StorageBlock>> {
    let t0 = Instant::now();
    let in_rows = block.num_rows();
    let mut cur: Arc<StorageBlock> = block.clone();
    let mut out = Vec::new();
    let mut drained = false;
    for (i, &op) in chain.ops.iter().enumerate() {
        let is_tail = i + 1 == chain.ops.len();
        match &ctx.plan.op(op).kind {
            OperatorKind::Select { .. } => match crate::ops::select::apply(ctx, op, &cur)? {
                Some(next) => cur = next,
                None => {
                    drained = true;
                    break;
                }
            },
            OperatorKind::Probe { .. } => match crate::ops::probe::apply(ctx, op, &cur)? {
                Some(next) => cur = Arc::new(next),
                None => {
                    drained = true;
                    break;
                }
            },
            OperatorKind::Aggregate { .. } => {
                debug_assert!(is_tail, "an aggregate terminates its fused chain");
                crate::ops::aggregate::execute_block(ctx, op, &cur)?;
                drained = true;
                break;
            }
            other => {
                return Err(EngineError::Internal(format!(
                    "operator kind {} inside fused chain {}",
                    other.kind_label(),
                    chain.label
                )))
            }
        }
        if is_tail {
            out = crate::ops::write_output(ctx, op, &cur)?;
        }
    }
    let _ = drained;
    chain.stats.batches.fetch_add(1, Ordering::Relaxed);
    chain.stats.rows.fetch_add(in_rows, Ordering::Relaxed);
    chain
        .stats
        .elapsed_ns
        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{JoinType, PlanBuilder};
    use uot_expr::{cmp, col, lit, AggSpec, CmpOp, Predicate};
    use uot_storage::{BlockFormat, DataType, Schema, Table, TableBuilder, Value};

    fn table(name: &str, rows: i32) -> Arc<Table> {
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)]);
        let mut tb = TableBuilder::new(name, s, BlockFormat::Column, 256);
        for i in 0..rows {
            tb.append(&[Value::I32(i % 10), Value::I64(i as i64)])
                .unwrap();
        }
        Arc::new(tb.finish())
    }

    /// select(fact) -> probe(build(dim)) -> aggregate.
    fn join_agg_plan() -> QueryPlan {
        let mut pb = PlanBuilder::new();
        let b = pb
            .build_hash(Source::Table(table("dim", 10)), vec![0], vec![1])
            .unwrap();
        let s = pb
            .filter(
                Source::Table(table("fact", 100)),
                cmp(col(0), CmpOp::Lt, lit(8i32)),
            )
            .unwrap();
        let p = pb
            .probe(
                Source::Op(s),
                b,
                vec![0],
                vec![0, 1],
                vec![0],
                JoinType::Inner,
            )
            .unwrap();
        let a = pb
            .aggregate(
                Source::Op(p),
                vec![0],
                vec![AggSpec::count_star(), AggSpec::sum(col(1))],
                &["n", "sv"],
            )
            .unwrap();
        pb.build(a).unwrap()
    }

    #[test]
    fn select_probe_aggregate_chain_fuses() {
        let plan = join_agg_plan();
        let fs = plan_fusion(&plan, FusionPolicy::Always, 4, 32 * 1024, Uot::Blocks(1));
        assert_eq!(fs.fused_count(), 1);
        let chain = &fs.chains()[0];
        // ops 1 (select) -> 2 (probe) -> 3 (aggregate); op 0 is the build.
        assert_eq!(chain.ops, vec![1, 2, 3]);
        assert_eq!(chain.head(), 1);
        assert_eq!(chain.tail(), 3);
        assert_eq!(fs.chain_for_head(1).map(|c| c.id), Some(0));
        assert!(fs.chain_for_head(2).is_none());
        assert_eq!(fs.head_of_member(2), Some(1));
        assert_eq!(fs.head_of_member(3), Some(1));
        assert!(fs.head_of_member(0).is_none());
        assert_eq!(fs.chain_for_tail(3).map(|c| c.id), Some(0));
        // The build is its own (staged) pipeline.
        assert_eq!(fs.staged_count(), 1);
        assert!(chain.label.contains("select"));
        assert!(chain.label.contains('+'));
    }

    #[test]
    fn auto_fuses_in_memory_pipelines() {
        let plan = join_agg_plan();
        let fs = plan_fusion(&plan, FusionPolicy::Auto, 8, 128 * 1024, Uot::Blocks(1));
        assert_eq!(
            fs.fused_count(),
            1,
            "the cost model fuses in-memory chains (fused ≪ staged best)"
        );
    }

    #[test]
    fn never_policy_fuses_nothing_but_counts_pipelines() {
        let plan = join_agg_plan();
        let fs = plan_fusion(&plan, FusionPolicy::Never, 4, 32 * 1024, Uot::Blocks(1));
        assert_eq!(fs.fused_count(), 0);
        assert_eq!(fs.staged_count(), 2); // select+probe+agg run, build run
        assert!(fs.chain_for_head(1).is_none());
        assert!(fs.head_of_member(2).is_none());
    }

    #[test]
    fn breakers_stay_staged() {
        // select -> sort: sort is a breaker, nothing fuses.
        let mut pb = PlanBuilder::new();
        let s = pb
            .filter(Source::Table(table("t", 50)), Predicate::True)
            .unwrap();
        let srt = pb
            .sort(Source::Op(s), vec![crate::plan::SortKey::asc(0)], None)
            .unwrap();
        let plan = pb.build(srt).unwrap();
        let fs = plan_fusion(&plan, FusionPolicy::Always, 4, 32 * 1024, Uot::Blocks(1));
        assert_eq!(fs.fused_count(), 0);
        assert_eq!(fs.staged_count(), 2);

        // select -> nlj(right=select): the materialized inner side must not
        // fuse into its consumer.
        let mut pb = PlanBuilder::new();
        let inner = pb
            .filter(
                Source::Table(table("r", 20)),
                cmp(col(0), CmpOp::Lt, lit(3i32)),
            )
            .unwrap();
        let j = pb
            .nested_loops(
                Source::Table(table("l", 20)),
                inner,
                vec![(0, CmpOp::Gt, 0)],
                vec![0],
                vec![0],
            )
            .unwrap();
        let plan = pb.build(j).unwrap();
        let fs = plan_fusion(&plan, FusionPolicy::Always, 4, 32 * 1024, Uot::Blocks(1));
        assert_eq!(fs.fused_count(), 0);
    }

    #[test]
    fn chain_past_aggregate_never_forms() {
        // select -> aggregate -> sort: the run stops at the aggregate.
        let mut pb = PlanBuilder::new();
        let s = pb
            .filter(Source::Table(table("t", 50)), Predicate::True)
            .unwrap();
        let a = pb
            .aggregate(Source::Op(s), vec![0], vec![AggSpec::count_star()], &["n"])
            .unwrap();
        let srt = pb
            .sort(Source::Op(a), vec![crate::plan::SortKey::asc(0)], None)
            .unwrap();
        let plan = pb.build(srt).unwrap();
        let fs = plan_fusion(&plan, FusionPolicy::Always, 4, 32 * 1024, Uot::Blocks(1));
        assert_eq!(fs.fused_count(), 1);
        assert_eq!(fs.chains()[0].ops, vec![0, 1]);
        assert_eq!(fs.staged_count(), 1); // the sort
    }

    #[test]
    fn default_state_is_inert() {
        let fs = FusionState::default();
        assert!(fs.chain_for_head(0).is_none());
        assert!(fs.head_of_member(5).is_none());
        assert!(fs.chain_for_tail(3).is_none());
        assert_eq!(fs.fused_count(), 0);
        assert_eq!(fs.staged_count(), 0);
    }
}
