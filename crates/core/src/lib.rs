//! # uot-core
//!
//! The Unit-of-Transfer (UoT) query engine — the primary contribution of
//! *"On inter-operator data transfers in query processing"* (ICDE 2022),
//! rebuilt as a library.
//!
//! ## The UoT spectrum
//!
//! The paper's thesis is that "pipelining" vs. "blocking" is not a binary but
//! a spectrum parameterized by the **unit of transfer**: how many fixed-size
//! storage blocks a producer operator accumulates before its output is handed
//! to the consumer. [`Uot::Blocks(1)`](Uot) is classic block-level pipelining;
//! [`Uot::Table`](Uot) is classic blocking (operator-at-a-time); everything in
//! between is fair game.
//!
//! ## Architecture (mirrors Quickstep, Section III of the paper)
//!
//! * A physical [`QueryPlan`] is a tree of operators (select, build-hash,
//!   probe, aggregate, sort, nested-loops join, limit).
//! * Operator logic is packaged into **work orders** ([`WorkOrder`]): one
//!   unit of relational work on one input block.
//! * A single **scheduler** ([`scheduler`]) tracks block production,
//!   stages producer output per consumer edge, and *releases staged blocks to
//!   the consumer only when the edge's UoT is reached* (partially
//!   accumulated UoTs flush when the producer finishes).
//! * **Worker threads** execute work orders to completion and report back.
//! * Temporary output goes into blocks checked out from the shared
//!   [`BlockPool`](uot_storage::BlockPool), one block per work order at a
//!   time.
//! * Everything is metered: per-task execution times, per-operator totals,
//!   degree-of-parallelism samples, and peak temporary memory — the metrics
//!   the paper's figures are made of.

pub mod bloom;
pub mod cancel;
pub mod edge;
pub mod engine;
pub mod error;
pub mod exec_options;
pub mod fault;
pub mod fusion;
pub mod hash_table;
pub mod metrics;
pub mod obs;
pub mod ops;
pub mod output;
pub mod plan;
pub mod query_id;
pub mod scheduler;
pub mod service;
pub mod spill;
pub mod sql;
pub mod state;
pub mod topology;
pub mod trace;
pub mod uot;
pub mod work_order;

pub use bloom::BloomFilter;
pub use cancel::CancellationToken;
pub use edge::{EdgeDest, TransferAction, TransferEdge};
pub use engine::{DegradePolicy, Engine, EngineConfig, ExecMode, QueryResult, TraceConfig};
pub use error::EngineError;
pub use exec_options::ExecOptions;
#[allow(deprecated)]
pub use exec_options::QueryOptions;
pub use fault::{FaultKind, FaultPlan, FaultSite, Injection};
pub use fusion::{FusedChain, FusionPolicy, FusionState};
pub use hash_table::{JoinHashTable, PayloadRef, ProbeMatch, ProbeSession};
pub use metrics::{Degradation, EdgeMetrics, OperatorMetrics, QueryMetrics, TaskRecord};
pub use obs::{
    prometheus_from_hub, prometheus_snapshot, prometheus_snapshot_merged, CompositeObserver,
    ExplainAnalyze, HistogramSnapshot, HubCounter, HubHistogram, HubObserver, HubSnapshot,
    IntrospectionServer, LiveQuery, LiveRegistry, MetricsHub, ServerState, TracingObserver,
    WatchdogConfig,
};
pub use plan::{
    JoinType, LipFilter, OpId, Operator, OperatorKind, PlanBuilder, QueryPlan, SortKey, Source,
};
pub use query_id::QueryId;
pub use scheduler::{run, run_query, MetricsCarrier};
pub use scheduler::{
    FailedQuery, MetricsObserver, NoopObserver, SchedulerConfig, SchedulerCore, SchedulerObserver,
};
pub use service::{QueryHandle, QueryService, ServiceConfig};
pub use spill::EngineSpillHook;
pub use sql::{compile, lower};
pub use topology::{Dependent, PlanTopology};
pub use trace::{
    Trace, TraceEvent, TraceEventKind, TraceSink, WatchdogKind, DEFAULT_TRACE_CAPACITY,
};
pub use uot::Uot;
// Frontend types callers of the SQL entry points interact with directly.
pub use uot_sql::{CacheStats, PlanCacheOutcome, PlanError, PlanErrorKind};
pub use work_order::{WorkKind, WorkOrder};

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
