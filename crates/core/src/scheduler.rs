//! The work-order scheduler: where the UoT takes effect.
//!
//! The scheduler is the component the paper actually studies. It tracks block
//! production per operator and **stages** each producer's completed output
//! blocks on its outgoing [`TransferEdge`]. Only when the staged count
//! reaches the edge's [`Uot`] threshold are the blocks *transferred* — turned
//! into consumer work orders (or collected, for blocking consumers). When a
//! producer finishes, any partially accumulated UoT flushes (Section III-B).
//!
//! Figure 2 of the paper falls directly out of this mechanism: with
//! `Uot::Blocks(1)` producer and consumer work orders interleave; with
//! `Uot::Table` the schedule degenerates to operator-at-a-time.
//!
//! Three layers:
//!
//! * [`SchedulerCore`] — the synchronous state machine: per-operator state,
//!   transfer edges, and an indexed [`ReadyQueue`] that picks the next work
//!   order in O(log #ops) without scanning (per-operator FIFOs plus an
//!   ordered index of dispatchable operators). Topology questions ("who
//!   depends on this operator?") are answered by the plan's precomputed
//!   [`PlanTopology`] instead of rescanning operator definitions.
//! * [`SchedulerObserver`] — a hook receiving dispatch/completion/transfer
//!   events. [`MetricsObserver`] (the default) records the `QueryMetrics`
//!   the paper's figures are made of; [`NoopObserver`] runs the machine bare.
//! * [`run_query`] — the one driver, parameterized over the observer stack
//!   and [`ExecMode`]: inline execution for determinism, or a scheduler
//!   thread with a worker pool (Quickstep's two thread kinds). [`run`] is
//!   the convenience wrapper with default metrics and a plain error.

use crate::edge::{TransferAction, TransferEdge};
use crate::error::EngineError;
use crate::fault::{FaultKind, FaultSite};
use crate::metrics::{EdgeMetrics, OperatorMetrics, QueryMetrics, TaskRecord};
use crate::ops::execute_work_order_contained;
use crate::plan::{OpId, OperatorKind, QueryPlan};
use crate::state::ExecContext;
use crate::topology::Dependent;
use crate::uot::Uot;
use crate::work_order::{WorkKind, WorkOrder};
use crate::Result;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uot_storage::{SpillSlot, StorageBlock};

/// How work orders are driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One thread, deterministic work-order order. For tests and debugging.
    Serial,
    /// Scheduler thread plus `workers` worker threads (the Quickstep model).
    Parallel {
        /// Number of worker threads.
        workers: usize,
    },
}

impl ExecMode {
    /// Worker-thread count this mode runs with (serial counts as one; a
    /// parallel pool is clamped to at least one thread).
    pub fn workers(self) -> usize {
        match self {
            ExecMode::Serial => 1,
            ExecMode::Parallel { workers } => workers.max(1),
        }
    }
}

/// Scheduler knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Execution mode: inline on the caller, or a worker pool.
    pub mode: ExecMode,
    /// UoT for edges without a per-operator override.
    pub default_uot: Uot,
    /// Optional cap on concurrent work orders per operator (a Quickstep-style
    /// scheduling policy; `None` = unbounded).
    pub max_dop_per_op: Option<usize>,
    /// Optional wall-clock deadline. When it passes, the scheduler cancels
    /// the query's [`crate::cancel::CancellationToken`] at the next dispatch
    /// and the query yields [`EngineError::Cancelled`].
    pub deadline: Option<Duration>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            mode: ExecMode::Serial,
            default_uot: Uot::LOW,
            max_dop_per_op: None,
            deadline: None,
        }
    }
}

impl SchedulerConfig {
    /// Up-front validation run by both drivers. `max_dop_per_op = Some(0)`
    /// would make every operator unschedulable; historically it was silently
    /// clamped to 1 — now it is rejected loudly.
    pub fn validate(&self) -> Result<()> {
        if self.max_dop_per_op == Some(0) {
            return Err(EngineError::Config(
                "max_dop_per_op must be at least 1 (Some(0) would make every \
                 operator unschedulable)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Observer of scheduler events. All methods default to no-ops; implement
/// the ones you care about. The default engine path records metrics through
/// [`MetricsObserver`]; benchmarks can run the bare machine with
/// [`NoopObserver`]; the tracing path composes
/// [`TracingObserver`](crate::obs::TracingObserver) on top via
/// [`CompositeObserver`](crate::obs::CompositeObserver).
///
/// Events that would cost something to summarize (flush sizes in bytes)
/// hand the observer the block slice itself, so [`NoopObserver`] pays
/// nothing: an observer that wants bytes sums them, one that doesn't never
/// looks.
pub trait SchedulerObserver {
    /// A work order was handed to a worker.
    fn work_order_dispatched(&mut self, _wo: &WorkOrder) {}
    /// A work order finished executing.
    fn work_order_completed(&mut self, _wo: &WorkOrder, _record: TaskRecord) {}
    /// An operator produced output blocks (completed or flushed). `bytes`
    /// is their summed allocated size.
    fn blocks_produced(&mut self, _op: OpId, _blocks: usize, _rows: usize, _bytes: usize) {}
    /// Blocks were transferred to an operator's input. The observer gets the
    /// block slice itself so it can sum rows/bytes only if it wants them.
    fn blocks_transferred(&mut self, _op: OpId, _blocks: &[Arc<StorageBlock>]) {}
    /// A transfer edge accumulated output below its UoT threshold; `staged`
    /// is the occupancy after staging.
    fn edge_staged(&mut self, _producer: OpId, _consumer: OpId, _staged: usize, _threshold: usize) {
    }
    /// A transfer edge moved blocks to its consumer — a threshold-triggered
    /// transfer (`partial == false`) or the end-of-producer flush of a
    /// partial accumulation (`partial == true`). `blocks` is the **actual**
    /// transferred set, observed after any injected fault at the flush site
    /// ran, never the pre-fault staging level.
    fn transfer_flushed(
        &mut self,
        _producer: OpId,
        _consumer: OpId,
        _blocks: &[Arc<StorageBlock>],
        _partial: bool,
    ) {
    }
    /// An operator finished completely.
    fn operator_finished(&mut self, _op: OpId) {}
}

/// Access to the [`MetricsObserver`] inside an observer stack — what the
/// drivers need to assemble [`QueryMetrics`] no matter how many tracing or
/// custom layers are composed around it.
pub trait MetricsCarrier {
    /// The metrics-accumulating layer.
    fn metrics(&mut self) -> &mut MetricsObserver;
}

/// Observer that ignores every event (bare scheduling, e.g. microbenchmarks).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl SchedulerObserver for NoopObserver {}

/// The default observer: accumulates the per-operator and per-task metrics
/// that [`QueryMetrics`] reports.
#[derive(Debug)]
pub struct MetricsObserver {
    op_metrics: Vec<OperatorMetrics>,
    edge_metrics: Vec<EdgeMetrics>,
    tasks: Vec<TaskRecord>,
}

impl MetricsObserver {
    /// Metrics storage shaped for `plan`.
    pub fn new(plan: &QueryPlan) -> Self {
        MetricsObserver {
            op_metrics: plan
                .ops()
                .iter()
                .map(|op| OperatorMetrics {
                    name: op.name.clone(),
                    kind: op.kind.kind_label().to_string(),
                    ..Default::default()
                })
                .collect(),
            edge_metrics: vec![EdgeMetrics::default(); plan.len()],
            tasks: Vec::new(),
        }
    }
}

impl MetricsCarrier for MetricsObserver {
    fn metrics(&mut self) -> &mut MetricsObserver {
        self
    }
}

impl SchedulerObserver for MetricsObserver {
    fn work_order_completed(&mut self, wo: &WorkOrder, record: TaskRecord) {
        let m = &mut self.op_metrics[wo.op];
        m.work_orders += 1;
        let d = record.duration();
        m.total_task_time += d;
        m.task_times.push(d);
        self.tasks.push(record);
    }

    fn blocks_produced(&mut self, op: OpId, blocks: usize, rows: usize, bytes: usize) {
        self.op_metrics[op].produced_blocks += blocks;
        self.op_metrics[op].produced_rows += rows;
        self.op_metrics[op].produced_bytes += bytes;
    }

    fn blocks_transferred(&mut self, op: OpId, blocks: &[Arc<StorageBlock>]) {
        self.op_metrics[op].input_blocks += blocks.len();
        self.op_metrics[op].input_rows += blocks.iter().map(|b| b.num_rows()).sum::<usize>();
    }

    fn edge_staged(&mut self, producer: OpId, consumer: OpId, staged: usize, threshold: usize) {
        let e = &mut self.edge_metrics[producer];
        e.consumer = Some(consumer);
        e.threshold = threshold;
        e.stalls += 1;
        e.max_staged = e.max_staged.max(staged);
        e.sum_staged += staged;
    }

    fn transfer_flushed(
        &mut self,
        producer: OpId,
        consumer: OpId,
        blocks: &[Arc<StorageBlock>],
        partial: bool,
    ) {
        let e = &mut self.edge_metrics[producer];
        e.consumer = Some(consumer);
        if partial {
            e.partial_flushes += 1;
        } else {
            e.flushes += 1;
        }
        e.blocks += blocks.len();
        e.rows += blocks.iter().map(|b| b.num_rows()).sum::<usize>();
        e.bytes += blocks.iter().map(|b| b.allocated_bytes()).sum::<usize>();
    }
}

/// Indexed dispatch: per-operator FIFO queues plus an ordered set of
/// operators that currently have dispatchable work.
///
/// Policy (identical to the historical full-scan implementation): among
/// operators with queued work and spare per-operator DOP, pick the
/// **critical** ones first (blocking prerequisites and their stream
/// feeders), then the most **downstream** (highest id; plans are built
/// bottom-up so id order is topological), FIFO within an operator. The
/// `BTreeSet<(bool, OpId)>` makes that `last()`, so a pop costs O(log #ops)
/// instead of a scan of every ready work order.
#[derive(Debug)]
struct ReadyQueue {
    per_op: Vec<VecDeque<WorkOrder>>,
    /// `(critical, op)` for every op with queued work below its DOP cap.
    dispatchable: BTreeSet<(bool, OpId)>,
    critical: Vec<bool>,
    in_flight: Vec<usize>,
    cap: usize,
    len: usize,
}

impl ReadyQueue {
    fn new(critical: Vec<bool>, max_dop_per_op: Option<usize>) -> Self {
        let n = critical.len();
        ReadyQueue {
            per_op: (0..n).map(|_| VecDeque::new()).collect(),
            dispatchable: BTreeSet::new(),
            critical,
            in_flight: vec![0; n],
            // Some(0) is rejected by `SchedulerConfig::validate`; no clamp
            // here, so a cap of 0 smuggled past validation stalls loudly
            // instead of silently running with a different setting.
            cap: max_dop_per_op.unwrap_or(usize::MAX),
            len: 0,
        }
    }

    /// Re-derive `op`'s membership in the dispatchable index.
    fn refresh(&mut self, op: OpId) {
        let key = (self.critical[op], op);
        if !self.per_op[op].is_empty() && self.in_flight[op] < self.cap {
            self.dispatchable.insert(key);
        } else {
            self.dispatchable.remove(&key);
        }
    }

    fn push(&mut self, wo: WorkOrder) {
        let op = wo.op;
        self.per_op[op].push_back(wo);
        self.len += 1;
        self.refresh(op);
    }

    fn pop(&mut self) -> Option<WorkOrder> {
        let &(_, op) = self.dispatchable.last()?;
        let wo = self.per_op[op].pop_front().expect("indexed op has work");
        self.len -= 1;
        self.in_flight[op] += 1;
        self.refresh(op);
        Some(wo)
    }

    /// A work order of `op` completed: release its DOP slot.
    fn complete(&mut self, op: OpId) {
        self.in_flight[op] = self.in_flight[op].saturating_sub(1);
        self.refresh(op);
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Remove and return every queued work order (teardown path).
    fn drain(&mut self) -> Vec<WorkOrder> {
        self.dispatchable.clear();
        self.len = 0;
        self.per_op.iter_mut().flat_map(|q| q.drain(..)).collect()
    }
}

/// Scheduler-side state of one operator. (Staging and collected-byte
/// accounting live on the operator's outgoing [`TransferEdge`].)
#[derive(Debug, Default)]
struct OpState {
    /// Unfinished scheduling dependencies (build side, NLJ inner side, LIP
    /// filter sources). The operator is startable at zero.
    waiting_on: usize,
    /// The streamed producer has finished (base tables count as finished).
    producer_finished: bool,
    /// Blocks transferred but held because the op is not startable yet.
    pending: VecDeque<Arc<StorageBlock>>,
    /// Work orders created and not yet completed.
    outstanding: usize,
    /// The finalize work order has been dispatched (agg/sort).
    finalize_dispatched: bool,
    /// This operator is completely done.
    finished: bool,
}

/// The synchronous scheduling state machine.
pub struct SchedulerCore<O: SchedulerObserver = MetricsObserver> {
    ctx: Arc<ExecContext>,
    states: Vec<OpState>,
    /// Outgoing data edge of each operator, indexed by producer id.
    edges: Vec<TransferEdge>,
    queue: ReadyQueue,
    result_blocks: Vec<Arc<StorageBlock>>,
    observer: O,
    seq: usize,
    unfinished: usize,
}

impl SchedulerCore<MetricsObserver> {
    /// Set up scheduling state with metrics recording and enqueue the
    /// initial work (base-table blocks are all available at query start).
    pub fn new(ctx: Arc<ExecContext>, config: SchedulerConfig) -> Self {
        let observer = MetricsObserver::new(&ctx.plan);
        SchedulerCore::with_observer(ctx, config, observer)
    }
}

impl<O: SchedulerObserver + MetricsCarrier> SchedulerCore<O> {
    /// Tear down into results + metrics. Runs on the success *and* error
    /// paths (the error path discards the blocks and keeps the metrics as
    /// [`FailedQuery::partial_metrics`]); either way, every byte the query
    /// charged to the [`uot_storage::MemoryTracker`] is released so
    /// `current_bytes()` returns to its pre-query value.
    pub(crate) fn into_results(
        mut self,
        wall_time: Duration,
        workers: usize,
    ) -> (Vec<Arc<StorageBlock>>, QueryMetrics) {
        let mut tasks = std::mem::take(&mut self.observer.metrics().tasks);
        tasks.sort_by_key(|t| t.start);
        let mut op_metrics = std::mem::take(&mut self.observer.metrics().op_metrics);
        let edge_metrics = std::mem::take(&mut self.observer.metrics().edge_metrics);
        for (m, rt) in op_metrics.iter_mut().zip(&self.ctx.runtimes) {
            m.lip_pruned_rows = rt.lip_pruned.load(std::sync::atomic::Ordering::Relaxed);
        }
        let result_rows = self.result_blocks.iter().map(|b| b.num_rows()).sum();
        let hash_table_bytes = self
            .ctx
            .runtimes
            .iter()
            .enumerate()
            .filter_map(|(id, rt)| rt.hash_table.as_ref().map(|ht| (id, ht.memory_bytes())))
            .collect();
        // Metrics (pool stats, peak) are captured *before* the release below
        // so teardown bookkeeping does not pollute them.
        let spill = self
            .ctx
            .pool
            .spill_store()
            .map(|s| s.stats())
            .unwrap_or_default();
        let metrics = QueryMetrics {
            query: self.ctx.query,
            wall_time,
            ops: op_metrics,
            edges: edge_metrics,
            tasks,
            peak_temp_bytes: self.ctx.pool.tracker().peak_bytes(),
            pool: self.ctx.pool.stats(),
            hash_table_bytes,
            result_rows,
            workers,
            degradations: Vec::new(),
            plan_cache: None,
            fused_pipelines: self.ctx.fusion.fused_count(),
            staged_pipelines: self.ctx.fusion.staged_count(),
            spill_events: spill.spill_events,
            spilled_bytes: spill.spilled_bytes,
            respill_depth: spill.respill_depth,
        };
        self.release_resources();
        (self.result_blocks, metrics)
    }
}

impl<O: SchedulerObserver> SchedulerCore<O> {
    /// Set up scheduling state with a custom observer.
    pub fn with_observer(ctx: Arc<ExecContext>, config: SchedulerConfig, observer: O) -> Self {
        let plan = ctx.plan.clone();
        let topo = plan.topology();
        let n = plan.len();
        let default_uot = config.default_uot.normalized();
        let uot_of = |id: OpId| -> Uot { plan.op(id).uot.unwrap_or(default_uot) };
        let edges = (0..n)
            .map(|p| {
                match topo.consumer_of(p) {
                    None => TransferEdge::sink(),
                    Some(c) if topo.materialization_target(p) == Some(c) => {
                        TransferEdge::materialize(c)
                    }
                    Some(c) => TransferEdge::stream(c, uot_of(c)),
                }
                .owned_by(ctx.query)
            })
            .collect();
        let states = (0..n)
            .map(|id| OpState {
                waiting_on: topo.initial_waits(id),
                producer_finished: topo.stream_parent(id).is_none(),
                ..Default::default()
            })
            .collect();
        let queue = ReadyQueue::new(topo.critical_flags().to_vec(), config.max_dop_per_op);
        let mut core = SchedulerCore {
            ctx,
            states,
            edges,
            queue,
            result_blocks: Vec::new(),
            observer,
            seq: 0,
            unfinished: n,
        };
        // Feed base-table blocks.
        for id in 0..n {
            if let crate::plan::Source::Table(t) = plan.op(id).kind.stream_source() {
                let blocks: Vec<Arc<StorageBlock>> = t.blocks().to_vec();
                core.transfer_in(id, blocks);
            }
        }
        // Operators with no input at all may already be completable.
        for id in 0..n {
            // invariant: nothing has produced output yet, so no edge has
            // staged blocks and the TransferFlush fault site cannot fire.
            core.check_completion(id)
                .expect("no staged blocks at construction");
        }
        core
    }

    /// The plan being scheduled.
    fn plan(&self) -> &QueryPlan {
        &self.ctx.plan
    }

    /// True when every operator has finished.
    pub fn all_finished(&self) -> bool {
        self.unfinished == 0
    }

    /// Number of work orders waiting in the ready queues.
    pub fn ready_len(&self) -> usize {
        self.queue.len()
    }

    /// Scheduling waits gating operator `op`'s stream input. For a fused-
    /// chain head this sums `waiting_on` across every chain member: the head
    /// must not start pushing batches until all build sides and LIP filter
    /// sources the chain probes against are finished. Everywhere else it is
    /// just the operator's own count.
    fn chain_waits(&self, op: OpId) -> usize {
        match self.ctx.fusion.chain_for_head(op) {
            Some(chain) => chain.ops.iter().map(|&m| self.states[m].waiting_on).sum(),
            None => self.states[op].waiting_on,
        }
    }

    /// Blocks staged on operator `op`'s input edge (its stream producer's
    /// outgoing edge).
    fn staged_into(&self, op: OpId) -> usize {
        self.plan()
            .topology()
            .stream_parent(op)
            .map_or(0, |p| self.edges[p].staged_len())
    }

    /// Describe every unfinished operator and its blocking state — the body
    /// of the stall diagnostic. Empty when all operators finished.
    pub fn stall_report(&self) -> String {
        let mut parts = Vec::new();
        for (id, st) in self.states.iter().enumerate() {
            if st.finished {
                continue;
            }
            parts.push(format!(
                "op{} ({}): waiting_on={} staged={} pending={} outstanding={}{}",
                id,
                self.plan().op(id).name,
                st.waiting_on,
                self.staged_into(id),
                st.pending.len(),
                st.outstanding,
                if st.producer_finished {
                    ""
                } else {
                    " producer-unfinished"
                },
            ));
        }
        parts.join("; ")
    }

    /// The stall error the driver raises when work runs out with operators
    /// still unfinished.
    pub(crate) fn stall_error(&self) -> EngineError {
        EngineError::Internal(format!(
            "scheduler stalled with unfinished operators: {}",
            self.stall_report()
        ))
    }

    /// Pop the next dispatchable work order, honoring the per-operator DOP
    /// cap if configured.
    ///
    /// Policy: **downstream-first** — among eligible work orders, prefer the
    /// operator furthest down the plan (highest id; plans are built bottom-
    /// up, so id order is topological), with blocking prerequisites
    /// (critical operators) ahead of everything. Transferred blocks are
    /// consumed while still warm and intermediate memory drains promptly;
    /// with a low UoT this yields exactly the interleaved schedules of the
    /// paper's Fig. 2, while a high UoT degenerates to operator-at-a-time
    /// regardless.
    pub fn next_work_order(&mut self) -> Option<WorkOrder> {
        let wo = self.queue.pop()?;
        self.observer.work_order_dispatched(&wo);
        Some(wo)
    }

    /// Handle a completed work order.
    pub fn on_complete(
        &mut self,
        wo: &WorkOrder,
        produced: Vec<StorageBlock>,
        record: TaskRecord,
    ) -> Result<()> {
        self.queue.complete(wo.op);
        self.states[wo.op].outstanding -= 1;
        // A consumed intermediate block dies here (each block feeds exactly
        // one stream work order): release its bytes so `peak_temp_bytes`
        // reflects what is actually live. Base-table blocks were never
        // charged to the tracker and stay untouched.
        if let WorkKind::Stream { block } = &wo.kind {
            if self.plan().topology().stream_parent(wo.op).is_some() {
                let bytes = block.allocated_bytes();
                self.ctx.pool.tracker().free(bytes);
                self.ctx
                    .trace_event(|| crate::trace::TraceEventKind::PoolFree {
                        bytes,
                        in_use: self.ctx.pool.tracker().current_bytes(),
                    });
            }
        }
        self.observer.work_order_completed(wo, record);
        // A fused chain's output leaves from its *tail*: the blocks skip every
        // interior edge and land directly on the tail's outgoing edge.
        let route = match (&wo.kind, self.ctx.fusion.chain_for_head(wo.op)) {
            (WorkKind::Stream { .. }, Some(chain)) => chain.tail(),
            _ => wo.op,
        };
        self.route_output(route, produced)?;
        self.check_completion(wo.op)
    }

    /// Handle a *failed* (or cancelled) work order: release its DOP slot and
    /// the bytes charged to its input block, without routing any output. The
    /// operator stays unfinished; teardown via [`Self::release_resources`]
    /// reclaims everything else.
    pub fn on_error(&mut self, wo: &WorkOrder) {
        let bytes = match &wo.kind {
            WorkKind::Stream { block } if self.plan().topology().stream_parent(wo.op).is_some() => {
                block.allocated_bytes()
            }
            _ => 0,
        };
        self.fail_in_flight(wo.op, bytes);
    }

    /// Like [`Self::on_error`] for a work order whose body was lost (e.g. a
    /// worker died holding it); `input_bytes` is what its stream input block
    /// had charged to the tracker (0 for base-table input).
    pub fn fail_in_flight(&mut self, op: OpId, input_bytes: usize) {
        self.queue.complete(op);
        self.states[op].outstanding -= 1;
        if input_bytes > 0 {
            self.ctx.pool.tracker().free(input_bytes);
        }
    }

    /// Route blocks produced by `producer` along its transfer edge: straight
    /// to the result set (sink), parked at the producer (NLJ materialization
    /// bypass), or staged against the consumer edge's UoT threshold.
    ///
    /// Fallible: staged slots may have been evicted to the spill tier, and
    /// faulting them back in at transfer time can hit a disk error (or an
    /// injected `SpillRead` fault).
    fn route_output(&mut self, producer: OpId, produced: Vec<StorageBlock>) -> Result<()> {
        if produced.is_empty() {
            return Ok(());
        }
        self.observer.blocks_produced(
            producer,
            produced.len(),
            produced.iter().map(|b| b.num_rows()).sum(),
            produced.iter().map(|b| b.allocated_bytes()).sum(),
        );
        let blocks: Vec<Arc<StorageBlock>> = produced.into_iter().map(Arc::new).collect();
        match self.edges[producer].stage(blocks, producer) {
            TransferAction::Hold(fresh) => {
                // Newly staged slots are cold until the edge flushes: offer
                // them to the pool as eviction victims, then report the new
                // occupancy for UoT-occupancy timelines.
                for slot in &fresh {
                    self.ctx.pool.register_victim(slot);
                }
                let edge = &self.edges[producer];
                if let Some(consumer) = edge.consumer() {
                    self.observer.edge_staged(
                        producer,
                        consumer,
                        edge.staged_len(),
                        edge.threshold_blocks(),
                    );
                }
            }
            TransferAction::Emit(blocks) => self.result_blocks.extend(blocks),
            TransferAction::Transfer(slots) => {
                let consumer = self.edges[producer].consumer().expect("stream edge");
                let blocks = self.resolve_slots(slots)?;
                self.observer
                    .transfer_flushed(producer, consumer, &blocks, false);
                self.transfer_in(consumer, blocks);
            }
            TransferAction::Materialize(blocks) => {
                // The NLJ reads the inner relation from its producing
                // operator's `collected` list; the bytes are charged to the
                // edge and released when the join finishes.
                self.edges[producer]
                    .add_collected(blocks.iter().map(|b| b.allocated_bytes()).sum::<usize>());
                self.ctx.runtimes[producer].collected.lock().extend(blocks);
            }
        }
        Ok(())
    }

    /// Turn staged slots back into blocks, faulting spilled ones in. On
    /// failure, every block already resolved and every slot not yet resolved
    /// is released so teardown accounting stays exact.
    fn resolve_slots(&self, slots: Vec<Arc<SpillSlot>>) -> Result<Vec<Arc<StorageBlock>>> {
        let store = self.ctx.pool.spill_store();
        let tracker = self.ctx.pool.tracker();
        let mut blocks = Vec::with_capacity(slots.len());
        let mut iter = slots.into_iter();
        while let Some(slot) = iter.next() {
            match slot.take(store.as_deref()) {
                Ok(b) => blocks.push(b),
                Err(e) => {
                    for b in &blocks {
                        tracker.free(b.allocated_bytes());
                    }
                    for rest in iter {
                        rest.discard(tracker, store.as_deref());
                    }
                    return Err(e.into());
                }
            }
        }
        Ok(blocks)
    }

    /// Deliver transferred blocks to `op`: collected for sorts, queued for
    /// non-startable operators, otherwise one stream work order per block.
    fn transfer_in(&mut self, op: OpId, blocks: Vec<Arc<StorageBlock>>) {
        if blocks.is_empty() {
            return;
        }
        self.observer.blocks_transferred(op, &blocks);
        if matches!(self.plan().op(op).kind, OperatorKind::Sort { .. }) {
            // Sort input parks in bulk; intermediate (tracked) blocks are
            // charged to the incoming edge until the sort finishes.
            if let Some(parent) = self.plan().topology().stream_parent(op) {
                self.edges[parent]
                    .add_collected(blocks.iter().map(|b| b.allocated_bytes()).sum::<usize>());
            }
            self.ctx.runtimes[op].collected.lock().extend(blocks);
            return;
        }
        if self.chain_waits(op) > 0 {
            self.states[op].pending.extend(blocks);
            return;
        }
        for b in blocks {
            self.push_stream_work(op, b);
        }
    }

    fn push_stream_work(&mut self, op: OpId, block: Arc<StorageBlock>) {
        let wo = WorkOrder {
            query: self.ctx.query,
            op,
            kind: WorkKind::Stream { block },
            seq: self.seq,
        };
        self.seq += 1;
        self.states[op].outstanding += 1;
        self.queue.push(wo);
    }

    /// Decide whether `op` can finish (or needs its finalize step), and
    /// cascade the consequences downstream.
    fn check_completion(&mut self, op: OpId) -> Result<()> {
        let st = &self.states[op];
        if st.finished
            || st.waiting_on > 0
            || !st.producer_finished
            || !st.pending.is_empty()
            || st.outstanding > 0
            || self.staged_into(op) > 0
        {
            return Ok(());
        }
        let is_grace_probe = matches!(self.plan().op(op).kind, OperatorKind::Probe { .. })
            && self.ctx.grace.contains_key(&op);
        let needs_finalize = matches!(
            self.plan().op(op).kind,
            OperatorKind::Aggregate { .. } | OperatorKind::Sort { .. }
        ) || is_grace_probe;
        if needs_finalize && !self.states[op].finalize_dispatched {
            self.states[op].finalize_dispatched = true;
            self.states[op].outstanding += 1;
            let kind = if is_grace_probe {
                WorkKind::FinalizeJoin
            } else if matches!(self.plan().op(op).kind, OperatorKind::Sort { .. }) {
                WorkKind::FinalizeSort
            } else {
                WorkKind::FinalizeAggregate
            };
            let wo = WorkOrder {
                query: self.ctx.query,
                op,
                kind,
                seq: self.seq,
            };
            self.seq += 1;
            self.queue.push(wo);
            return Ok(());
        }
        // Flush partially filled output blocks, route them, mark finished.
        if self.ctx.runtimes[op].output.is_some() {
            let flushed = self.ctx.output(op).flush();
            self.route_output(op, flushed)?;
        }
        // A finished build's hash table now has its final size: fold it into
        // the temporary-memory accounting so peak footprints include |H_i|
        // (the Section VI comparison).
        if let Some(ht) = &self.ctx.runtimes[op].hash_table {
            ht.sync_tracker(self.ctx.pool.tracker());
        }
        // Blocks parked for this operator's bulk consumption (sort input,
        // NLJ inner side) die with it: release the bytes charged to its
        // incoming edges.
        let mut parked = 0;
        if let Some(parent) = self.plan().topology().stream_parent(op) {
            parked += self.edges[parent].take_collected();
        }
        for dep in self.plan().op(op).kind.blocking_deps() {
            parked += self.edges[dep].take_collected();
        }
        if parked > 0 {
            self.ctx.pool.tracker().free(parked);
        }
        self.states[op].finished = true;
        self.unfinished -= 1;
        // A fused chain is complete when its tail finishes; its accumulated
        // per-batch stats become one trace event for the whole pipeline.
        if let Some(chain) = self.ctx.fusion.chain_for_tail(op) {
            self.ctx.trace_event(|| {
                use std::sync::atomic::Ordering::Relaxed;
                crate::trace::TraceEventKind::PipelineFused {
                    pipeline: chain.id,
                    head: chain.head(),
                    tail: chain.tail(),
                    ops: chain.ops.len(),
                    batches: chain.stats.batches.load(Relaxed),
                    rows: chain.stats.rows.load(Relaxed),
                    elapsed_us: chain.stats.elapsed_ns.load(Relaxed) / 1000,
                }
            });
        }
        self.observer.operator_finished(op);
        self.on_producer_finished(op)
    }

    /// Propagate an operator's completion to its consumer and to every
    /// operator waiting on it as a scheduling dependency (probes, NLJs, LIP
    /// readers) — an indexed lookup, not a plan scan.
    fn on_producer_finished(&mut self, producer: OpId) -> Result<()> {
        // Release every dependent waiting on this op (a build can unblock
        // its probe *and* several LIP selects at once).
        let dependents: Vec<Dependent> = self.plan().topology().dependents_of(producer).to_vec();
        for Dependent { op, multiplicity } in dependents {
            self.states[op].waiting_on = self.states[op].waiting_on.saturating_sub(multiplicity);
            if self.states[op].waiting_on == 0 {
                // Blocks gated on this dependency are parked at `op` itself
                // or, when `op` sits inside a fused chain, at the chain's
                // head — and release only once *every* member's waits clear.
                let gate = self.ctx.fusion.head_of_member(op).unwrap_or(op);
                if self.chain_waits(gate) == 0 {
                    let pending: Vec<Arc<StorageBlock>> =
                        std::mem::take(&mut self.states[gate].pending).into();
                    for b in pending {
                        self.push_stream_work(gate, b);
                    }
                }
                self.check_completion(op)?;
            }
        }

        let Some(consumer) = self.edges[producer].consumer() else {
            return Ok(());
        };
        // Flush any partial UoT accumulation on the outgoing edge.
        let staged = self.edges[producer].flush();
        if !staged.is_empty() {
            // The `transfer_flush` fault site fires here (only when a flush
            // actually moves blocks). On injection the popped slots are
            // released before erroring so teardown accounting stays exact.
            if let Err(e) = self.transfer_fault(producer) {
                let store = self.ctx.pool.spill_store();
                for slot in &staged {
                    slot.discard(self.ctx.pool.tracker(), store.as_deref());
                }
                return Err(e);
            }
            let blocks = self.resolve_slots(staged)?;
            // Observed *after* the fault site ran: the event carries the
            // block count/bytes that actually moved (a delayed flush still
            // transfers everything; an erroring one never reaches here), not
            // the pre-fault staging level.
            self.observer
                .transfer_flushed(producer, consumer, &blocks, true);
            self.transfer_in(consumer, blocks);
        }

        // Stream edge: mark the consumer's producer done.
        if self.plan().topology().stream_parent(consumer) == Some(producer) {
            self.states[consumer].producer_finished = true;
        }
        self.check_completion(consumer)
    }

    /// Check the `transfer_flush` fault site. The scheduler thread has no
    /// containment boundary, so an injected `Panic` here degrades to an
    /// error rather than unwinding the whole driver. `producer` is the
    /// flushing operator, recorded as the fault's attribution in the trace.
    ///
    /// The error carries the same operator/query/occupancy attribution as a
    /// budget trip on the operator allocation path (`requested: 0` is the
    /// injected-fault convention — no real allocation was asked for), so
    /// callers and diagnostics never need to special-case where a budget
    /// failure surfaced.
    fn transfer_fault(&self, producer: OpId) -> Result<()> {
        match self.ctx.faults.check(FaultSite::TransferFlush) {
            None => Ok(()),
            Some(kind @ (FaultKind::Panic | FaultKind::Error)) => {
                self.ctx
                    .trace_event(|| crate::trace::TraceEventKind::FaultInjected {
                        site: FaultSite::TransferFlush,
                        kind,
                        op: producer,
                    });
                let tracker = self.ctx.pool.tracker();
                let in_use = tracker.current_bytes();
                let budget = self.ctx.pool.budget().unwrap_or(0);
                let (global_in_use, global_budget) =
                    tracker.parent_usage().unwrap_or((in_use, budget));
                Err(EngineError::BudgetExceeded {
                    op: self.plan().op(producer).name.clone(),
                    query: self.ctx.query,
                    requested: 0,
                    in_use,
                    budget,
                    global_in_use,
                    global_budget,
                })
            }
            Some(kind @ FaultKind::Delay(d)) => {
                self.ctx
                    .trace_event(|| crate::trace::TraceEventKind::FaultInjected {
                        site: FaultSite::TransferFlush,
                        kind,
                        op: producer,
                    });
                std::thread::sleep(d);
                Ok(())
            }
        }
    }

    /// Release every byte the query still holds against the memory tracker:
    /// queued and pending work, staged transfers, parked bulk input, output
    /// partials, hash tables, result blocks (whose ownership passes to the
    /// caller) and the pool's free lists. After this, `current_bytes()` is
    /// back at its pre-query value on both success and error paths.
    fn release_resources(&mut self) {
        let plan = self.ctx.plan.clone();
        let topo = plan.topology();
        let tracker = self.ctx.pool.tracker().clone();
        // Queued work orders never ran: their stream inputs were charged at
        // checkout (base-table blocks never are).
        for wo in self.queue.drain() {
            if let WorkKind::Stream { block } = &wo.kind {
                if topo.stream_parent(wo.op).is_some() {
                    tracker.free(block.allocated_bytes());
                }
            }
        }
        for (id, st) in self.states.iter_mut().enumerate() {
            let pending = std::mem::take(&mut st.pending);
            if topo.stream_parent(id).is_some() {
                for b in pending {
                    tracker.free(b.allocated_bytes());
                }
            }
        }
        let store = self.ctx.pool.spill_store();
        for edge in &mut self.edges {
            // Staged slots hold operator outputs — always charged (resident)
            // or spilled (a temp file to delete); discard handles both.
            for slot in edge.flush() {
                slot.discard(&tracker, store.as_deref());
            }
            // Idempotent: already 0 for edges drained by check_completion.
            let parked = edge.take_collected();
            if parked > 0 {
                tracker.free(parked);
            }
        }
        // Grace-join partitions that never reached (or only partially
        // reached) the finalize step: open buffers are pool blocks, spilled
        // runs are temp files. Each state is keyed twice (build + probe op);
        // tear it down once, from the probe key.
        for (key, grace) in &self.ctx.grace {
            if *key != grace.probe_op {
                continue;
            }
            for side in [&grace.build, &grace.probe] {
                let mut side = side.lock();
                for open in side.open.iter_mut() {
                    if let Some(b) = open.take() {
                        self.ctx.pool.discard(b);
                    }
                }
                for part in side.spilled.iter_mut() {
                    for h in part.drain(..) {
                        if let Some(store) = &store {
                            store.discard(h);
                        }
                    }
                }
            }
        }
        for rt in &self.ctx.runtimes {
            if let Some(out) = &rt.output {
                for b in out.flush() {
                    self.ctx.pool.discard(b);
                }
            }
            if let Some(ht) = &rt.hash_table {
                ht.release_tracker(&tracker);
            }
            rt.collected.lock().clear();
        }
        let result_bytes: usize = self.result_blocks.iter().map(|b| b.allocated_bytes()).sum();
        if result_bytes > 0 {
            tracker.free(result_bytes);
        }
        self.ctx.pool.drain_free_lists();
    }
}

/// A query that failed, with whatever metrics had accumulated before the
/// failure — panic containment and teardown still record the work orders
/// that *did* complete.
#[derive(Debug)]
pub struct FailedQuery {
    /// The first error the query hit.
    pub error: EngineError,
    /// Metrics for the work completed before the failure.
    pub partial_metrics: QueryMetrics,
}

/// Rewrite a propagated `Cancelled` placeholder (raised inside an operator,
/// which cannot see driver-level counters) with the authoritative wall time
/// and completed-work-order count.
pub(crate) fn finalize_error(e: EngineError, wall: Duration, completed: usize) -> EngineError {
    match e {
        EngineError::Cancelled { .. } => EngineError::Cancelled {
            after: wall,
            completed_work_orders: completed,
        },
        other => other,
    }
}

/// Execute `ctx`'s plan under `config.mode` with the default metrics
/// observer, surfacing only the error on failure — the common path for
/// engine internals, tests and examples.
pub fn run(
    ctx: Arc<ExecContext>,
    config: SchedulerConfig,
) -> Result<(Vec<Arc<StorageBlock>>, QueryMetrics)> {
    let observer = MetricsObserver::new(&ctx.plan);
    run_query(ctx, config, observer).map_err(|f| f.error)
}

/// The one query driver. Executes `ctx`'s plan under [`SchedulerConfig::mode`]
/// with a caller-supplied observer stack — any composition that still carries
/// a [`MetricsObserver`], e.g.
/// [`CompositeObserver`](crate::obs::CompositeObserver) layering a
/// [`TracingObserver`](crate::obs::TracingObserver) on top.
///
/// On failure the partial metrics survive as [`FailedQuery::partial_metrics`]:
/// after the first error, dispatch stops but every in-flight completion is
/// drained so completed work orders keep their metrics and charged bytes are
/// released. Error precedence: the first work-order error, else a tripped
/// cancellation token (deadline or external cancel), else a stall diagnostic
/// naming every unfinished operator.
pub fn run_query<O: SchedulerObserver + MetricsCarrier>(
    ctx: Arc<ExecContext>,
    config: SchedulerConfig,
    observer: O,
) -> std::result::Result<(Vec<Arc<StorageBlock>>, QueryMetrics), Box<FailedQuery>> {
    let start = Instant::now();
    if let Err(e) = config.validate() {
        return Err(Box::new(FailedQuery {
            error: e,
            partial_metrics: QueryMetrics::default(),
        }));
    }
    let mut core = SchedulerCore::with_observer(ctx.clone(), config, observer);
    let (completed, mut error) = match config.mode {
        ExecMode::Serial => drive_serial(&ctx, &config, start, &mut core),
        ExecMode::Parallel { .. } => drive_parallel(&ctx, &config, start, &mut core),
    };
    // A token tripped without an attributable work-order error (deadline at
    // the last dispatch, external cancel) still cancels the query; the
    // placeholder counters are rewritten by `finalize_error` below.
    if error.is_none() && ctx.cancel.is_cancelled() {
        error = Some(EngineError::Cancelled {
            after: Duration::ZERO,
            completed_work_orders: 0,
        });
    }
    if error.is_none() && !core.all_finished() {
        error = Some(core.stall_error());
    }
    let wall = start.elapsed();
    let (blocks, metrics) = core.into_results(wall, config.mode.workers());
    match error {
        None => Ok((blocks, metrics)),
        Some(e) => Err(Box::new(FailedQuery {
            error: finalize_error(e, wall, completed),
            partial_metrics: metrics,
        })),
    }
}

/// Inline loop body: one work order at a time on the calling thread.
/// Deterministic; [`ExecMode::Serial`].
fn drive_serial<O: SchedulerObserver + MetricsCarrier>(
    ctx: &Arc<ExecContext>,
    config: &SchedulerConfig,
    start: Instant,
    core: &mut SchedulerCore<O>,
) -> (usize, Option<EngineError>) {
    let mut completed = 0usize;
    while let Some(wo) = core.next_work_order() {
        // Dispatch-time deadline check: past it, flip the token so this and
        // every subsequent work order fails fast with `Cancelled`.
        if let Some(d) = config.deadline {
            if start.elapsed() >= d {
                ctx.cancel.cancel();
            }
        }
        let t0 = start.elapsed();
        match execute_work_order_contained(ctx, &wo) {
            Ok(produced) => {
                let t1 = start.elapsed();
                let record = TaskRecord {
                    op: wo.op,
                    worker: 0,
                    start: t0,
                    end: t1,
                };
                completed += 1;
                if let Err(e) = core.on_complete(&wo, produced, record) {
                    return (completed, Some(e));
                }
            }
            Err(e) => {
                core.on_error(&wo);
                return (completed, Some(e));
            }
        }
    }
    (completed, None)
}

/// Message from the scheduler to a worker.
enum ToWorker {
    Run(WorkOrder),
}

/// Message from a worker back to the scheduler.
struct Completion {
    wo: WorkOrder,
    worker: usize,
    start: Duration,
    end: Duration,
    produced: Result<Vec<StorageBlock>>,
}

/// Worker-pool loop body: a scheduler (the calling thread) plus
/// `mode.workers()` worker threads — the Quickstep threading model.
/// [`ExecMode::Parallel`].
fn drive_parallel<O: SchedulerObserver + MetricsCarrier>(
    ctx: &Arc<ExecContext>,
    config: &SchedulerConfig,
    start: Instant,
    core: &mut SchedulerCore<O>,
) -> (usize, Option<EngineError>) {
    let workers = config.mode.workers();
    let (work_tx, work_rx) = crossbeam::channel::unbounded::<ToWorker>();
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<Completion>();

    std::thread::scope(|scope| {
        for worker_id in 0..workers {
            let work_rx = work_rx.clone();
            let done_tx = done_tx.clone();
            let ctx = ctx.clone();
            scope.spawn(move || {
                while let Ok(ToWorker::Run(wo)) = work_rx.recv() {
                    let t0 = start.elapsed();
                    // Contained execution: a panicking work order becomes a
                    // `WorkOrderPanic` completion instead of killing the
                    // worker (and with it the whole pool).
                    let produced = execute_work_order_contained(&ctx, &wo);
                    let t1 = start.elapsed();
                    if done_tx
                        .send(Completion {
                            wo,
                            worker: worker_id,
                            start: t0,
                            end: t1,
                            produced,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            });
        }
        drop(done_tx); // scheduler holds only the receiver

        let mut free_slots = workers;
        // seq -> (op, bytes its stream input charged): enough to release
        // resources and name operators even if the work order body is lost.
        let mut in_flight: HashMap<usize, (OpId, usize)> = HashMap::new();
        let mut first_error: Option<EngineError> = None;
        let mut completed = 0usize;

        loop {
            if let Some(d) = config.deadline {
                if start.elapsed() >= d {
                    ctx.cancel.cancel();
                }
            }
            // Dispatch as much ready work as workers can take — unless the
            // query already failed or was cancelled.
            if first_error.is_none() && !ctx.cancel.is_cancelled() {
                while free_slots > 0 {
                    match core.next_work_order() {
                        Some(wo) => {
                            free_slots -= 1;
                            let charged = match &wo.kind {
                                WorkKind::Stream { block }
                                    if ctx.plan.topology().stream_parent(wo.op).is_some() =>
                                {
                                    block.allocated_bytes()
                                }
                                _ => 0,
                            };
                            in_flight.insert(wo.seq, (wo.op, charged));
                            if work_tx.send(ToWorker::Run(wo)).is_err() {
                                if first_error.is_none() {
                                    first_error = Some(EngineError::Internal(
                                        "worker pool hung up unexpectedly".into(),
                                    ));
                                }
                                break;
                            }
                        }
                        None => break,
                    }
                }
            }
            if in_flight.is_empty() {
                break;
            }
            let comp = match done_rx.recv() {
                Ok(c) => c,
                Err(_) => {
                    // All workers exited with work still in flight. Name the
                    // stranded operators (mirrors the stall diagnostic).
                    let mut ops: Vec<String> = in_flight
                        .values()
                        .map(|&(op, _)| format!("op{} ({})", op, ctx.plan.op(op).name))
                        .collect();
                    ops.sort();
                    ops.dedup();
                    let detail = EngineError::Internal(format!(
                        "all workers exited early with {} work orders in flight on {}",
                        in_flight.len(),
                        ops.join(", "),
                    ));
                    for (_, (op, bytes)) in in_flight.drain() {
                        core.fail_in_flight(op, bytes);
                    }
                    if first_error.is_none() {
                        first_error = Some(detail);
                    }
                    break;
                }
            };
            free_slots += 1;
            in_flight.remove(&comp.wo.seq);
            match comp.produced {
                Ok(produced) => {
                    completed += 1;
                    let record = TaskRecord {
                        op: comp.wo.op,
                        worker: comp.worker,
                        start: comp.start,
                        end: comp.end,
                    };
                    if let Err(e) = core.on_complete(&comp.wo, produced, record) {
                        if first_error.is_none() {
                            first_error = Some(e);
                        }
                    }
                }
                Err(e) => {
                    core.on_error(&comp.wo);
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        drop(work_tx); // stop workers
        (completed, first_error)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::execute_work_order;
    use crate::plan::{JoinType, PlanBuilder, SortKey, Source};
    use crate::state::ExecContext;
    use uot_expr::{cmp, col, lit, AggSpec, CmpOp, Predicate};
    use uot_storage::{
        BlockFormat, BlockPool, DataType, MemoryTracker, Schema, Table, TableBuilder, Value,
    };

    fn table(name: &str, n: i32, rows_per_block: usize) -> Arc<Table> {
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Float64)]);
        let mut tb = TableBuilder::new(name, s, BlockFormat::Column, rows_per_block * 12);
        for i in 0..n {
            tb.append(&[Value::I32(i), Value::F64(i as f64)]).unwrap();
        }
        Arc::new(tb.finish())
    }

    fn ctx_for(plan: QueryPlan) -> Arc<ExecContext> {
        Arc::new(
            ExecContext::new(
                Arc::new(plan),
                BlockPool::new(MemoryTracker::new()),
                BlockFormat::Row,
                // Small temp blocks (8 x 12-byte tuples) so producers emit
                // multiple full blocks and UoT effects are visible.
                96,
                8,
            )
            .unwrap(),
        )
    }

    fn select_probe_plan(uot: Uot) -> QueryPlan {
        let dim = table("dim2", 10, 4);
        let fact = table("fact2", 100, 8);
        let mut pb = PlanBuilder::new();
        let b = pb.build_hash(Source::Table(dim), vec![0], vec![1]).unwrap();
        let s = pb
            .filter(Source::Table(fact), cmp(col(0), CmpOp::Lt, lit(50i32)))
            .unwrap();
        let p = pb
            .probe(
                Source::Op(s),
                b,
                vec![0],
                vec![0, 1],
                vec![0],
                JoinType::Inner,
            )
            .unwrap();
        pb.build(p).unwrap().with_uniform_uot(uot)
    }

    fn rows_of(blocks: &[Arc<StorageBlock>]) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = blocks.iter().flat_map(|b| b.all_rows()).collect();
        rows.sort_by(|a, b| crate::ops::aggregate::cmp_value_rows(a, b));
        rows
    }

    // Thin shims over the collapsed driver, keeping the historical test
    // bodies readable: `run_serial` forces inline mode, `run_parallel`
    // keeps the configured pool (defaulting to two workers).

    fn run_serial(
        ctx: Arc<ExecContext>,
        config: SchedulerConfig,
    ) -> Result<(Vec<Arc<StorageBlock>>, QueryMetrics)> {
        run(
            ctx,
            SchedulerConfig {
                mode: ExecMode::Serial,
                ..config
            },
        )
    }

    fn run_serial_detailed(
        ctx: Arc<ExecContext>,
        config: SchedulerConfig,
    ) -> std::result::Result<(Vec<Arc<StorageBlock>>, QueryMetrics), Box<FailedQuery>> {
        let observer = MetricsObserver::new(&ctx.plan);
        run_query(
            ctx,
            SchedulerConfig {
                mode: ExecMode::Serial,
                ..config
            },
            observer,
        )
    }

    fn run_parallel(
        ctx: Arc<ExecContext>,
        config: SchedulerConfig,
    ) -> Result<(Vec<Arc<StorageBlock>>, QueryMetrics)> {
        let mode = match config.mode {
            ExecMode::Parallel { .. } => config.mode,
            ExecMode::Serial => ExecMode::Parallel { workers: 2 },
        };
        run(ctx, SchedulerConfig { mode, ..config })
    }

    #[test]
    fn serial_select_probe_all_uots_agree() {
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for uot in [Uot::Blocks(1), Uot::Blocks(2), Uot::Blocks(4), Uot::Table] {
            let ctx = ctx_for(select_probe_plan(uot));
            let (blocks, metrics) = run_serial(
                ctx,
                SchedulerConfig {
                    default_uot: uot,
                    ..Default::default()
                },
            )
            .unwrap();
            let rows = rows_of(&blocks);
            // fact keys < 50 that match dim keys 0..10: 10 rows
            assert_eq!(rows.len(), 10, "{uot}");
            assert_eq!(metrics.result_rows, 10);
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(&rows, r, "{uot}"),
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let (blocks_s, _) = run_serial(ctx, SchedulerConfig::default()).unwrap();
        for workers in [2, 4] {
            let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
            let (blocks_p, metrics) = run_parallel(
                ctx,
                SchedulerConfig {
                    mode: ExecMode::Parallel { workers },
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(rows_of(&blocks_p), rows_of(&blocks_s));
            assert_eq!(metrics.workers, workers);
        }
    }

    #[test]
    fn uot_controls_schedule_interleaving() {
        // With UoT=1 the probe starts before the select finishes (interleaved
        // sequence numbers); with UoT=Table every select task precedes every
        // probe task.
        let ctx = ctx_for(select_probe_plan(Uot::Table));
        let (_, m) = run_serial(
            ctx,
            SchedulerConfig {
                default_uot: Uot::Table,
                ..Default::default()
            },
        )
        .unwrap();
        // task log is chronological; find op ids: 0=build,1=select,2=probe
        let order: Vec<usize> = m.tasks.iter().map(|t| t.op).collect();
        let last_select = order.iter().rposition(|&o| o == 1).unwrap();
        let first_probe = order.iter().position(|&o| o == 2).unwrap();
        assert!(
            last_select < first_probe,
            "high UoT must not interleave: {order:?}"
        );

        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let (_, m) = run_serial(
            ctx,
            SchedulerConfig {
                default_uot: Uot::Blocks(1),
                ..Default::default()
            },
        )
        .unwrap();
        let order: Vec<usize> = m.tasks.iter().map(|t| t.op).collect();
        let last_select = order.iter().rposition(|&o| o == 1).unwrap();
        let first_probe = order.iter().position(|&o| o == 2).unwrap();
        assert!(
            first_probe < last_select,
            "low UoT must interleave: {order:?}"
        );
    }

    #[test]
    fn aggregation_pipeline() {
        let t = table("t3", 50, 8);
        let mut pb = PlanBuilder::new();
        let s = pb
            .filter(Source::Table(t), cmp(col(0), CmpOp::Ge, lit(10i32)))
            .unwrap();
        let a = pb
            .aggregate(
                Source::Op(s),
                vec![],
                vec![AggSpec::count_star(), AggSpec::sum(col(1))],
                &["n", "s"],
            )
            .unwrap();
        let plan = pb.build(a).unwrap();
        for uot in [Uot::Blocks(1), Uot::Table] {
            let ctx = ctx_for(plan.clone().with_uniform_uot(uot));
            let (blocks, _) = run_serial(ctx, SchedulerConfig::default()).unwrap();
            let rows = rows_of(&blocks);
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0][0], Value::I64(40));
            let expect: f64 = (10..50).map(|i| i as f64).sum();
            assert!((rows[0][1].as_f64() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn sort_pipeline() {
        let t = table("t4", 30, 4);
        let mut pb = PlanBuilder::new();
        let s = pb
            .filter(Source::Table(t), cmp(col(0), CmpOp::Lt, lit(10i32)))
            .unwrap();
        let so = pb
            .sort(Source::Op(s), vec![SortKey::desc(0)], Some(3))
            .unwrap();
        let plan = pb.build(so).unwrap();
        let ctx = ctx_for(plan);
        let (blocks, _) = run_parallel(
            ctx,
            SchedulerConfig {
                mode: ExecMode::Parallel { workers: 3 },
                ..Default::default()
            },
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = blocks.iter().flat_map(|b| b.all_rows()).collect();
        let ks: Vec<i32> = rows.iter().map(|r| r[0].as_i32()).collect();
        assert_eq!(ks, vec![9, 8, 7]);
    }

    #[test]
    fn empty_base_table_cascades() {
        let t = table("empty", 0, 4);
        let mut pb = PlanBuilder::new();
        let s = pb
            .filter(Source::Table(t.clone()), Predicate::True)
            .unwrap();
        let a = pb
            .aggregate(Source::Op(s), vec![], vec![AggSpec::count_star()], &["n"])
            .unwrap();
        let plan = pb.build(a).unwrap();
        let ctx = ctx_for(plan);
        let (blocks, _) = run_serial(ctx, SchedulerConfig::default()).unwrap();
        let rows = rows_of(&blocks);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::I64(0));
    }

    #[test]
    fn probe_waits_for_build() {
        // With UoT=1 probe input arrives before the build finishes; the
        // scheduler must hold those blocks. Validated by correctness (all
        // matches found) plus the task log (no probe before last build).
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let (_, m) = run_serial(ctx, SchedulerConfig::default()).unwrap();
        let order: Vec<usize> = m.tasks.iter().map(|t| t.op).collect();
        let last_build = order.iter().rposition(|&o| o == 0).unwrap();
        let first_probe = order.iter().position(|&o| o == 2).unwrap();
        assert!(last_build < first_probe, "{order:?}");
    }

    #[test]
    fn dop_cap_limits_concurrency() {
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let (_, m) = run_parallel(
            ctx,
            SchedulerConfig {
                mode: ExecMode::Parallel { workers: 8 },
                max_dop_per_op: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        for op in 0..3 {
            assert!(m.max_dop(op) <= 1, "op {op} exceeded DOP cap");
        }
    }

    #[test]
    fn nested_loops_through_scheduler() {
        let t = table("t5", 6, 2);
        let mut pb = PlanBuilder::new();
        let inner = pb
            .filter(Source::Table(t.clone()), cmp(col(0), CmpOp::Lt, lit(3i32)))
            .unwrap();
        let j = pb
            .nested_loops(
                Source::Table(t),
                inner,
                vec![(0, CmpOp::Eq, 0)],
                vec![0],
                vec![1],
            )
            .unwrap();
        let plan = pb.build(j).unwrap();
        let ctx = ctx_for(plan);
        let (blocks, _) = run_parallel(
            ctx,
            SchedulerConfig {
                mode: ExecMode::Parallel { workers: 2 },
                ..Default::default()
            },
        )
        .unwrap();
        let rows = rows_of(&blocks);
        assert_eq!(rows.len(), 3);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r[0], Value::I32(i as i32));
            assert_eq!(r[1], Value::F64(i as f64));
        }
    }

    #[test]
    fn limit_through_scheduler() {
        let t = table("t6", 40, 4);
        let mut pb = PlanBuilder::new();
        let s = pb.filter(Source::Table(t), Predicate::True).unwrap();
        let l = pb.limit(Source::Op(s), 11).unwrap();
        let plan = pb.build(l).unwrap();
        let ctx = ctx_for(plan);
        let (blocks, m) = run_serial(ctx, SchedulerConfig::default()).unwrap();
        assert_eq!(m.result_rows, 11);
        assert_eq!(rows_of(&blocks).len(), 11);
    }

    #[test]
    fn metrics_account_for_all_work() {
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let (_, m) = run_serial(ctx, SchedulerConfig::default()).unwrap();
        // fact2: 100 rows, 8 per block -> 13 select work orders;
        // dim2: 10 rows, 4 per block -> 3 build work orders.
        assert_eq!(m.ops[1].work_orders, 13);
        assert_eq!(m.ops[0].work_orders, 3);
        assert!(m.ops[2].work_orders >= 1);
        assert_eq!(
            m.tasks.len(),
            m.ops.iter().map(|o| o.work_orders).sum::<usize>()
        );
        assert!(m.peak_temp_bytes > 0);
        assert!(!m.hash_table_bytes.is_empty());
        let dom = m.dominant_operators();
        assert_eq!(dom.len(), 3);
    }

    #[test]
    fn intermediate_uot_produces_partial_flush() {
        // 13 select output blocks with UoT=4: probe receives 3 transfers of 4
        // plus a final flush. All rows must still arrive.
        let plan = select_probe_plan(Uot::Blocks(4));
        let ctx = ctx_for(plan);
        let (blocks, m) = run_serial(
            ctx,
            SchedulerConfig {
                default_uot: Uot::Blocks(4),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rows_of(&blocks).len(), 10);
        assert!(m.ops[2].input_blocks >= 1);
    }

    // --- new coverage: indexed dispatch, observer hook, stall diagnostics ---

    fn stream_wo(op: OpId, seq: usize) -> WorkOrder {
        let s = Schema::from_pairs(&[("k", DataType::Int32)]);
        let b = StorageBlock::new(s, BlockFormat::Row, 64).unwrap();
        WorkOrder {
            query: crate::query_id::QueryId::SOLO,
            op,
            kind: WorkKind::Stream { block: Arc::new(b) },
            seq,
        }
    }

    #[test]
    fn ready_queue_prefers_critical_then_downstream_then_fifo() {
        // ops: 0 critical, 1 and 2 ordinary.
        let mut q = ReadyQueue::new(vec![true, false, false], None);
        q.push(stream_wo(1, 0));
        q.push(stream_wo(2, 1));
        q.push(stream_wo(0, 2));
        q.push(stream_wo(2, 3));
        assert_eq!(q.len(), 4);
        // critical op 0 first, then downstream op 2 FIFO, then op 1.
        let order: Vec<(OpId, usize)> = std::iter::from_fn(|| q.pop())
            .map(|wo| (wo.op, wo.seq))
            .collect();
        assert_eq!(order, vec![(0, 2), (2, 1), (2, 3), (1, 0)]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn ready_queue_honors_dop_cap() {
        let mut q = ReadyQueue::new(vec![false, false], Some(1));
        q.push(stream_wo(1, 0));
        q.push(stream_wo(1, 1));
        q.push(stream_wo(0, 2));
        // op 1 is preferred but capped after one in-flight order.
        assert_eq!(q.pop().map(|w| w.op), Some(1));
        assert_eq!(q.pop().map(|w| w.op), Some(0), "op 1 at cap, fall back");
        assert_eq!(q.pop().map(|w| w.op), None, "everything at cap");
        q.complete(1);
        assert_eq!(q.pop().map(|w| w.seq), Some(1), "slot freed, FIFO resumes");
    }

    #[test]
    fn noop_observer_drives_bare_machine() {
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let mut core =
            SchedulerCore::with_observer(ctx.clone(), SchedulerConfig::default(), NoopObserver);
        let mut executed = 0usize;
        while let Some(wo) = core.next_work_order() {
            let produced = execute_work_order(&ctx, &wo).unwrap();
            executed += 1;
            core.on_complete(
                &wo,
                produced,
                TaskRecord {
                    op: wo.op,
                    worker: 0,
                    start: Duration::ZERO,
                    end: Duration::ZERO,
                },
            )
            .unwrap();
        }
        assert!(core.all_finished());
        assert!(executed >= 16, "3 build + 13 select + probes");
    }

    #[test]
    fn custom_observer_sees_dispatch_and_finish_events() {
        #[derive(Default)]
        struct Counting {
            dispatched: usize,
            completed: usize,
            finished_ops: Vec<OpId>,
        }
        impl SchedulerObserver for Counting {
            fn work_order_dispatched(&mut self, _wo: &WorkOrder) {
                self.dispatched += 1;
            }
            fn work_order_completed(&mut self, _wo: &WorkOrder, _r: TaskRecord) {
                self.completed += 1;
            }
            fn operator_finished(&mut self, op: OpId) {
                self.finished_ops.push(op);
            }
        }
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let mut core = SchedulerCore::with_observer(
            ctx.clone(),
            SchedulerConfig::default(),
            Counting::default(),
        );
        while let Some(wo) = core.next_work_order() {
            let produced = execute_work_order(&ctx, &wo).unwrap();
            core.on_complete(
                &wo,
                produced,
                TaskRecord {
                    op: wo.op,
                    worker: 0,
                    start: Duration::ZERO,
                    end: Duration::ZERO,
                },
            )
            .unwrap();
        }
        assert!(core.all_finished());
        assert_eq!(core.observer.dispatched, core.observer.completed);
        assert_eq!(core.observer.finished_ops, vec![0, 1, 2]);
    }

    #[test]
    fn stall_report_names_operators_and_state() {
        // Freshly constructed: the build has queued work (outstanding > 0)
        // and the probe waits on it.
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let core = SchedulerCore::new(ctx, SchedulerConfig::default());
        let report = core.stall_report();
        assert!(report.contains("op0"), "{report}");
        assert!(report.contains("op2"), "{report}");
        assert!(report.contains("waiting_on=1"), "{report}");
        assert!(report.contains("outstanding="), "{report}");
        let err = core.stall_error();
        let msg = err.to_string();
        assert!(msg.contains("scheduler stalled"), "{msg}");
        assert!(msg.contains("op2"), "{msg}");
    }

    #[test]
    fn dropping_work_orders_stalls_with_diagnostics() {
        // Simulate a lost work order: pop everything without completing.
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let mut core = SchedulerCore::new(ctx, SchedulerConfig::default());
        while core.next_work_order().is_some() {}
        assert!(!core.all_finished());
        let report = core.stall_report();
        assert!(report.contains("outstanding="), "{report}");
    }

    // --- hardening: validation, cancellation, teardown accounting ---

    #[test]
    fn zero_dop_cap_is_rejected_by_both_drivers() {
        let bad = SchedulerConfig {
            max_dop_per_op: Some(0),
            ..Default::default()
        };
        assert!(matches!(bad.validate(), Err(EngineError::Config(_))));
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let err = run_serial(ctx, bad).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err}");
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let err = run_parallel(ctx, bad).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err}");
    }

    #[test]
    fn tracker_returns_to_baseline_after_success() {
        for uot in [Uot::Blocks(1), Uot::Blocks(4), Uot::Table] {
            let ctx = ctx_for(select_probe_plan(uot));
            let tracker = ctx.pool.tracker().clone();
            let (blocks, _) = run_serial(
                ctx,
                SchedulerConfig {
                    default_uot: uot,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(!blocks.is_empty());
            assert_eq!(tracker.current_bytes(), 0, "{uot}");
        }
    }

    #[test]
    fn cancellation_before_start_yields_cancelled_with_counts() {
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let tracker = ctx.pool.tracker().clone();
        ctx.cancel.cancel();
        let failed = run_serial_detailed(ctx, SchedulerConfig::default()).unwrap_err();
        match failed.error {
            EngineError::Cancelled {
                completed_work_orders,
                ..
            } => assert_eq!(completed_work_orders, 0),
            other => panic!("expected Cancelled, got {other}"),
        }
        assert_eq!(tracker.current_bytes(), 0);
    }

    #[test]
    fn expired_deadline_cancels_both_drivers() {
        for parallel in [false, true] {
            let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
            let tracker = ctx.pool.tracker().clone();
            let config = SchedulerConfig {
                mode: if parallel {
                    ExecMode::Parallel { workers: 2 }
                } else {
                    ExecMode::Serial
                },
                deadline: Some(Duration::ZERO),
                ..Default::default()
            };
            let err = run(ctx, config).unwrap_err();
            assert!(
                matches!(err, EngineError::Cancelled { .. }),
                "parallel={parallel}: {err}"
            );
            assert_eq!(tracker.current_bytes(), 0, "parallel={parallel}");
        }
    }

    #[test]
    fn error_path_preserves_completed_task_metrics() {
        // Inject a panic into the 5th work order; the first 4 completions
        // must still be visible in the partial metrics.
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let ctx = Arc::new(
            Arc::try_unwrap(ctx)
                .unwrap_or_else(|_| panic!("sole owner"))
                .with_faults(Arc::new(crate::fault::FaultPlan::new(vec![
                    crate::fault::Injection {
                        site: FaultSite::WorkOrderExec,
                        kind: FaultKind::Panic,
                        nth: 5,
                    },
                ]))),
        );
        let tracker = ctx.pool.tracker().clone();
        let failed = run_serial_detailed(ctx, SchedulerConfig::default()).unwrap_err();
        assert!(
            matches!(failed.error, EngineError::WorkOrderPanic { .. }),
            "{}",
            failed.error
        );
        let done: usize = failed
            .partial_metrics
            .ops
            .iter()
            .map(|o| o.work_orders)
            .sum();
        assert_eq!(done, 4, "completions before the injected panic");
        assert_eq!(tracker.current_bytes(), 0, "error path must not leak");
    }
}
