//! The work-order scheduler: where the UoT takes effect.
//!
//! The scheduler is the component the paper actually studies. It tracks block
//! production per operator and **stages** each producer's completed output
//! blocks at its consumer's input edge. Only when the staged count reaches
//! the edge's [`Uot`] threshold are the blocks *transferred* — turned into
//! consumer work orders (or collected, for blocking consumers). When a
//! producer finishes, any partially accumulated UoT flushes (Section III-B).
//!
//! Figure 2 of the paper falls directly out of this mechanism: with
//! `Uot::Blocks(1)` producer and consumer work orders interleave; with
//! `Uot::Table` the schedule degenerates to operator-at-a-time.
//!
//! [`SchedulerCore`] is a synchronous state machine, driven either inline
//! ([`run_serial`]) or by a scheduler thread with a worker pool
//! ([`run_parallel`]) — Quickstep's two thread kinds.

use crate::error::EngineError;
use crate::metrics::{OperatorMetrics, QueryMetrics, TaskRecord};
use crate::ops::execute_work_order;
use crate::plan::{OperatorKind, QueryPlan, Source};
use crate::state::ExecContext;
use crate::uot::Uot;
use crate::work_order::{WorkKind, WorkOrder};
use crate::Result;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};
use uot_storage::StorageBlock;

/// Scheduler knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Worker threads (parallel mode).
    pub workers: usize,
    /// UoT for edges without a per-operator override.
    pub default_uot: Uot,
    /// Optional cap on concurrent work orders per operator (a Quickstep-style
    /// scheduling policy; `None` = unbounded).
    pub max_dop_per_op: Option<usize>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 1,
            default_uot: Uot::LOW,
            max_dop_per_op: None,
        }
    }
}

/// Scheduler-side state of one operator.
#[derive(Debug, Default)]
struct OpState {
    /// Unfinished scheduling dependencies (build side, NLJ inner side, LIP
    /// filter sources). The operator is startable at zero.
    waiting_on: usize,
    /// The streamed producer has finished (base tables count as finished).
    producer_finished: bool,
    /// Blocks produced for this op but not yet transferred (UoT staging).
    staged: Vec<Arc<StorageBlock>>,
    /// Blocks transferred but held because the op is not startable yet.
    pending: VecDeque<Arc<StorageBlock>>,
    /// Work orders created and not yet completed.
    outstanding: usize,
    /// Bytes of tracked blocks parked in `collected` (sort input, NLJ inner
    /// side), released when this operator finishes.
    collected_bytes: usize,
    /// The finalize work order has been dispatched (agg/sort).
    finalize_dispatched: bool,
    /// This operator is completely done.
    finished: bool,
}

/// The synchronous scheduling state machine.
pub struct SchedulerCore {
    ctx: Arc<ExecContext>,
    config: SchedulerConfig,
    states: Vec<OpState>,
    ready: VecDeque<WorkOrder>,
    result_blocks: Vec<Arc<StorageBlock>>,
    op_metrics: Vec<OperatorMetrics>,
    tasks: Vec<TaskRecord>,
    in_flight_per_op: Vec<usize>,
    /// Operators on a blocking-prerequisite path (a build, an NLJ inner
    /// side, or anything streaming into one): scheduled ahead of ordinary
    /// work because downstream operators cannot start until they finish.
    critical: Vec<bool>,
    seq: usize,
    unfinished: usize,
}

impl SchedulerCore {
    /// Set up scheduling state and enqueue the initial work (base-table
    /// blocks are all available at query start).
    pub fn new(ctx: Arc<ExecContext>, config: SchedulerConfig) -> Self {
        let plan = ctx.plan.clone();
        let n = plan.len();
        let op_metrics = plan
            .ops()
            .iter()
            .map(|op| OperatorMetrics {
                name: op.name.clone(),
                kind: op.kind.kind_label().to_string(),
                ..Default::default()
            })
            .collect();
        let mut core = SchedulerCore {
            ctx,
            config,
            states: (0..n).map(|_| OpState::default()).collect(),
            ready: VecDeque::new(),
            result_blocks: Vec::new(),
            op_metrics,
            tasks: Vec::new(),
            in_flight_per_op: vec![0; n],
            critical: vec![false; n],
            seq: 0,
            unfinished: n,
        };
        for id in 0..n {
            let op = &plan.op(id).kind;
            core.states[id].waiting_on = op.scheduling_deps().len();
            core.states[id].producer_finished = matches!(op.stream_source(), Source::Table(_));
        }
        // Mark scheduling prerequisites (builds, NLJ inner sides, LIP
        // sources) and their transitive stream feeders as critical. Builders
        // assign consumers higher ids than producers, so a reverse pass sees
        // every consumer before its producers.
        for id in 0..n {
            for dep in plan.op(id).kind.scheduling_deps() {
                core.critical[dep] = true;
            }
        }
        for id in (0..n).rev() {
            if core.critical[id] {
                if let Source::Op(src) = plan.op(id).kind.stream_source() {
                    core.critical[*src] = true;
                }
            }
        }
        // Feed base-table blocks.
        for id in 0..n {
            if let Source::Table(t) = plan.op(id).kind.stream_source() {
                let blocks: Vec<Arc<StorageBlock>> = t.blocks().to_vec();
                core.transfer_in(id, blocks);
            }
        }
        // Operators with no input at all may already be completable.
        for id in 0..n {
            core.check_completion(id);
        }
        core
    }

    /// The plan being scheduled.
    fn plan(&self) -> &QueryPlan {
        &self.ctx.plan
    }

    /// UoT of operator `id`'s input edge.
    fn uot_of(&self, id: usize) -> Uot {
        self.plan().op(id).uot.unwrap_or(self.config.default_uot)
    }

    /// True when every operator has finished.
    pub fn all_finished(&self) -> bool {
        self.unfinished == 0
    }

    /// Number of work orders waiting in the ready queue.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Pop the next dispatchable work order, honoring the per-operator DOP
    /// cap if configured.
    ///
    /// Policy: **downstream-first** — among eligible work orders, prefer the
    /// operator furthest down the plan (highest id; plans are built bottom-
    /// up, so id order is topological). Transferred blocks are consumed while
    /// still warm and intermediate memory drains promptly; with a low UoT
    /// this yields exactly the interleaved schedules of the paper's Fig. 2,
    /// while a high UoT degenerates to operator-at-a-time regardless.
    pub fn next_work_order(&mut self) -> Option<WorkOrder> {
        let cap = self.config.max_dop_per_op.unwrap_or(usize::MAX).max(1);
        let idx = self
            .ready
            .iter()
            .enumerate()
            .filter(|(_, wo)| self.in_flight_per_op[wo.op] < cap)
            .max_by(|(_, a), (_, b)| {
                (self.critical[a.op], a.op, std::cmp::Reverse(a.seq)).cmp(&(
                    self.critical[b.op],
                    b.op,
                    std::cmp::Reverse(b.seq),
                ))
            })
            .map(|(i, _)| i)?;
        let wo = self.ready.remove(idx).expect("index from max_by");
        self.in_flight_per_op[wo.op] += 1;
        Some(wo)
    }

    /// Handle a completed work order.
    pub fn on_complete(
        &mut self,
        wo: &WorkOrder,
        produced: Vec<StorageBlock>,
        record: TaskRecord,
    ) {
        self.in_flight_per_op[wo.op] = self.in_flight_per_op[wo.op].saturating_sub(1);
        self.states[wo.op].outstanding -= 1;
        // A consumed intermediate block dies here (each block feeds exactly
        // one stream work order): release its bytes so `peak_temp_bytes`
        // reflects what is actually live. Base-table blocks were never
        // charged to the tracker and stay untouched.
        if let WorkKind::Stream { block } = &wo.kind {
            if matches!(self.plan().op(wo.op).kind.stream_source(), Source::Op(_)) {
                self.ctx.pool.tracker().free(block.allocated_bytes());
            }
        }
        let m = &mut self.op_metrics[wo.op];
        m.work_orders += 1;
        let d = record.duration();
        m.total_task_time += d;
        m.task_times.push(d);
        self.tasks.push(record);
        self.route_output(wo.op, produced);
        self.check_completion(wo.op);
    }

    /// Route blocks produced by `producer` to their destination: the result
    /// set (sink), a materialization list (NLJ inner side), or the consumer's
    /// UoT staging area.
    fn route_output(&mut self, producer: usize, produced: Vec<StorageBlock>) {
        if produced.is_empty() {
            return;
        }
        let m = &mut self.op_metrics[producer];
        m.produced_blocks += produced.len();
        m.produced_rows += produced.iter().map(|b| b.num_rows()).sum::<usize>();
        let blocks: Vec<Arc<StorageBlock>> = produced.into_iter().map(Arc::new).collect();
        match self.plan().consumer_of(producer) {
            None => self.result_blocks.extend(blocks),
            Some(consumer) => {
                // Materialization edge (NLJ inner side): bypass UoT staging —
                // the consumer cannot start before this producer finishes
                // anyway, so the UoT is immaterial on this edge.
                if let OperatorKind::NestedLoops { right, .. } = &self.plan().op(consumer).kind {
                    if *right == producer {
                        // Materialize at the producer: the NLJ reads the
                        // inner relation from its producing operator's
                        // `collected` list. Released when the NLJ finishes.
                        self.states[consumer].collected_bytes +=
                            blocks.iter().map(|b| b.allocated_bytes()).sum::<usize>();
                        self.ctx.runtimes[producer].collected.lock().extend(blocks);
                        return;
                    }
                }
                self.states[consumer].staged.extend(blocks);
                let threshold = self.uot_of(consumer).threshold_blocks();
                if self.states[consumer].staged.len() >= threshold {
                    let staged = std::mem::take(&mut self.states[consumer].staged);
                    self.transfer_in(consumer, staged);
                }
            }
        }
    }

    /// Deliver transferred blocks to `op`: collected for sorts, queued for
    /// non-startable operators, otherwise one stream work order per block.
    fn transfer_in(&mut self, op: usize, blocks: Vec<Arc<StorageBlock>>) {
        if blocks.is_empty() {
            return;
        }
        self.op_metrics[op].input_blocks += blocks.len();
        if matches!(self.plan().op(op).kind, OperatorKind::Sort { .. }) {
            if matches!(self.plan().op(op).kind.stream_source(), Source::Op(_)) {
                self.states[op].collected_bytes +=
                    blocks.iter().map(|b| b.allocated_bytes()).sum::<usize>();
            }
            self.ctx.runtimes[op].collected.lock().extend(blocks);
            return;
        }
        if self.states[op].waiting_on > 0 {
            self.states[op].pending.extend(blocks);
            return;
        }
        for b in blocks {
            self.push_stream_work(op, b);
        }
    }

    fn push_stream_work(&mut self, op: usize, block: Arc<StorageBlock>) {
        let wo = WorkOrder {
            op,
            kind: WorkKind::Stream { block },
            seq: self.seq,
        };
        self.seq += 1;
        self.states[op].outstanding += 1;
        self.ready.push_back(wo);
    }

    /// Decide whether `op` can finish (or needs its finalize step), and
    /// cascade the consequences downstream.
    fn check_completion(&mut self, op: usize) {
        let st = &self.states[op];
        if st.finished
            || st.waiting_on > 0
            || !st.producer_finished
            || !st.staged.is_empty()
            || !st.pending.is_empty()
            || st.outstanding > 0
        {
            return;
        }
        let needs_finalize = matches!(
            self.plan().op(op).kind,
            OperatorKind::Aggregate { .. } | OperatorKind::Sort { .. }
        );
        if needs_finalize && !self.states[op].finalize_dispatched {
            self.states[op].finalize_dispatched = true;
            self.states[op].outstanding += 1;
            let kind = if matches!(self.plan().op(op).kind, OperatorKind::Sort { .. }) {
                WorkKind::FinalizeSort
            } else {
                WorkKind::FinalizeAggregate
            };
            let wo = WorkOrder {
                op,
                kind,
                seq: self.seq,
            };
            self.seq += 1;
            self.ready.push_back(wo);
            return;
        }
        // Flush partially filled output blocks, route them, mark finished.
        if self.ctx.runtimes[op].output.is_some() {
            let flushed = self.ctx.output(op).flush();
            self.route_output(op, flushed);
        }
        // A finished build's hash table now has its final size: fold it into
        // the temporary-memory accounting so peak footprints include |H_i|
        // (the Section VI comparison).
        if let Some(ht) = &self.ctx.runtimes[op].hash_table {
            ht.sync_tracker(self.ctx.pool.tracker());
        }
        // Sort input / NLJ inner blocks parked at this operator die with it.
        let parked = std::mem::take(&mut self.states[op].collected_bytes);
        if parked > 0 {
            self.ctx.pool.tracker().free(parked);
        }
        self.states[op].finished = true;
        self.unfinished -= 1;
        self.on_producer_finished(op);
    }

    /// Propagate an operator's completion to its consumer and to every
    /// operator waiting on it as a scheduling dependency (probes, NLJs, LIP
    /// readers).
    fn on_producer_finished(&mut self, producer: usize) {
        // Release every dependent waiting on this op (a build can unblock
        // its probe *and* several LIP selects at once).
        let n = self.plan().len();
        for dependent in 0..n {
            let waits: usize = self
                .plan()
                .op(dependent)
                .kind
                .scheduling_deps()
                .iter()
                .filter(|&&d| d == producer)
                .count();
            if waits == 0 {
                continue;
            }
            self.states[dependent].waiting_on =
                self.states[dependent].waiting_on.saturating_sub(waits);
            if self.states[dependent].waiting_on == 0 {
                let pending: Vec<Arc<StorageBlock>> =
                    std::mem::take(&mut self.states[dependent].pending).into();
                for b in pending {
                    self.push_stream_work(dependent, b);
                }
                self.check_completion(dependent);
            }
        }

        let Some(consumer) = self.plan().consumer_of(producer) else {
            return;
        };
        // Flush any partial UoT accumulation on the consumer edge.
        let staged = std::mem::take(&mut self.states[consumer].staged);
        self.transfer_in(consumer, staged);

        // Stream edge: mark the consumer's producer done.
        if matches!(self.plan().op(consumer).kind.stream_source(), Source::Op(src) if *src == producer)
        {
            self.states[consumer].producer_finished = true;
        }
        self.check_completion(consumer);
    }

    /// Tear down into results + metrics.
    fn into_results(
        self,
        wall_time: Duration,
        workers: usize,
    ) -> (Vec<Arc<StorageBlock>>, QueryMetrics) {
        let mut tasks = self.tasks;
        tasks.sort_by_key(|t| t.start);
        let mut op_metrics = self.op_metrics;
        for (m, rt) in op_metrics.iter_mut().zip(&self.ctx.runtimes) {
            m.lip_pruned_rows = rt.lip_pruned.load(std::sync::atomic::Ordering::Relaxed);
        }
        let result_rows = self.result_blocks.iter().map(|b| b.num_rows()).sum();
        let hash_table_bytes = self
            .ctx
            .runtimes
            .iter()
            .enumerate()
            .filter_map(|(id, rt)| rt.hash_table.as_ref().map(|ht| (id, ht.memory_bytes())))
            .collect();
        let metrics = QueryMetrics {
            wall_time,
            ops: op_metrics,
            tasks,
            peak_temp_bytes: self.ctx.pool.tracker().peak_bytes(),
            pool: self.ctx.pool.stats(),
            hash_table_bytes,
            result_rows,
            workers,
        };
        (self.result_blocks, metrics)
    }
}

/// Execute the whole query on the calling thread, one work order at a time.
/// Deterministic; used for correctness tests and as the `ExecMode::Serial`
/// engine mode.
pub fn run_serial(
    ctx: Arc<ExecContext>,
    config: SchedulerConfig,
) -> Result<(Vec<Arc<StorageBlock>>, QueryMetrics)> {
    let start = Instant::now();
    let mut core = SchedulerCore::new(ctx.clone(), config);
    while let Some(wo) = core.next_work_order() {
        let t0 = start.elapsed();
        let produced = execute_work_order(&ctx, &wo)?;
        let t1 = start.elapsed();
        core.on_complete(
            &wo,
            produced,
            TaskRecord {
                op: wo.op,
                worker: 0,
                start: t0,
                end: t1,
            },
        );
    }
    if !core.all_finished() {
        return Err(EngineError::Internal(
            "scheduler stalled with unfinished operators".into(),
        ));
    }
    let wall = start.elapsed();
    Ok(core.into_results(wall, 1))
}

/// Message from the scheduler to a worker.
enum ToWorker {
    Run(WorkOrder),
}

/// Message from a worker back to the scheduler.
struct Completion {
    wo: WorkOrder,
    worker: usize,
    start: Duration,
    end: Duration,
    produced: Result<Vec<StorageBlock>>,
}

/// Execute the query with a scheduler (this thread) plus `config.workers`
/// worker threads — the Quickstep threading model.
pub fn run_parallel(
    ctx: Arc<ExecContext>,
    config: SchedulerConfig,
) -> Result<(Vec<Arc<StorageBlock>>, QueryMetrics)> {
    let workers = config.workers.max(1);
    let start = Instant::now();
    let (work_tx, work_rx) = crossbeam::channel::unbounded::<ToWorker>();
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<Completion>();

    std::thread::scope(|scope| {
        for worker_id in 0..workers {
            let work_rx = work_rx.clone();
            let done_tx = done_tx.clone();
            let ctx = ctx.clone();
            scope.spawn(move || {
                while let Ok(ToWorker::Run(wo)) = work_rx.recv() {
                    let t0 = start.elapsed();
                    let produced = execute_work_order(&ctx, &wo);
                    let t1 = start.elapsed();
                    if done_tx
                        .send(Completion {
                            wo,
                            worker: worker_id,
                            start: t0,
                            end: t1,
                            produced,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            });
        }
        drop(done_tx); // scheduler holds only the receiver

        let mut core = SchedulerCore::new(ctx.clone(), config);
        let mut free_slots = workers;
        let mut in_flight = 0usize;
        let mut first_error: Option<EngineError> = None;

        loop {
            // Dispatch as much ready work as workers can take.
            if first_error.is_none() {
                while free_slots > 0 {
                    match core.next_work_order() {
                        Some(wo) => {
                            free_slots -= 1;
                            in_flight += 1;
                            if work_tx.send(ToWorker::Run(wo)).is_err() {
                                return Err(EngineError::Internal(
                                    "worker pool hung up unexpectedly".into(),
                                ));
                            }
                        }
                        None => break,
                    }
                }
            }
            if in_flight == 0 {
                break;
            }
            let comp = done_rx
                .recv()
                .map_err(|_| EngineError::Internal("all workers exited early".into()))?;
            free_slots += 1;
            in_flight -= 1;
            match comp.produced {
                Ok(produced) => core.on_complete(
                    &comp.wo,
                    produced,
                    TaskRecord {
                        op: comp.wo.op,
                        worker: comp.worker,
                        start: comp.start,
                        end: comp.end,
                    },
                ),
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        drop(work_tx); // stop workers
        if let Some(e) = first_error {
            return Err(e);
        }
        if !core.all_finished() {
            return Err(EngineError::Internal(
                "scheduler stalled with unfinished operators".into(),
            ));
        }
        let wall = start.elapsed();
        Ok(core.into_results(wall, workers))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{JoinType, PlanBuilder, SortKey};
    use crate::state::ExecContext;
    use uot_expr::{cmp, col, lit, AggSpec, CmpOp, Predicate};
    use uot_storage::{
        BlockFormat, BlockPool, DataType, MemoryTracker, Schema, Table, TableBuilder, Value,
    };

    fn table(name: &str, n: i32, rows_per_block: usize) -> Arc<Table> {
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Float64)]);
        let mut tb = TableBuilder::new(name, s, BlockFormat::Column, rows_per_block * 12);
        for i in 0..n {
            tb.append(&[Value::I32(i), Value::F64(i as f64)]).unwrap();
        }
        Arc::new(tb.finish())
    }

    fn ctx_for(plan: QueryPlan) -> Arc<ExecContext> {
        Arc::new(
            ExecContext::new(
                Arc::new(plan),
                BlockPool::new(MemoryTracker::new()),
                BlockFormat::Row,
                // Small temp blocks (8 x 12-byte tuples) so producers emit
                // multiple full blocks and UoT effects are visible.
                96,
                8,
            )
            .unwrap(),
        )
    }

    fn select_probe_plan(uot: Uot) -> QueryPlan {
        let dim = table("dim2", 10, 4);
        let fact = table("fact2", 100, 8);
        let mut pb = PlanBuilder::new();
        let b = pb
            .build_hash(Source::Table(dim), vec![0], vec![1])
            .unwrap();
        let s = pb
            .filter(Source::Table(fact), cmp(col(0), CmpOp::Lt, lit(50i32)))
            .unwrap();
        let p = pb
            .probe(Source::Op(s), b, vec![0], vec![0, 1], vec![0], JoinType::Inner)
            .unwrap();
        pb.build(p).unwrap().with_uniform_uot(uot)
    }

    fn rows_of(blocks: &[Arc<StorageBlock>]) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = blocks.iter().flat_map(|b| b.all_rows()).collect();
        rows.sort_by(|a, b| crate::ops::aggregate::cmp_value_rows(a, b));
        rows
    }

    #[test]
    fn serial_select_probe_all_uots_agree() {
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for uot in [Uot::Blocks(1), Uot::Blocks(2), Uot::Blocks(4), Uot::Table] {
            let ctx = ctx_for(select_probe_plan(uot));
            let (blocks, metrics) = run_serial(
                ctx,
                SchedulerConfig {
                    default_uot: uot,
                    ..Default::default()
                },
            )
            .unwrap();
            let rows = rows_of(&blocks);
            // fact keys < 50 that match dim keys 0..10: 10 rows
            assert_eq!(rows.len(), 10, "{uot}");
            assert_eq!(metrics.result_rows, 10);
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(&rows, r, "{uot}"),
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let (blocks_s, _) = run_serial(ctx, SchedulerConfig::default()).unwrap();
        for workers in [2, 4] {
            let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
            let (blocks_p, metrics) = run_parallel(
                ctx,
                SchedulerConfig {
                    workers,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(rows_of(&blocks_p), rows_of(&blocks_s));
            assert_eq!(metrics.workers, workers);
        }
    }

    #[test]
    fn uot_controls_schedule_interleaving() {
        // With UoT=1 the probe starts before the select finishes (interleaved
        // sequence numbers); with UoT=Table every select task precedes every
        // probe task.
        let ctx = ctx_for(select_probe_plan(Uot::Table));
        let (_, m) = run_serial(
            ctx,
            SchedulerConfig {
                default_uot: Uot::Table,
                ..Default::default()
            },
        )
        .unwrap();
        // task log is chronological; find op ids: 0=build,1=select,2=probe
        let order: Vec<usize> = m.tasks.iter().map(|t| t.op).collect();
        let last_select = order.iter().rposition(|&o| o == 1).unwrap();
        let first_probe = order.iter().position(|&o| o == 2).unwrap();
        assert!(
            last_select < first_probe,
            "high UoT must not interleave: {order:?}"
        );

        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let (_, m) = run_serial(
            ctx,
            SchedulerConfig {
                default_uot: Uot::Blocks(1),
                ..Default::default()
            },
        )
        .unwrap();
        let order: Vec<usize> = m.tasks.iter().map(|t| t.op).collect();
        let last_select = order.iter().rposition(|&o| o == 1).unwrap();
        let first_probe = order.iter().position(|&o| o == 2).unwrap();
        assert!(
            first_probe < last_select,
            "low UoT must interleave: {order:?}"
        );
    }

    #[test]
    fn aggregation_pipeline() {
        let t = table("t3", 50, 8);
        let mut pb = PlanBuilder::new();
        let s = pb
            .filter(Source::Table(t), cmp(col(0), CmpOp::Ge, lit(10i32)))
            .unwrap();
        let a = pb
            .aggregate(
                Source::Op(s),
                vec![],
                vec![AggSpec::count_star(), AggSpec::sum(col(1))],
                &["n", "s"],
            )
            .unwrap();
        let plan = pb.build(a).unwrap();
        for uot in [Uot::Blocks(1), Uot::Table] {
            let ctx = ctx_for(plan.clone().with_uniform_uot(uot));
            let (blocks, _) = run_serial(ctx, SchedulerConfig::default()).unwrap();
            let rows = rows_of(&blocks);
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0][0], Value::I64(40));
            let expect: f64 = (10..50).map(|i| i as f64).sum();
            assert!((rows[0][1].as_f64() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn sort_pipeline() {
        let t = table("t4", 30, 4);
        let mut pb = PlanBuilder::new();
        let s = pb
            .filter(Source::Table(t), cmp(col(0), CmpOp::Lt, lit(10i32)))
            .unwrap();
        let so = pb
            .sort(Source::Op(s), vec![SortKey::desc(0)], Some(3))
            .unwrap();
        let plan = pb.build(so).unwrap();
        let ctx = ctx_for(plan);
        let (blocks, _) = run_parallel(
            ctx,
            SchedulerConfig {
                workers: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = blocks.iter().flat_map(|b| b.all_rows()).collect();
        let ks: Vec<i32> = rows.iter().map(|r| r[0].as_i32()).collect();
        assert_eq!(ks, vec![9, 8, 7]);
    }

    #[test]
    fn empty_base_table_cascades() {
        let t = table("empty", 0, 4);
        let mut pb = PlanBuilder::new();
        let s = pb.filter(Source::Table(t.clone()), Predicate::True).unwrap();
        let a = pb
            .aggregate(Source::Op(s), vec![], vec![AggSpec::count_star()], &["n"])
            .unwrap();
        let plan = pb.build(a).unwrap();
        let ctx = ctx_for(plan);
        let (blocks, _) = run_serial(ctx, SchedulerConfig::default()).unwrap();
        let rows = rows_of(&blocks);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::I64(0));
    }

    #[test]
    fn probe_waits_for_build() {
        // With UoT=1 probe input arrives before the build finishes; the
        // scheduler must hold those blocks. Validated by correctness (all
        // matches found) plus the task log (no probe before last build).
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let (_, m) = run_serial(ctx, SchedulerConfig::default()).unwrap();
        let order: Vec<usize> = m.tasks.iter().map(|t| t.op).collect();
        let last_build = order.iter().rposition(|&o| o == 0).unwrap();
        let first_probe = order.iter().position(|&o| o == 2).unwrap();
        assert!(last_build < first_probe, "{order:?}");
    }

    #[test]
    fn dop_cap_limits_concurrency() {
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let (_, m) = run_parallel(
            ctx,
            SchedulerConfig {
                workers: 8,
                max_dop_per_op: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        for op in 0..3 {
            assert!(m.max_dop(op) <= 1, "op {op} exceeded DOP cap");
        }
    }

    #[test]
    fn nested_loops_through_scheduler() {
        let t = table("t5", 6, 2);
        let mut pb = PlanBuilder::new();
        let inner = pb
            .filter(Source::Table(t.clone()), cmp(col(0), CmpOp::Lt, lit(3i32)))
            .unwrap();
        let j = pb
            .nested_loops(
                Source::Table(t),
                inner,
                vec![(0, CmpOp::Eq, 0)],
                vec![0],
                vec![1],
            )
            .unwrap();
        let plan = pb.build(j).unwrap();
        let ctx = ctx_for(plan);
        let (blocks, _) = run_parallel(
            ctx,
            SchedulerConfig {
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let rows = rows_of(&blocks);
        assert_eq!(rows.len(), 3);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r[0], Value::I32(i as i32));
            assert_eq!(r[1], Value::F64(i as f64));
        }
    }

    #[test]
    fn limit_through_scheduler() {
        let t = table("t6", 40, 4);
        let mut pb = PlanBuilder::new();
        let s = pb.filter(Source::Table(t), Predicate::True).unwrap();
        let l = pb.limit(Source::Op(s), 11).unwrap();
        let plan = pb.build(l).unwrap();
        let ctx = ctx_for(plan);
        let (blocks, m) = run_serial(ctx, SchedulerConfig::default()).unwrap();
        assert_eq!(m.result_rows, 11);
        assert_eq!(rows_of(&blocks).len(), 11);
    }

    #[test]
    fn metrics_account_for_all_work() {
        let ctx = ctx_for(select_probe_plan(Uot::Blocks(1)));
        let (_, m) = run_serial(ctx, SchedulerConfig::default()).unwrap();
        // fact2: 100 rows, 8 per block -> 13 select work orders;
        // dim2: 10 rows, 4 per block -> 3 build work orders.
        assert_eq!(m.ops[1].work_orders, 13);
        assert_eq!(m.ops[0].work_orders, 3);
        assert!(m.ops[2].work_orders >= 1);
        assert_eq!(
            m.tasks.len(),
            m.ops.iter().map(|o| o.work_orders).sum::<usize>()
        );
        assert!(m.peak_temp_bytes > 0);
        assert!(!m.hash_table_bytes.is_empty());
        let dom = m.dominant_operators();
        assert_eq!(dom.len(), 3);
    }

    #[test]
    fn intermediate_uot_produces_partial_flush() {
        // 13 select output blocks with UoT=4: probe receives 3 transfers of 4
        // plus a final flush. All rows must still arrive.
        let plan = select_probe_plan(Uot::Blocks(4));
        let ctx = ctx_for(plan);
        let (blocks, m) = run_serial(
            ctx,
            SchedulerConfig {
                default_uot: Uot::Blocks(4),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rows_of(&blocks).len(), 10);
        assert!(m.ops[2].input_blocks >= 1);
    }
}
