//! Lookahead Information Passing (LIP) integration tests: Bloom-filter
//! pruning at the scan must change the work done, never the answer.

use std::sync::Arc;
use uot_core::{Engine, EngineConfig, ExecMode, JoinType, PlanBuilder, QueryPlan, Source, Uot};
use uot_expr::{cmp, col, lit, AggSpec, CmpOp, Predicate};
use uot_storage::{BlockFormat, DataType, Schema, Table, TableBuilder, Value};

fn dim(n: i32) -> Arc<Table> {
    // keys 0, 10, 20, ... — only 1 in 10 fact keys will match
    let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)]);
    let mut tb = TableBuilder::new("dim", s, BlockFormat::Column, 1024);
    for i in 0..n {
        tb.append(&[Value::I32(i * 10), Value::I64(i as i64)])
            .unwrap();
    }
    Arc::new(tb.finish())
}

fn fact(n: i32) -> Arc<Table> {
    let s = Schema::from_pairs(&[("fk", DataType::Int32), ("x", DataType::Int64)]);
    let mut tb = TableBuilder::new("fact", s, BlockFormat::Column, 1024);
    for i in 0..n {
        tb.append(&[Value::I32(i % 1000), Value::I64(i as i64)])
            .unwrap();
    }
    Arc::new(tb.finish())
}

/// select(fact) [opt. LIP on dim build] → probe(dim) → count/sum.
fn plan(with_lip: bool) -> QueryPlan {
    let d = dim(100); // keys 0..1000 step 10
    let f = fact(5000);
    let mut pb = PlanBuilder::new();
    let b = pb.build_hash(Source::Table(d), vec![0], vec![1]).unwrap();
    let s = pb
        .select(
            Source::Table(f),
            cmp(col(1), CmpOp::Ge, lit(0i64)),
            vec![col(0), col(1)],
            &["fk", "x"],
        )
        .unwrap();
    if with_lip {
        pb.add_lip(s, b, vec![0]).unwrap();
    }
    let p = pb
        .probe(Source::Op(s), b, vec![0], vec![1], vec![0], JoinType::Inner)
        .unwrap();
    let a = pb
        .aggregate(
            Source::Op(p),
            vec![],
            vec![AggSpec::count_star(), AggSpec::sum(col(0))],
            &["n", "sx"],
        )
        .unwrap();
    pb.build(a).unwrap()
}

fn run(plan: QueryPlan, mode: ExecMode, uot: Uot) -> uot_core::QueryResult {
    Engine::new(EngineConfig {
        mode,
        default_uot: uot,
        block_bytes: 1024,
        // Staged execution: these tests assert per-operator produced_rows /
        // input_blocks arithmetic, which fused pipelines fold into the tail.
        fusion: uot_core::FusionPolicy::Never,
        ..Default::default()
    })
    .execute(plan)
    .unwrap()
}

#[test]
fn lip_preserves_results_and_prunes_rows() {
    for mode in [ExecMode::Serial, ExecMode::Parallel { workers: 3 }] {
        for uot in [Uot::LOW, Uot::HIGH] {
            let plain = run(plan(false), mode, uot);
            let lipped = run(plan(true), mode, uot);
            assert_eq!(
                plain.sorted_rows(),
                lipped.sorted_rows(),
                "LIP changed the answer under {mode:?} {uot}"
            );
            // select is op 1
            let plain_rows = plain.metrics.ops[1].produced_rows;
            let lip_rows = lipped.metrics.ops[1].produced_rows;
            let pruned = lipped.metrics.ops[1].lip_pruned_rows;
            assert_eq!(plain.metrics.ops[1].lip_pruned_rows, 0);
            assert!(pruned > 0, "nothing pruned under {mode:?} {uot}");
            assert_eq!(plain_rows, lip_rows + pruned);
            // 90% of fact keys don't match dim (keys 0..1000 step 10):
            // Bloom pruning should remove most of them (1% fp rate).
            assert!(
                lip_rows < plain_rows / 5,
                "expected heavy pruning: {lip_rows} of {plain_rows}"
            );
        }
    }
}

#[test]
fn lip_reduces_transferred_blocks() {
    let plain = run(plan(false), ExecMode::Serial, Uot::LOW);
    let lipped = run(plan(true), ExecMode::Serial, Uot::LOW);
    // fewer select output blocks -> fewer probe inputs/work orders
    assert!(
        lipped.metrics.ops[2].input_blocks < plain.metrics.ops[2].input_blocks,
        "{} vs {}",
        lipped.metrics.ops[2].input_blocks,
        plain.metrics.ops[2].input_blocks
    );
}

#[test]
fn lip_select_waits_for_the_build() {
    // With LIP, no select task may start before the last build task ends.
    let r = run(plan(true), ExecMode::Serial, Uot::LOW);
    let tasks = &r.metrics.tasks;
    let last_build_end = tasks
        .iter()
        .filter(|t| t.op == 0)
        .map(|t| t.end)
        .max()
        .expect("build ran");
    let first_select_start = tasks
        .iter()
        .filter(|t| t.op == 1)
        .map(|t| t.start)
        .min()
        .expect("select ran");
    assert!(first_select_start >= last_build_end);
}

#[test]
fn add_lip_validation() {
    let d = dim(10);
    let f = fact(100);
    let mut pb = PlanBuilder::new();
    let b = pb
        .build_hash(Source::Table(d.clone()), vec![0], vec![1])
        .unwrap();
    let s = pb.filter(Source::Table(f), Predicate::True).unwrap();
    // wrong arity
    assert!(pb.add_lip(s, b, vec![0, 1]).is_err());
    // out-of-range column
    assert!(pb.add_lip(s, b, vec![7]).is_err());
    // not a build
    assert!(pb.add_lip(s, s, vec![0]).is_err());
    // not a select
    assert!(pb.add_lip(b, b, vec![0]).is_err());
    // forward reference (build after select) rejected
    let b2 = pb.build_hash(Source::Table(d), vec![0], vec![]).unwrap();
    assert!(pb.add_lip(s, b2, vec![0]).is_err());
    // valid attach works
    assert!(pb.add_lip(s, b, vec![0]).is_ok());
}
