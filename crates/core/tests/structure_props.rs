//! Property tests for the engine's core data structures against reference
//! models: the output buffer must be a lossless re-blocker, the join hash
//! table must agree with a `HashMap` multimap, and the Bloom filter must
//! never produce false negatives.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use uot_core::bloom::BloomFilter;
use uot_core::hash_table::JoinHashTable;
use uot_core::output::OutputBuffer;
use uot_storage::{
    BlockFormat, BlockPool, DataType, HashKey, MemoryTracker, Schema, StorageBlock, Value,
};

fn schema() -> Arc<Schema> {
    Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)])
}

fn block_of(rows: &[(i32, i64)]) -> StorageBlock {
    let mut b = StorageBlock::new(schema(), BlockFormat::Column, 1 << 20).unwrap();
    for &(k, v) in rows {
        b.append_row(&[Value::I32(k), Value::I64(v)]).unwrap();
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn output_buffer_reblocks_losslessly(
        chunks in proptest::collection::vec(
            proptest::collection::vec((any::<i32>(), any::<i64>()), 0..40),
            0..8,
        ),
        rows_per_block in 1usize..9,
        fmt in prop_oneof![Just(BlockFormat::Row), Just(BlockFormat::Column)],
    ) {
        let pool = BlockPool::new(MemoryTracker::new());
        let buf = OutputBuffer::new(
            schema(),
            fmt,
            schema().tuple_width() * rows_per_block,
        );
        let mut out_blocks = Vec::new();
        for chunk in &chunks {
            out_blocks.extend(buf.write_rows(&block_of(chunk), &pool).unwrap());
        }
        out_blocks.extend(buf.flush());
        // Every block except possibly the last is exactly full, and the
        // concatenation equals the input concatenation.
        for b in out_blocks.iter().rev().skip(1) {
            prop_assert!(b.is_full());
        }
        let got: Vec<(i32, i64)> = out_blocks
            .iter()
            .flat_map(|b| b.all_rows())
            .map(|r| (r[0].as_i32(), r[1].as_i64()))
            .collect();
        let expect: Vec<(i32, i64)> = chunks.concat();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn hash_table_agrees_with_multimap_model(
        rows in proptest::collection::vec((0i32..50, any::<i64>()), 0..300),
        probes in proptest::collection::vec(0i32..80, 0..100),
        shards in 1usize..9,
    ) {
        let ht = JoinHashTable::new(schema().project(&[1]), shards);
        let mut model: HashMap<i32, Vec<i64>> = HashMap::new();
        // insert in several blocks to exercise the arena indexing
        for chunk in rows.chunks(37) {
            ht.insert_block(&block_of(chunk), &[0], &[1]).unwrap();
            for &(k, v) in chunk {
                model.entry(k).or_default().push(v);
            }
        }
        prop_assert_eq!(ht.len(), rows.len());
        for &p in &probes {
            let mut got = Vec::new();
            let n = ht.probe_key(&HashKey::from_i32(p), |payload| {
                got.push(payload.i64_at(0));
            });
            let mut expect = model.get(&p).cloned().unwrap_or_default();
            prop_assert_eq!(n, expect.len());
            got.sort_unstable();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
            prop_assert_eq!(
                ht.contains_key(&HashKey::from_i32(p)),
                model.contains_key(&p)
            );
        }
    }

    #[test]
    fn bloom_filter_has_no_false_negatives(
        keys in proptest::collection::hash_set(any::<i64>(), 0..500),
        capacity_hint in 1usize..2000,
    ) {
        let f = BloomFilter::with_capacity(capacity_hint, 0.02);
        for &k in &keys {
            f.insert(&HashKey::from_i64(k));
        }
        for &k in &keys {
            prop_assert!(f.may_contain(&HashKey::from_i64(k)));
        }
    }

    #[test]
    fn bloom_filter_fp_rate_reasonable_when_sized_right(
        keys in proptest::collection::hash_set(0i64..10_000, 100..400),
    ) {
        let f = BloomFilter::with_capacity(keys.len(), 0.01);
        for &k in &keys {
            f.insert(&HashKey::from_i64(k));
        }
        // probe a disjoint key range
        let fps = (100_000i64..102_000)
            .filter(|&k| f.may_contain(&HashKey::from_i64(k)))
            .count();
        // allow generous slack over the target 1%
        prop_assert!(fps < 200, "false positives: {fps}/2000");
    }
}
