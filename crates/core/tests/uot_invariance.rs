//! Property tests for the engine's central correctness invariant:
//!
//! **Query results are identical for every UoT value, block size, storage
//! format, worker count and execution mode.** The paper's whole point is
//! that the UoT is a performance/memory knob, not a semantics knob; these
//! tests pin that down on randomized plans and data.

use proptest::prelude::*;
use std::sync::Arc;
use uot_core::{Engine, EngineConfig, ExecMode, JoinType, PlanBuilder, QueryPlan, Source, Uot};
use uot_expr::{cmp, col, lit, AggSpec, CmpOp, Predicate};
use uot_storage::{BlockFormat, DataType, Schema, Table, TableBuilder, Value};

/// Random base table: (k: i32 in [0, key_range), v: f64, d: date).
fn arb_table(
    name: &'static str,
    max_rows: usize,
) -> impl Strategy<Value = (Arc<Table>, Vec<(i32, i64)>)> {
    (
        proptest::collection::vec((0i32..40, -1000i64..1000), 0..max_rows),
        1usize..6, // rows per block
    )
        .prop_map(move |(rows, rows_per_block)| {
            let schema = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)]);
            let mut tb = TableBuilder::new(
                name,
                schema.clone(),
                BlockFormat::Column,
                schema.tuple_width() * rows_per_block,
            );
            for (k, v) in &rows {
                tb.append(&[Value::I32(*k), Value::I64(*v)]).unwrap();
            }
            (Arc::new(tb.finish()), rows)
        })
}

/// select(fact) -> probe(dim) -> aggregate plan over random tables.
fn join_agg_plan(fact: Arc<Table>, dim: Arc<Table>, cut: i32) -> QueryPlan {
    let mut pb = PlanBuilder::new();
    let b = pb
        .build_hash(Source::Table(dim), vec![0], vec![0, 1])
        .unwrap();
    let s = pb
        .filter(Source::Table(fact), cmp(col(0), CmpOp::Lt, lit(cut)))
        .unwrap();
    let p = pb
        .probe(
            Source::Op(s),
            b,
            vec![0],
            vec![0, 1],
            vec![1],
            JoinType::Inner,
        )
        .unwrap();
    let a = pb
        .aggregate(
            Source::Op(p),
            vec![0],
            vec![
                AggSpec::count_star(),
                AggSpec::sum(col(1)),
                AggSpec::sum(col(2)),
            ],
            &["n", "sv", "sw"],
        )
        .unwrap();
    pb.build(a).unwrap()
}

/// Reference result computed naively from the raw rows.
fn reference_join_agg(
    fact: &[(i32, i64)],
    dim: &[(i32, i64)],
    cut: i32,
) -> Vec<(i32, i64, i64, i64)> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<i32, (i64, i64, i64)> = BTreeMap::new();
    for &(fk, fv) in fact.iter().filter(|(k, _)| *k < cut) {
        for &(dk, dv) in dim {
            if fk == dk {
                let e = groups.entry(fk).or_insert((0, 0, 0));
                e.0 += 1;
                e.1 += fv;
                e.2 += dv;
            }
        }
    }
    groups
        .into_iter()
        .map(|(k, (n, sv, sw))| (k, n, sv, sw))
        .collect()
}

fn run(plan: QueryPlan, cfg: EngineConfig) -> Vec<(i32, i64, i64, i64)> {
    let r = Engine::new(cfg).execute(plan).unwrap();
    r.sorted_rows()
        .into_iter()
        .map(|row| {
            (
                row[0].as_i32(),
                row[1].as_i64(),
                row[2].as_i64(),
                row[3].as_i64(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn join_agg_invariant_under_all_configs(
        (fact, fact_rows) in arb_table("fact", 60),
        (dim, dim_rows) in arb_table("dim", 25),
        cut in 0i32..45,
        uot in prop_oneof![
            Just(Uot::Blocks(1)),
            Just(Uot::Blocks(2)),
            Just(Uot::Blocks(5)),
            Just(Uot::Table)
        ],
        workers in 1usize..5,
        block_bytes in prop_oneof![Just(64usize), Just(256usize), Just(4096usize)],
        fmt in prop_oneof![Just(BlockFormat::Row), Just(BlockFormat::Column)],
    ) {
        let expect = reference_join_agg(&fact_rows, &dim_rows, cut);
        let plan = join_agg_plan(fact, dim, cut);
        let serial = run(
            plan.clone(),
            EngineConfig::serial(),
        );
        prop_assert_eq!(&serial, &expect, "serial vs reference");
        let cfg = EngineConfig {
            mode: ExecMode::Parallel { workers },
            default_uot: uot,
            block_bytes,
            temp_format: fmt,
            ..Default::default()
        };
        let parallel = run(plan, cfg);
        prop_assert_eq!(&parallel, &expect, "parallel vs reference");
    }

    #[test]
    fn semi_anti_join_partition_input(
        (fact, fact_rows) in arb_table("fact", 50),
        (dim, dim_rows) in arb_table("dim", 20),
        uot in prop_oneof![Just(Uot::Blocks(1)), Just(Uot::Table)],
    ) {
        // semi(fact) + anti(fact) must partition fact exactly.
        let dim_keys: std::collections::HashSet<i32> =
            dim_rows.iter().map(|(k, _)| *k).collect();
        let expect_semi = fact_rows.iter().filter(|(k, _)| dim_keys.contains(k)).count();
        let expect_anti = fact_rows.len() - expect_semi;

        for (join, expect) in [(JoinType::Semi, expect_semi), (JoinType::Anti, expect_anti)] {
            let mut pb = PlanBuilder::new();
            let b = pb
                .build_hash(Source::Table(dim.clone()), vec![0], vec![])
                .unwrap();
            let p = pb
                .probe(Source::Table(fact.clone()), b, vec![0], vec![0, 1], vec![], join)
                .unwrap();
            let plan = pb.build(p).unwrap().with_uniform_uot(uot);
            let cfg = EngineConfig {
                mode: ExecMode::Parallel { workers: 3 },
                default_uot: uot,
                block_bytes: 128,
                ..Default::default()
            };
            let r = Engine::new(cfg).execute(plan).unwrap();
            prop_assert_eq!(r.num_rows(), expect, "{:?}", join);
        }
    }

    #[test]
    fn sort_is_total_and_stable_across_configs(
        (t, rows) in arb_table("t", 80),
        desc in any::<bool>(),
        workers in 1usize..4,
    ) {
        let mut pb = PlanBuilder::new();
        let s = pb.filter(Source::Table(t), Predicate::True).unwrap();
        let so = pb
            .sort(
                Source::Op(s),
                vec![if desc {
                    uot_core::SortKey::desc(0)
                } else {
                    uot_core::SortKey::asc(0)
                }],
                None,
            )
            .unwrap();
        let plan = pb.build(so).unwrap();
        let cfg = EngineConfig {
            mode: ExecMode::Parallel { workers },
            block_bytes: 128,
            ..Default::default()
        };
        let r = Engine::new(cfg).execute(plan).unwrap();
        let got: Vec<i32> = r.rows().iter().map(|row| row[0].as_i32()).collect();
        let mut expect: Vec<i32> = rows.iter().map(|(k, _)| *k).collect();
        expect.sort_unstable();
        if desc {
            expect.reverse();
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn limit_never_exceeds_budget(
        (t, rows) in arb_table("t", 60),
        n in 0usize..30,
    ) {
        let mut pb = PlanBuilder::new();
        let s = pb.filter(Source::Table(t), Predicate::True).unwrap();
        let l = pb.limit(Source::Op(s), n).unwrap();
        let plan = pb.build(l).unwrap();
        let r = Engine::new(EngineConfig::parallel(3)).execute(plan).unwrap();
        prop_assert_eq!(r.num_rows(), n.min(rows.len()));
    }
}
