//! The unified SQL submission surface: `Engine::execute_sql` and
//! `QueryService::submit_sql` compile through the shared plan cache, report
//! hit/miss through `QueryMetrics::plan_cache`, and reject bad statements
//! eagerly with a spanned `PlanError`.

use std::sync::Arc;
use uot_core::{
    Engine, EngineConfig, EngineError, ExecOptions, PlanCacheOutcome, QueryService, ServiceConfig,
};
use uot_storage::{BlockFormat, Catalog, DataType, Schema, TableBuilder, Value};

fn catalog() -> Arc<Catalog> {
    let c = Catalog::new();
    let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Float64)]);
    let mut tb = TableBuilder::new("fact", s, BlockFormat::Column, 256);
    for i in 0..500 {
        tb.append(&[Value::I32(i % 10), Value::F64(i as f64 * 0.25)])
            .unwrap();
    }
    c.register(tb.finish()).unwrap();
    c
}

const QUERY: &str = "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM fact GROUP BY k ORDER BY k";

#[test]
fn engine_execute_sql_caches_compiled_plans() {
    let engine = Engine::new(EngineConfig::serial()).with_catalog(catalog());
    assert_eq!(engine.plan_cache_stats().entries, 0);

    let first = engine.execute_sql(QUERY).unwrap();
    assert_eq!(first.metrics.plan_cache, Some(PlanCacheOutcome::Miss));
    assert_eq!(first.rows().len(), 10);

    // Same statement, different whitespace and case: the normalized key hits.
    let second = engine
        .execute_sql("select k, count(*) as n, sum(v) as s from fact group by k order by k")
        .unwrap();
    assert_eq!(second.metrics.plan_cache, Some(PlanCacheOutcome::Hit));
    assert_eq!(second.rows(), first.rows());

    let stats = engine.plan_cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
}

#[test]
fn engine_execute_sql_without_catalog_is_a_config_error() {
    let engine = Engine::new(EngineConfig::serial());
    match engine.execute_sql(QUERY) {
        Err(EngineError::Config(msg)) => assert!(msg.contains("catalog"), "{msg}"),
        other => panic!("expected Config error, got {other:?}"),
    }
}

#[test]
fn service_submit_sql_shares_one_plan_cache_across_clients() {
    let service = QueryService::start(ServiceConfig {
        workers: 2,
        catalog: catalog(),
        ..ServiceConfig::default()
    })
    .unwrap();

    let first = service.submit_sql(QUERY).unwrap().wait().unwrap();
    assert_eq!(first.metrics.plan_cache, Some(PlanCacheOutcome::Miss));

    // Repeated submissions — as a second client would issue them — must hit.
    for _ in 0..3 {
        let r = service
            .submit_sql_with(QUERY, ExecOptions::default())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(r.metrics.plan_cache, Some(PlanCacheOutcome::Hit));
        assert_eq!(r.rows(), first.rows());
    }

    let stats = service.plan_cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (3, 1, 1));
    assert!(stats.hit_rate() > 0.74 && stats.hit_rate() < 0.76);
    service.shutdown();
}

#[test]
fn service_submit_sql_rejects_bad_statements_eagerly() {
    let cat = catalog();
    let service = QueryService::start(ServiceConfig {
        workers: 1,
        catalog: cat.clone(),
        ..ServiceConfig::default()
    })
    .unwrap();
    // Frontend failures surface on submit, not through the handle, and are
    // never cached.
    match service.submit_sql("SELECT nope FROM fact") {
        Err(EngineError::Sql(e)) => {
            assert_eq!(e.kind, uot_core::PlanErrorKind::UnknownColumn);
            assert!(e.span.is_some(), "error should carry a byte span");
        }
        other => panic!("expected Sql error, got {other:?}"),
    }
    assert_eq!(service.plan_cache_stats().entries, 0);

    // Plan-based submission stays available as the escape hatch.
    let mut pb = uot_core::PlanBuilder::new();
    let t = cat.get("fact").unwrap();
    let s = pb
        .filter(uot_core::Source::Table(t), uot_expr::Predicate::True)
        .unwrap();
    let plan = pb.build(s).unwrap();
    let r = service.submit(plan).unwrap().wait().unwrap();
    assert_eq!(
        r.metrics.plan_cache, None,
        "plan submissions bypass the cache"
    );
    assert_eq!(r.rows().len(), 500);
    service.shutdown();
}
