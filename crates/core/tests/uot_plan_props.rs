//! Property-based end-to-end invariant: the Unit of Transfer is a *schedule*
//! parameter, never a *result* parameter.
//!
//! Randomized select / build / probe / aggregate chains with random per-edge
//! UoT overrides must produce identical `sorted_rows()` under every
//! combination of execution mode (serial, 2 and 4 workers), default UoT
//! (block-level pipelining, grouped, full materialization) and temporary
//! block format (row, column). This is the paper's premise — the UoT spans a
//! performance spectrum while answers stay fixed — enforced as a property.
//!
//! The fact table carries a float column on purpose: `SUM`/`AVG` over
//! `Float64` use the exact accumulator (`uot_expr::ExactF64Sum`), so even
//! float aggregates must be *bit*-identical across schedules — the property
//! asserts plain equality, no epsilon.
//!
//! A second property compiles the equivalent SQL text through the front door
//! (`uot_core::sql::compile`) and checks the SQL-built plan agrees with the
//! hand-constructed plan byte-for-byte under every schedule — the
//! `api_redesign` contract that the SQL surface is a pure re-spelling of the
//! builder API.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use uot_core::trace::TraceEventKind;
use uot_core::{
    Engine, EngineConfig, ExecMode, FusionPolicy, JoinType, PlanBuilder, QueryPlan, Source,
    TraceConfig, Uot,
};
use uot_expr::{cmp, col, lit, AggSpec, CmpOp};
use uot_storage::{BlockFormat, Catalog, DataType, Schema, Table, TableBuilder, Value};

/// Shape of one randomized query: data, predicate, and plan structure.
#[derive(Debug, Clone)]
struct PlanSpec {
    /// Fact rows as (key, value) pairs.
    fact: Vec<(i32, i32)>,
    /// Distinct dim keys 0..dim_keys with payload `10 * key`.
    dim_keys: i32,
    /// Selection threshold: keep fact rows with key < threshold.
    threshold: i32,
    /// Join the fact against the dim through a build/probe pair.
    join: bool,
    /// Group by key and aggregate (count, sum of value).
    aggregate: bool,
    /// Per-operator UoT overrides, applied as `uots[op % len]`.
    uots: Vec<Uot>,
    /// Rows per base-table block (block granularity feeds the UoT).
    rows_per_block: usize,
}

fn arb_uot() -> impl Strategy<Value = Uot> {
    prop_oneof![
        Just(Uot::Blocks(1)),
        Just(Uot::Blocks(2)),
        Just(Uot::Blocks(3)),
        Just(Uot::Blocks(5)),
        Just(Uot::Table),
    ]
}

fn arb_spec() -> impl Strategy<Value = PlanSpec> {
    (
        proptest::collection::vec(((0i32..40), (-100i32..100)), 0..120),
        1i32..20,
        0i32..45,
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(arb_uot(), 4),
        prop_oneof![Just(2usize), Just(5), Just(16)],
    )
        .prop_map(
            |(fact, dim_keys, threshold, join, aggregate, uots, rows_per_block)| PlanSpec {
                fact,
                dim_keys,
                threshold,
                join,
                aggregate,
                uots,
                rows_per_block,
            },
        )
}

/// Fact table: (k Int32, v Int32, f Float64) with `f = v * 0.1` — an
/// inexact dyadic so float summation order would show up in the low bits if
/// aggregation were not exact.
fn fact_table(rows: &[(i32, i32)], rows_per_block: usize) -> Table {
    let s = Schema::from_pairs(&[
        ("k", DataType::Int32),
        ("v", DataType::Int32),
        ("f", DataType::Float64),
    ]);
    let mut tb = TableBuilder::new("fact", s, BlockFormat::Column, rows_per_block * 16);
    for &(k, v) in rows {
        tb.append(&[Value::I32(k), Value::I32(v), Value::F64(v as f64 * 0.1)])
            .unwrap();
    }
    tb.finish()
}

/// Dim table: (dk Int32, p Int32) with payload `p = 10 * dk`.
fn dim_table(dim_keys: i32, rows_per_block: usize) -> Table {
    let s = Schema::from_pairs(&[("dk", DataType::Int32), ("p", DataType::Int32)]);
    let mut tb = TableBuilder::new("dim", s, BlockFormat::Column, rows_per_block * 8);
    for k in 0..dim_keys {
        tb.append(&[Value::I32(k), Value::I32(10 * k)]).unwrap();
    }
    tb.finish()
}

/// Catalog holding `spec`'s tables (the SQL path resolves names against it;
/// the constructor path scans the same `Arc<Table>`s).
fn catalog_for(spec: &PlanSpec) -> Arc<Catalog> {
    let c = Catalog::new();
    c.register(fact_table(&spec.fact, spec.rows_per_block))
        .unwrap();
    c.register(dim_table(spec.dim_keys, spec.rows_per_block))
        .unwrap();
    c
}

/// Build the plan described by `spec` over `catalog`'s tables:
/// `select(fact, k < t)` [`-> probe(build(dim))`] [`-> group-by aggregate`],
/// then stamp every operator with its randomized UoT override.
fn build_plan_in(spec: &PlanSpec, catalog: &Catalog) -> QueryPlan {
    let fact = catalog.get("fact").unwrap();
    let dim = catalog.get("dim").unwrap();

    let mut pb = PlanBuilder::new();
    let mut tail = pb
        .filter(
            Source::Table(fact),
            cmp(col(0), CmpOp::Lt, lit(spec.threshold)),
        )
        .unwrap();
    if spec.join {
        let b = pb.build_hash(Source::Table(dim), vec![0], vec![1]).unwrap();
        // output: [fact k, fact v, fact f, dim payload]
        tail = pb
            .probe(
                Source::Op(tail),
                b,
                vec![0],
                vec![0, 1, 2],
                vec![0],
                JoinType::Inner,
            )
            .unwrap();
    }
    if spec.aggregate {
        tail = pb
            .aggregate(
                Source::Op(tail),
                vec![0],
                vec![
                    AggSpec::count_star(),
                    AggSpec::sum(col(1)),
                    AggSpec::sum(col(2)),
                ],
                &["n", "s", "sf"],
            )
            .unwrap();
    }
    let mut plan = pb.build(tail).unwrap();
    let n = plan.len();
    for op in 0..n {
        plan = plan.with_op_uot(op, spec.uots[op % spec.uots.len()]);
    }
    plan
}

fn build_plan(spec: &PlanSpec) -> QueryPlan {
    build_plan_in(spec, &catalog_for(spec))
}

/// The SQL spelling of `spec`'s query (modulo projection narrowing the
/// binder applies, which must not change results).
fn sql_for(spec: &PlanSpec) -> String {
    let t = spec.threshold;
    match (spec.join, spec.aggregate) {
        (false, false) => format!("SELECT k, v, f FROM fact WHERE k < {t}"),
        (false, true) => format!(
            "SELECT k, COUNT(*) AS n, SUM(v) AS s, SUM(f) AS sf \
             FROM fact WHERE k < {t} GROUP BY k"
        ),
        (true, false) => format!("SELECT k, v, f, p FROM fact, dim WHERE k = dk AND k < {t}"),
        (true, true) => format!(
            "SELECT k, COUNT(*) AS n, SUM(v) AS s, SUM(f) AS sf \
             FROM fact, dim WHERE k = dk AND k < {t} GROUP BY k"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn results_invariant_across_modes_uots_and_formats(spec in arb_spec()) {
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for mode in [
            ExecMode::Serial,
            ExecMode::Parallel { workers: 2 },
            ExecMode::Parallel { workers: 4 },
        ] {
            for default_uot in [Uot::Blocks(1), Uot::Blocks(3), Uot::Table] {
                for temp_format in [BlockFormat::Row, BlockFormat::Column] {
                    let cfg = EngineConfig {
                        mode,
                        default_uot,
                        temp_format,
                        ..EngineConfig::serial()
                    }
                    // Tiny temporaries (16 x 8-byte tuples) so multi-block
                    // UoT accumulation actually happens.
                    .with_block_bytes(128);
                    let result = Engine::new(cfg).execute(build_plan(&spec)).unwrap();
                    let rows = result.sorted_rows();
                    match &reference {
                        None => reference = Some(rows),
                        Some(r) => prop_assert_eq!(
                            &rows, r,
                            "divergence under {:?} {} {:?}",
                            mode, default_uot, temp_format
                        ),
                    }
                }
            }
        }
        // Sanity-check the reference against a direct computation of the
        // expected row count, so the property can't pass vacuously.
        let selected: Vec<(i32, i32)> = spec
            .fact
            .iter()
            .copied()
            .filter(|&(k, _)| k < spec.threshold)
            .collect();
        let joined: Vec<(i32, i32)> = if spec.join {
            selected
                .into_iter()
                .filter(|&(k, _)| k < spec.dim_keys)
                .collect()
        } else {
            selected
        };
        let expected_rows = if spec.aggregate {
            let mut keys: Vec<i32> = joined.iter().map(|&(k, _)| k).collect();
            keys.sort_unstable();
            keys.dedup();
            keys.len()
        } else {
            joined.len()
        };
        prop_assert_eq!(reference.unwrap().len(), expected_rows);
    }

    /// The SQL front door is a re-spelling of the plan-builder API: compiling
    /// the equivalent SQL text must produce byte-identical results to the
    /// hand-built plan — including float aggregates, bit for bit — under
    /// every mode / UoT / temp-format combination.
    #[test]
    fn sql_built_plans_match_constructor_plans(spec in arb_spec()) {
        let catalog = catalog_for(&spec);
        let sql = sql_for(&spec);
        for mode in [ExecMode::Serial, ExecMode::Parallel { workers: 2 }] {
            for default_uot in [Uot::Blocks(1), Uot::Blocks(3), Uot::Table] {
                for temp_format in [BlockFormat::Row, BlockFormat::Column] {
                    let cfg = EngineConfig {
                        mode,
                        default_uot,
                        temp_format,
                        ..EngineConfig::serial()
                    }
                    .with_block_bytes(128);
                    let ctor = Engine::new(cfg.clone())
                        .execute(build_plan_in(&spec, &catalog))
                        .unwrap();
                    let sql_plan = uot_core::sql::compile(&sql, &catalog).unwrap();
                    let from_sql = Engine::new(cfg).execute(sql_plan).unwrap();
                    prop_assert_eq!(
                        from_sql.sorted_rows(),
                        ctor.sorted_rows(),
                        "SQL vs constructor divergence under {:?} {} {:?} for `{}`",
                        mode, default_uot, temp_format, &sql
                    );
                }
            }
        }
    }

    /// Observability must be a pure observer: layering a `TracingObserver`
    /// onto the `MetricsObserver` (via `CompositeObserver`, which is what
    /// `EngineConfig::tracing` installs) may not change results or any
    /// schedule-deterministic metric. And the trace itself must be
    /// internally consistent: every dispatched work order reaches exactly
    /// one terminal event (finish, panic, failure, or cancellation).
    #[test]
    fn tracing_observer_leaves_metrics_untouched(spec in arb_spec()) {
        for mode in [ExecMode::Serial, ExecMode::Parallel { workers: 2 }] {
            for default_uot in [Uot::Blocks(1), Uot::Blocks(3), Uot::Table] {
                let cfg = EngineConfig {
                    mode,
                    default_uot,
                    ..EngineConfig::serial()
                }
                .with_block_bytes(128);
                let plain = Engine::new(cfg.clone())
                    .execute(build_plan(&spec))
                    .unwrap();
                let traced = Engine::new(cfg.tracing(TraceConfig::default()))
                    .execute(build_plan(&spec))
                    .unwrap();

                prop_assert_eq!(plain.sorted_rows(), traced.sorted_rows());
                let (pm, tm) = (&plain.metrics, &traced.metrics);
                prop_assert_eq!(pm.result_rows, tm.result_rows);
                prop_assert_eq!(pm.tasks.len(), tm.tasks.len());
                prop_assert_eq!(pm.ops.len(), tm.ops.len());
                for (po, to) in pm.ops.iter().zip(&tm.ops) {
                    prop_assert_eq!(po.work_orders, to.work_orders, "op {}", po.name);
                    prop_assert_eq!(po.input_blocks, to.input_blocks, "op {}", po.name);
                    prop_assert_eq!(po.produced_rows, to.produced_rows, "op {}", po.name);
                    if mode == ExecMode::Serial {
                        // Block packing depends on which rows share a work
                        // order; that partition is only schedule-stable when
                        // one worker drains the queue.
                        prop_assert_eq!(po.produced_blocks, to.produced_blocks, "op {}", po.name);
                    }
                }

                let trace = traced.trace.as_ref().expect("tracing was on");
                prop_assert_eq!(trace.dropped, 0, "default capacity fits tiny plans");
                let mut dispatched = BTreeSet::new();
                let mut terminal = BTreeSet::new();
                for e in &trace.events {
                    match e.kind {
                        TraceEventKind::WorkOrderDispatched { seq, .. } => {
                            prop_assert!(dispatched.insert(seq), "seq {} dispatched twice", seq);
                        }
                        TraceEventKind::WorkOrderFinished { seq, .. }
                        | TraceEventKind::WorkOrderPanicked { seq, .. }
                        | TraceEventKind::WorkOrderFailed { seq, .. }
                        | TraceEventKind::WorkOrderCancelled { seq, .. } => {
                            prop_assert!(terminal.insert(seq), "seq {} finished twice", seq);
                        }
                        _ => {}
                    }
                }
                prop_assert_eq!(&dispatched, &terminal, "unmatched dispatch/terminal events");
                prop_assert_eq!(dispatched.len(), tm.tasks.len());
            }
        }
    }

    /// Fusion is a *schedule* decision, never a *result* decision: forcing
    /// every eligible pipeline through the fused push-based loop
    /// (`FusionPolicy::Always`) must produce byte-identical rows to fully
    /// staged execution (`FusionPolicy::Never`) under every mode / UoT /
    /// temp-format combination. `ExactF64Sum` makes plain `==` valid even
    /// for float aggregates — no epsilon.
    #[test]
    fn fused_and_staged_results_are_byte_identical(spec in arb_spec()) {
        for mode in [ExecMode::Serial, ExecMode::Parallel { workers: 2 }] {
            for default_uot in [Uot::Blocks(1), Uot::Blocks(3), Uot::Table] {
                for temp_format in [BlockFormat::Row, BlockFormat::Column] {
                    let cfg = EngineConfig {
                        mode,
                        default_uot,
                        temp_format,
                        ..EngineConfig::serial()
                    }
                    .with_block_bytes(128);
                    let fused = Engine::new(cfg.clone().with_fusion(FusionPolicy::Always))
                        .execute(build_plan(&spec))
                        .unwrap();
                    let staged = Engine::new(cfg.with_fusion(FusionPolicy::Never))
                        .execute(build_plan(&spec))
                        .unwrap();
                    prop_assert_eq!(
                        fused.sorted_rows(),
                        staged.sorted_rows(),
                        "fused vs staged divergence under {:?} {} {:?}",
                        mode, default_uot, temp_format
                    );
                    // The policies must actually differ in how they ran:
                    // Never fuses nothing, and Always fuses the whole
                    // select->probe/aggregate chain whenever one exists (a
                    // lone select is a single-op pipeline, nothing to fuse).
                    prop_assert_eq!(staged.metrics.fused_pipelines, 0);
                    if spec.join || spec.aggregate {
                        prop_assert!(fused.metrics.fused_pipelines > 0);
                    }
                }
            }
        }
    }
}
