//! Chaos proptests: seeded fault-injection schedules driven through every
//! [`FaultSite`], asserting the execution-hardening invariants:
//!
//! 1. The query always returns `Ok` or `Err` — never hangs (watchdog) and
//!    never aborts the process (panic containment).
//! 2. `MemoryTracker::current_bytes()` returns to its pre-query value on
//!    success *and* on every error path — no leaked staging blocks, parked
//!    inputs, output partials or hash-table bytes.
//! 3. An empty `FaultPlan` is bit-identical to the uninstrumented path.
//! 4. A `BlockPool` survives a contained panic: subsequent queries on the
//!    same pool succeed.
//!
//! The `CHAOS_SEED` env var (used by the CI seed matrix) shifts every
//! generated injection point so different runs explore different schedules.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use uot_core::scheduler::{run, run_query, ExecMode, MetricsObserver};
use uot_core::state::ExecContext;
use uot_core::{
    CompositeObserver, EngineError, FaultKind, FaultPlan, FaultSite, Injection, JoinType,
    PlanBuilder, QueryPlan, SchedulerConfig, Source, TraceEventKind, TraceSink, TracingObserver,
    Uot, DEFAULT_TRACE_CAPACITY,
};
use uot_expr::{cmp, col, lit, AggSpec, CmpOp};
use uot_storage::{
    BlockFormat, BlockPool, DataType, MemoryTracker, Schema, Table, TableBuilder, Value,
};

/// Silence the default panic hook for *injected* panics only (they are
/// expected and contained); anything else still prints normally.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected"))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

/// CI seed matrix: shifts every injection point.
fn chaos_seed() -> usize {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn arb_table(name: &'static str, max_rows: usize) -> impl Strategy<Value = Arc<Table>> {
    (
        proptest::collection::vec((0i32..30, -500i64..500), 1..max_rows),
        1usize..6,
    )
        .prop_map(move |(rows, rows_per_block)| {
            let schema = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)]);
            let mut tb = TableBuilder::new(
                name,
                schema.clone(),
                BlockFormat::Column,
                schema.tuple_width() * rows_per_block,
            );
            for (k, v) in &rows {
                tb.append(&[Value::I32(*k), Value::I64(*v)]).unwrap();
            }
            Arc::new(tb.finish())
        })
}

/// select(fact) -> probe(dim) -> aggregate: covers stream transfers, a hash
/// table, staged edges and an output-emitting finalize.
fn join_agg_plan(fact: Arc<Table>, dim: Arc<Table>, uot: Uot) -> QueryPlan {
    let mut pb = PlanBuilder::new();
    let b = pb
        .build_hash(Source::Table(dim), vec![0], vec![0, 1])
        .unwrap();
    let s = pb
        .filter(Source::Table(fact), cmp(col(0), CmpOp::Lt, lit(25i32)))
        .unwrap();
    let p = pb
        .probe(
            Source::Op(s),
            b,
            vec![0],
            vec![0, 1],
            vec![1],
            JoinType::Inner,
        )
        .unwrap();
    let a = pb
        .aggregate(
            Source::Op(p),
            vec![0],
            vec![AggSpec::count_star(), AggSpec::sum(col(1))],
            &["n", "sv"],
        )
        .unwrap();
    pb.build(a).unwrap().with_uniform_uot(uot)
}

fn ctx_with(plan: QueryPlan, pool: Arc<BlockPool>, faults: Arc<FaultPlan>) -> Arc<ExecContext> {
    Arc::new(
        ExecContext::new(Arc::new(plan), pool, BlockFormat::Row, 128, 4)
            .unwrap()
            .with_faults(faults),
    )
}

type Outcome = std::result::Result<usize, EngineError>;

/// Run `f` on its own thread under a hard watchdog: a hang past the timeout
/// fails the test instead of wedging the suite.
fn run_with_watchdog<F>(f: F) -> Outcome
where
    F: FnOnce() -> Outcome + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(30))
        .expect("watchdog: query neither completed nor errored within 30s")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Invariants 1 + 2 across every site, kind, injection point, UoT and
    /// driver: no hang, no abort, errors only of expected shapes, and the
    /// tracker back at zero afterwards — including schedules that error
    /// with blocks still staged on a `TransferEdge`.
    #[test]
    fn fault_schedules_never_hang_or_leak(
        fact in arb_table("chaos_fact", 40),
        dim in arb_table("chaos_dim", 15),
        site_ix in 0usize..3,
        kind_ix in 0usize..3,
        nth in 1usize..20,
        uot in prop_oneof![Just(Uot::Blocks(1)), Just(Uot::Blocks(3)), Just(Uot::Table)],
        parallel in any::<bool>(),
        workers in 1usize..4,
    ) {
        quiet_injected_panics();
        let site = FaultSite::ALL[site_ix];
        let kind = match kind_ix {
            0 => FaultKind::Panic,
            1 => FaultKind::Error,
            _ => FaultKind::Delay(Duration::from_millis(1)),
        };
        let nth = 1 + (nth - 1 + chaos_seed()) % 24;
        let faults = Arc::new(FaultPlan::new(vec![Injection { site, kind, nth }]));

        let tracker = MemoryTracker::new();
        let pool = BlockPool::new(tracker.clone());
        let ctx = ctx_with(join_agg_plan(fact, dim, uot), pool, faults);
        let config = SchedulerConfig {
            mode: if parallel {
                ExecMode::Parallel { workers }
            } else {
                ExecMode::Serial
            },
            default_uot: uot,
            ..Default::default()
        };

        let outcome = run_with_watchdog(move || {
            let observer = MetricsObserver::new(&ctx.plan);
            match run_query(ctx, config, observer) {
                Ok((blocks, _metrics)) => Ok(blocks.len()),
                Err(failed) => Err(failed.error),
            }
        });

        match &outcome {
            Ok(_) => {}
            Err(EngineError::WorkOrderPanic { payload, .. }) => {
                prop_assert!(payload.contains("injected"), "{}", payload);
            }
            Err(EngineError::BudgetExceeded { .. })
            | Err(EngineError::Storage(_))
            | Err(EngineError::Internal(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error shape: {}", other),
        }
        if matches!(kind, FaultKind::Delay(_)) {
            prop_assert!(outcome.is_ok(), "a delay must not fail the query");
        }
        prop_assert_eq!(
            tracker.current_bytes(),
            0,
            "leak after {:?}/{:?} nth={} uot={} parallel={}",
            site, kind, nth, uot, parallel
        );
    }

    /// Spill-tier chaos: with the disk tier armed under a tight budget,
    /// injected `SpillWrite`/`SpillRead` faults (the serializer failing, a
    /// spilled block failing to fault back in) surface as clean errors of
    /// the expected shapes — never a hang, an abort, a leaked tracker byte
    /// or an orphaned temp file. Grace-join partitioning is exercised too:
    /// `plan_grace` arms for dim sides whose estimate crosses the budget.
    #[test]
    fn spill_fault_schedules_never_hang_or_leak(
        fact in arb_table("spillchaos_fact", 40),
        dim in arb_table("spillchaos_dim", 15),
        write_site in any::<bool>(),
        kind_ix in 0usize..3,
        nth in 1usize..12,
        budget in prop_oneof![Just(600usize), Just(1200), Just(4096)],
        parallel in any::<bool>(),
    ) {
        quiet_injected_panics();
        let site = if write_site { FaultSite::SpillWrite } else { FaultSite::SpillRead };
        let kind = match kind_ix {
            0 => FaultKind::Panic,
            1 => FaultKind::Error,
            _ => FaultKind::Delay(Duration::from_millis(1)),
        };
        let nth = 1 + (nth - 1 + chaos_seed()) % 16;
        let faults = Arc::new(FaultPlan::new(vec![Injection { site, kind, nth }]));

        let tracker = MemoryTracker::new();
        let pool = BlockPool::with_budget(tracker.clone(), budget);
        let store = uot_storage::SpillStore::new(None, tracker.clone()).unwrap();
        store.set_observer(uot_core::spill::EngineSpillHook::new(
            Some(faults.clone()),
            None,
            tracker.clone(),
        ));
        pool.enable_spill(store.clone());
        // Table UoT + one hash-table shard: staging must outgrow the budget
        // (forcing evictions) without the per-shard fixed overhead eating it.
        let mut ctx = ExecContext::new(
            Arc::new(join_agg_plan(fact, dim, Uot::Table)),
            pool,
            BlockFormat::Row,
            96,
            1,
        )
        .unwrap()
        .with_faults(faults);
        ctx.plan_grace(budget);
        let ctx = Arc::new(ctx);
        let config = SchedulerConfig {
            mode: if parallel {
                ExecMode::Parallel { workers: 2 }
            } else {
                ExecMode::Serial
            },
            default_uot: Uot::Table,
            ..Default::default()
        };

        let outcome = run_with_watchdog(move || {
            let observer = MetricsObserver::new(&ctx.plan);
            match run_query(ctx, config, observer) {
                Ok((blocks, _metrics)) => Ok(blocks.len()),
                Err(failed) => Err(failed.error),
            }
        });

        // A tight budget can legitimately fail the query even without the
        // injection firing, so (unlike the exec-site test) a Delay schedule
        // is not guaranteed Ok — only the error *shapes* are constrained.
        match &outcome {
            Ok(_) => {}
            Err(EngineError::WorkOrderPanic { payload, .. }) => {
                prop_assert!(payload.contains("injected"), "{}", payload);
            }
            Err(EngineError::BudgetExceeded { .. })
            | Err(EngineError::Storage(_))
            | Err(EngineError::Internal(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error shape: {}", other),
        }
        prop_assert_eq!(
            tracker.current_bytes(),
            0,
            "leak after {:?}/{:?} nth={} budget={} parallel={}",
            site, kind, nth, budget, parallel
        );
        prop_assert_eq!(
            store.live_files(),
            0,
            "orphaned spill files after {:?}/{:?} nth={} budget={}",
            site, kind, nth, budget
        );
    }

    /// Invariant 3: an installed-but-empty fault plan changes nothing — same
    /// result blocks, bit-identical rows in the same order (serial driver).
    #[test]
    fn empty_fault_plan_is_bit_identical(
        fact in arb_table("noop_fact", 40),
        dim in arb_table("noop_dim", 15),
        uot in prop_oneof![Just(Uot::Blocks(1)), Just(Uot::Blocks(2)), Just(Uot::Table)],
    ) {
        let plain_pool = BlockPool::new(MemoryTracker::new());
        let plain_ctx = ctx_with(
            join_agg_plan(fact.clone(), dim.clone(), uot),
            plain_pool,
            Arc::new(FaultPlan::empty()),
        );
        let instrumented_pool = BlockPool::new(MemoryTracker::new());
        let instrumented_ctx = ctx_with(
            join_agg_plan(fact, dim, uot),
            instrumented_pool,
            Arc::new(FaultPlan::new(vec![Injection {
                site: FaultSite::WorkOrderExec,
                kind: FaultKind::Panic,
                nth: usize::MAX, // registered but unreachable
            }])),
        );
        let config = SchedulerConfig {
            default_uot: uot,
            ..Default::default()
        };
        let (a, _) = run(plain_ctx, config).unwrap();
        let (b, _) = run(instrumented_ctx, config).unwrap();
        let rows_a: Vec<Vec<Value>> = a.iter().flat_map(|blk| blk.all_rows()).collect();
        let rows_b: Vec<Vec<Value>> = b.iter().flat_map(|blk| blk.all_rows()).collect();
        prop_assert_eq!(rows_a, rows_b);
    }

    /// Tracing under chaos: with a `TraceSink` attached, every injected
    /// fault that fires shows up as exactly one `FaultInjected` event with
    /// the configured site and kind and a plausible operator attribution —
    /// including on error paths, where `QueryResult::trace` never exists
    /// (the test holds its own sink and drains it after the run).
    #[test]
    fn injected_faults_are_traced_with_attribution(
        fact in arb_table("trace_fact", 40),
        dim in arb_table("trace_dim", 15),
        site_ix in 0usize..3,
        kind_ix in 0usize..3,
        nth in 1usize..12,
        uot in prop_oneof![Just(Uot::Blocks(1)), Just(Uot::Blocks(3)), Just(Uot::Table)],
        parallel in any::<bool>(),
    ) {
        quiet_injected_panics();
        let site = FaultSite::ALL[site_ix];
        let kind = match kind_ix {
            0 => FaultKind::Panic,
            1 => FaultKind::Error,
            _ => FaultKind::Delay(Duration::from_millis(1)),
        };
        let faults = Arc::new(FaultPlan::new(vec![Injection { site, kind, nth }]));

        let plan = join_agg_plan(fact, dim, uot);
        let op_names: Vec<String> = plan.ops().iter().map(|op| op.name.clone()).collect();
        let num_ops = op_names.len();
        let sink = TraceSink::new(DEFAULT_TRACE_CAPACITY);
        let pool = BlockPool::new(MemoryTracker::new());
        let ctx = Arc::new(
            ExecContext::new(Arc::new(plan), pool, BlockFormat::Row, 128, 4)
                .unwrap()
                .with_faults(faults)
                .with_trace(sink.clone()),
        );
        let config = SchedulerConfig {
            mode: if parallel {
                ExecMode::Parallel { workers: 2 }
            } else {
                ExecMode::Serial
            },
            default_uot: uot,
            ..Default::default()
        };

        let run_sink = sink.clone();
        let outcome = run_with_watchdog(move || {
            let observer = CompositeObserver::new(
                MetricsObserver::new(&ctx.plan),
                TracingObserver::new(run_sink),
            );
            match run_query(ctx, config, observer) {
                Ok((blocks, _metrics)) => Ok(blocks.len()),
                Err(failed) => Err(failed.error),
            }
        });

        let trace = sink.finish(op_names);
        let fired: Vec<_> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::FaultInjected { site, kind, op } => Some((site, kind, op)),
                _ => None,
            })
            .collect();
        prop_assert!(fired.len() <= 1, "one injection fires at most once: {:?}", fired);
        // A failed outcome can only come from the injection on this plan, so
        // the trace must have attributed it.
        if outcome.is_err() {
            prop_assert_eq!(fired.len(), 1, "failure without a FaultInjected event");
        }
        for &(s, k, op) in &fired {
            prop_assert_eq!(s, site);
            prop_assert_eq!(k, kind);
            prop_assert!(op < num_ops, "fault attributed to op {} of {}", op, num_ops);
            match site {
                // An exec-site panic is contained; the same operator must
                // also log the panic terminal event.
                FaultSite::WorkOrderExec if matches!(kind, FaultKind::Panic) => {
                    prop_assert!(
                        trace.events.iter().any(|e| matches!(
                            e.kind,
                            TraceEventKind::WorkOrderPanicked { op: p, .. } if p == op
                        )),
                        "no WorkOrderPanicked event for op {}",
                        op
                    );
                }
                // A flush-site fault is attributed to a producer that staged
                // or transferred on some edge.
                FaultSite::TransferFlush => {
                    prop_assert!(
                        trace.events.iter().any(|e| matches!(
                            e.kind,
                            TraceEventKind::EdgeStaged { producer, .. }
                            | TraceEventKind::TransferFlushed { producer, .. }
                                if producer == op
                        )),
                        "flush fault attributed to op {} which never touched an edge",
                        op
                    );
                }
                _ => {}
            }
        }
        // Delay faults never fail the query, and with tracing on the fault
        // still shows (delays are observable, not silent).
        if matches!(kind, FaultKind::Delay(_)) {
            prop_assert!(outcome.is_ok());
        }
    }
}

/// Panic containment inside a *fused* pipeline: the `WorkOrderPanic` names
/// the whole chain (its label lists every member operator) with kind
/// `"fused-pipeline"`, since the faulting operator could be any member of
/// the fused loop — and the tracker still returns to zero.
#[test]
fn fused_pipeline_panic_names_the_chain() {
    quiet_injected_panics();
    let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)]);
    let mut tb = TableBuilder::new("fused_chaos", s, BlockFormat::Column, 48);
    for i in 0..60 {
        tb.append(&[Value::I32(i % 20), Value::I64(i as i64)])
            .unwrap();
    }
    let t = Arc::new(tb.finish());
    let mut pb = PlanBuilder::new();
    let sel = pb
        .filter(Source::Table(t), cmp(col(0), CmpOp::Lt, lit(15i32)))
        .unwrap();
    let agg = pb
        .aggregate(
            Source::Op(sel),
            vec![0],
            vec![AggSpec::count_star(), AggSpec::sum(col(1))],
            &["n", "sv"],
        )
        .unwrap();
    let plan = Arc::new(pb.build(agg).unwrap());

    let faults = Arc::new(FaultPlan::new(vec![Injection {
        site: FaultSite::WorkOrderExec,
        kind: FaultKind::Panic,
        nth: 1, // the first work order is the fused chain's head
    }]));
    let tracker = MemoryTracker::new();
    let pool = BlockPool::new(tracker.clone());
    let fusion = uot_core::fusion::plan_fusion(
        &plan,
        uot_core::FusionPolicy::Always,
        1,
        128,
        Uot::Blocks(1),
    );
    assert_eq!(fusion.fused_count(), 1, "select->aggregate must fuse");
    let ctx = Arc::new(
        ExecContext::new(plan, pool, BlockFormat::Row, 128, 4)
            .unwrap()
            .with_faults(faults)
            .with_fusion(fusion),
    );
    let err = run(ctx, SchedulerConfig::default()).unwrap_err();
    match err {
        EngineError::WorkOrderPanic { op, kind, payload } => {
            assert_eq!(kind, "fused-pipeline");
            assert!(op.contains('+'), "chain label names every member: {op}");
            assert!(payload.contains("injected"), "{payload}");
        }
        other => panic!("expected WorkOrderPanic, got {other}"),
    }
    assert_eq!(tracker.current_bytes(), 0, "fused panic path must not leak");
}

/// Invariant 4: a contained panic leaves the shared `BlockPool` (and its
/// tracker) fully usable — the next query on the *same pool* succeeds and
/// accounting stays exact.
#[test]
fn same_pool_survives_contained_panics() {
    quiet_injected_panics();
    let mk_table = |name: &str, n: i32| {
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)]);
        let mut tb = TableBuilder::new(name, s, BlockFormat::Column, 48);
        for i in 0..n {
            tb.append(&[Value::I32(i % 20), Value::I64(i as i64)])
                .unwrap();
        }
        Arc::new(tb.finish())
    };
    let fact = mk_table("recover_fact", 80);
    let dim = mk_table("recover_dim", 12);
    let tracker = MemoryTracker::new();
    let pool = BlockPool::new(tracker.clone());

    for nth in [1, 4, 9] {
        let faults = Arc::new(FaultPlan::new(vec![Injection {
            site: FaultSite::WorkOrderExec,
            kind: FaultKind::Panic,
            nth,
        }]));
        let ctx = ctx_with(
            join_agg_plan(fact.clone(), dim.clone(), Uot::Blocks(1)),
            pool.clone(),
            faults,
        );
        let err = run(ctx, SchedulerConfig::default()).unwrap_err();
        assert!(
            matches!(err, EngineError::WorkOrderPanic { .. }),
            "nth={nth}: {err}"
        );
        assert_eq!(tracker.current_bytes(), 0, "nth={nth}");

        // The same pool immediately runs the same query to completion.
        let ctx = ctx_with(
            join_agg_plan(fact.clone(), dim.clone(), Uot::Blocks(1)),
            pool.clone(),
            Arc::new(FaultPlan::empty()),
        );
        let (blocks, metrics) = run(ctx, SchedulerConfig::default()).unwrap();
        assert!(metrics.result_rows > 0);
        drop(blocks);
        assert_eq!(tracker.current_bytes(), 0, "nth={nth} post-recovery");
    }
}
