//! Leak-check proptests: after every *successful* run — across execution
//! modes, UoTs, block formats, block sizes and plan shapes —
//! `MemoryTracker::current_bytes()` returns to its pre-query baseline
//! (zero for a fresh tracker). Query teardown releases result-block bytes,
//! pooled free lists, hash tables and every staged/parked intermediate.

use proptest::prelude::*;
use std::sync::Arc;
use uot_core::scheduler::{run, ExecMode};
use uot_core::state::ExecContext;
use uot_core::{JoinType, PlanBuilder, QueryPlan, SchedulerConfig, SortKey, Source, Uot};
use uot_expr::{cmp, col, lit, AggSpec, CmpOp, Predicate};
use uot_storage::{
    BlockFormat, BlockPool, DataType, MemoryTracker, Schema, Table, TableBuilder, Value,
};

fn arb_table(name: &'static str, max_rows: usize) -> impl Strategy<Value = Arc<Table>> {
    (
        proptest::collection::vec((0i32..25, -500i64..500), 1..max_rows),
        1usize..6,
    )
        .prop_map(move |(rows, rows_per_block)| {
            let schema = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)]);
            let mut tb = TableBuilder::new(
                name,
                schema.clone(),
                BlockFormat::Column,
                schema.tuple_width() * rows_per_block,
            );
            for (k, v) in &rows {
                tb.append(&[Value::I32(*k), Value::I64(*v)]).unwrap();
            }
            Arc::new(tb.finish())
        })
}

/// Three plan shapes hitting the three block-parking mechanisms: stream
/// staging + hash table (join/agg), sort-collected input, and the NLJ's
/// materialized inner side.
fn plan_of(shape: usize, fact: Arc<Table>, dim: Arc<Table>) -> QueryPlan {
    let mut pb = PlanBuilder::new();
    match shape {
        0 => {
            let b = pb
                .build_hash(Source::Table(dim), vec![0], vec![0, 1])
                .unwrap();
            let s = pb
                .filter(Source::Table(fact), cmp(col(0), CmpOp::Lt, lit(20i32)))
                .unwrap();
            let p = pb
                .probe(
                    Source::Op(s),
                    b,
                    vec![0],
                    vec![0, 1],
                    vec![1],
                    JoinType::Inner,
                )
                .unwrap();
            let a = pb
                .aggregate(
                    Source::Op(p),
                    vec![0],
                    vec![AggSpec::count_star(), AggSpec::sum(col(1))],
                    &["n", "sv"],
                )
                .unwrap();
            pb.build(a).unwrap()
        }
        1 => {
            let s = pb.filter(Source::Table(fact), Predicate::True).unwrap();
            let so = pb
                .sort(Source::Op(s), vec![SortKey::asc(0)], Some(16))
                .unwrap();
            pb.build(so).unwrap()
        }
        _ => {
            let inner = pb
                .filter(Source::Table(dim), cmp(col(0), CmpOp::Lt, lit(8i32)))
                .unwrap();
            let j = pb
                .nested_loops(
                    Source::Table(fact),
                    inner,
                    vec![(0, CmpOp::Eq, 0)],
                    vec![0],
                    vec![1],
                )
                .unwrap();
            pb.build(j).unwrap()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tracker_returns_to_baseline_after_success(
        fact in arb_table("leak_fact", 50),
        dim in arb_table("leak_dim", 15),
        shape in 0usize..3,
        uot in prop_oneof![
            Just(Uot::Blocks(1)),
            Just(Uot::Blocks(2)),
            Just(Uot::Blocks(5)),
            Just(Uot::Table)
        ],
        fmt in prop_oneof![Just(BlockFormat::Row), Just(BlockFormat::Column)],
        block_bytes in prop_oneof![Just(64usize), Just(128usize), Just(1024usize)],
        parallel in any::<bool>(),
        workers in 1usize..4,
    ) {
        let plan = plan_of(shape, fact, dim).with_uniform_uot(uot);
        let tracker = MemoryTracker::new();
        let pool = BlockPool::new(tracker.clone());
        let ctx = Arc::new(
            ExecContext::new(Arc::new(plan), pool, fmt, block_bytes, 4).unwrap(),
        );
        let config = SchedulerConfig {
            mode: if parallel {
                ExecMode::Parallel { workers }
            } else {
                ExecMode::Serial
            },
            default_uot: uot,
            ..Default::default()
        };
        let (blocks, metrics) = run(ctx, config).unwrap();
        // Result rows survive the teardown (blocks are still readable) ...
        let _rows: Vec<Vec<Value>> = blocks.iter().flat_map(|b| b.all_rows()).collect();
        prop_assert!(metrics.peak_temp_bytes > 0 || blocks.is_empty());
        // ... but their bytes left the temporary-memory accounting.
        prop_assert_eq!(
            tracker.current_bytes(),
            0,
            "shape={} uot={} fmt={:?} bytes={} parallel={}",
            shape, uot, fmt, block_bytes, parallel
        );
    }
}
