//! Leak-check proptests: after every *successful* run — across execution
//! modes, UoTs, block formats, block sizes and plan shapes —
//! `MemoryTracker::current_bytes()` returns to its pre-query baseline
//! (zero for a fresh tracker). Query teardown releases result-block bytes,
//! pooled free lists, hash tables and every staged/parked intermediate.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use uot_core::scheduler::{run, ExecMode};
use uot_core::state::ExecContext;
use uot_core::{
    CancellationToken, FaultKind, FaultPlan, FaultSite, Injection, JoinType, PlanBuilder,
    QueryPlan, SchedulerConfig, SortKey, Source, Uot,
};
use uot_expr::{cmp, col, lit, AggSpec, CmpOp, Predicate};
use uot_storage::{
    BlockFormat, BlockPool, DataType, MemoryTracker, Schema, SpillStore, Table, TableBuilder, Value,
};

/// Silence the default panic hook for *injected* panics only (they are
/// expected and contained); anything else still prints normally.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected"))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

fn arb_table(name: &'static str, max_rows: usize) -> impl Strategy<Value = Arc<Table>> {
    (
        proptest::collection::vec((0i32..25, -500i64..500), 1..max_rows),
        1usize..6,
    )
        .prop_map(move |(rows, rows_per_block)| {
            let schema = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)]);
            let mut tb = TableBuilder::new(
                name,
                schema.clone(),
                BlockFormat::Column,
                schema.tuple_width() * rows_per_block,
            );
            for (k, v) in &rows {
                tb.append(&[Value::I32(*k), Value::I64(*v)]).unwrap();
            }
            Arc::new(tb.finish())
        })
}

/// Three plan shapes hitting the three block-parking mechanisms: stream
/// staging + hash table (join/agg), sort-collected input, and the NLJ's
/// materialized inner side.
fn plan_of(shape: usize, fact: Arc<Table>, dim: Arc<Table>) -> QueryPlan {
    let mut pb = PlanBuilder::new();
    match shape {
        0 => {
            let b = pb
                .build_hash(Source::Table(dim), vec![0], vec![0, 1])
                .unwrap();
            let s = pb
                .filter(Source::Table(fact), cmp(col(0), CmpOp::Lt, lit(20i32)))
                .unwrap();
            let p = pb
                .probe(
                    Source::Op(s),
                    b,
                    vec![0],
                    vec![0, 1],
                    vec![1],
                    JoinType::Inner,
                )
                .unwrap();
            let a = pb
                .aggregate(
                    Source::Op(p),
                    vec![0],
                    vec![AggSpec::count_star(), AggSpec::sum(col(1))],
                    &["n", "sv"],
                )
                .unwrap();
            pb.build(a).unwrap()
        }
        1 => {
            let s = pb.filter(Source::Table(fact), Predicate::True).unwrap();
            let so = pb
                .sort(Source::Op(s), vec![SortKey::asc(0)], Some(16))
                .unwrap();
            pb.build(so).unwrap()
        }
        _ => {
            let inner = pb
                .filter(Source::Table(dim), cmp(col(0), CmpOp::Lt, lit(8i32)))
                .unwrap();
            let j = pb
                .nested_loops(
                    Source::Table(fact),
                    inner,
                    vec![(0, CmpOp::Eq, 0)],
                    vec![0],
                    vec![1],
                )
                .unwrap();
            pb.build(j).unwrap()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tracker_returns_to_baseline_after_success(
        fact in arb_table("leak_fact", 50),
        dim in arb_table("leak_dim", 15),
        shape in 0usize..3,
        uot in prop_oneof![
            Just(Uot::Blocks(1)),
            Just(Uot::Blocks(2)),
            Just(Uot::Blocks(5)),
            Just(Uot::Table)
        ],
        fmt in prop_oneof![Just(BlockFormat::Row), Just(BlockFormat::Column)],
        block_bytes in prop_oneof![Just(64usize), Just(128usize), Just(1024usize)],
        parallel in any::<bool>(),
        workers in 1usize..4,
    ) {
        let plan = plan_of(shape, fact, dim).with_uniform_uot(uot);
        let tracker = MemoryTracker::new();
        let pool = BlockPool::new(tracker.clone());
        let ctx = Arc::new(
            ExecContext::new(Arc::new(plan), pool, fmt, block_bytes, 4).unwrap(),
        );
        let config = SchedulerConfig {
            mode: if parallel {
                ExecMode::Parallel { workers }
            } else {
                ExecMode::Serial
            },
            default_uot: uot,
            ..Default::default()
        };
        let (blocks, metrics) = run(ctx, config).unwrap();
        // Result rows survive the teardown (blocks are still readable) ...
        let _rows: Vec<Vec<Value>> = blocks.iter().flat_map(|b| b.all_rows()).collect();
        prop_assert!(metrics.peak_temp_bytes > 0 || blocks.is_empty());
        // ... but their bytes left the temporary-memory accounting.
        prop_assert_eq!(
            tracker.current_bytes(),
            0,
            "shape={} uot={} fmt={:?} bytes={} parallel={}",
            shape, uot, fmt, block_bytes, parallel
        );
    }

    /// Spill-tier teardown: with the disk tier armed under a tight budget,
    /// every exit path — success, cancellation, deadline, a contained panic,
    /// an injected spill-write or spill-read failure — leaves the tracker at
    /// zero, no live spill files, and the temp directory itself deleted.
    #[test]
    fn spill_teardown_deletes_temp_files_and_drains_tracker(
        fact in arb_table("spill_leak_fact", 50),
        dim in arb_table("spill_leak_dim", 15),
        exit in 0usize..6,
        budget in prop_oneof![Just(600usize), Just(1200), Just(4096)],
        nth in 1usize..10,
        parallel in any::<bool>(),
    ) {
        quiet_injected_panics();
        let faults = match exit {
            3 => FaultPlan::new(vec![Injection {
                site: FaultSite::WorkOrderExec,
                kind: FaultKind::Panic,
                nth,
            }]),
            4 => FaultPlan::new(vec![Injection {
                site: FaultSite::SpillWrite,
                kind: FaultKind::Error,
                nth,
            }]),
            5 => FaultPlan::new(vec![Injection {
                site: FaultSite::SpillRead,
                kind: FaultKind::Error,
                nth,
            }]),
            _ => FaultPlan::empty(),
        };
        let faults = Arc::new(faults);

        let tracker = MemoryTracker::new();
        let pool = BlockPool::with_budget(tracker.clone(), budget);
        let store = SpillStore::new(None, tracker.clone()).unwrap();
        store.set_observer(uot_core::spill::EngineSpillHook::new(
            Some(faults.clone()),
            None,
            tracker.clone(),
        ));
        pool.enable_spill(store.clone());
        let spill_dir = store.dir().to_path_buf();

        let plan = plan_of(0, fact, dim).with_uniform_uot(Uot::Table);
        let mut ctx = ExecContext::new(Arc::new(plan), pool, BlockFormat::Row, 96, 1)
            .unwrap()
            .with_faults(faults);
        ctx.plan_grace(budget);
        let token = CancellationToken::new();
        if exit == 1 {
            token.cancel();
        }
        let ctx = Arc::new(ctx.with_cancellation(token));
        let config = SchedulerConfig {
            mode: if parallel {
                ExecMode::Parallel { workers: 2 }
            } else {
                ExecMode::Serial
            },
            default_uot: Uot::Table,
            deadline: (exit == 2).then_some(Duration::ZERO),
            ..Default::default()
        };

        // Any outcome is legal (a tight budget may fail even the no-fault
        // paths); the invariants under test are purely about teardown.
        let outcome = run(ctx, config);
        let blocks = outcome.ok().map(|(blocks, _)| blocks);
        drop(blocks);

        prop_assert_eq!(
            tracker.current_bytes(),
            0,
            "tracker leak: exit={} budget={} nth={} parallel={}",
            exit, budget, nth, parallel
        );
        prop_assert_eq!(
            store.live_files(),
            0,
            "orphaned spill files: exit={} budget={} nth={}",
            exit, budget, nth
        );
        // The scheduler and context are gone; ours is the last store handle,
        // and dropping it must remove the temp directory from disk.
        drop(store);
        prop_assert!(
            !spill_dir.exists(),
            "spill dir survived teardown: exit={} {:?}",
            exit, spill_dir
        );
    }
}
