//! Live service telemetry, end to end: a [`QueryService`] with the HTTP
//! introspection endpoint enabled serves real Prometheus text and a live
//! query table *while queries are in flight*, the always-on hub counters
//! reconcile with what was submitted, the watchdog flags deadline-threatened
//! queries, and `EXPLAIN ANALYZE` works through the service front door.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uot_core::{
    ExecOptions, FaultKind, FaultPlan, FaultSite, HubCounter, Injection, QueryService,
    ServiceConfig, TraceEventKind, Uot, WatchdogConfig,
};
use uot_storage::{BlockFormat, Catalog, DataType, Schema, TableBuilder, Value};

fn catalog() -> Arc<Catalog> {
    let c = Catalog::new();
    let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Float64)]);
    let mut tb = TableBuilder::new("fact", s, BlockFormat::Column, 2 * 1024);
    for i in 0..4000 {
        tb.append(&[Value::I32(i % 50), Value::F64(i as f64 * 0.5)])
            .unwrap();
    }
    c.register(tb.finish()).unwrap();
    c
}

const QUERY: &str = "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM fact GROUP BY k ORDER BY k";

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect to introspection endpoint");
    write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    let (head, body) = resp.split_once("\r\n\r\n").expect("full http response");
    (head.to_string(), body.to_string())
}

/// Every line of a Prometheus exposition is a comment or `name[{labels}] value`,
/// each family declares HELP and TYPE exactly once, and counter families end
/// in `_total`.
fn assert_prometheus_conformant(body: &str) {
    use std::collections::HashMap;
    let mut type_of: HashMap<&str, &str> = HashMap::new();
    let mut help_seen: HashMap<&str, usize> = HashMap::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, ty) = (it.next().unwrap(), it.next().unwrap());
            assert!(
                type_of.insert(name, ty).is_none(),
                "duplicate TYPE for {name}"
            );
            assert!(
                matches!(ty, "counter" | "gauge" | "histogram"),
                "unknown type {ty}"
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap();
            *help_seen.entry(name).or_insert(0) += 1;
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment form: {line}");
        // Sample line: name or name{labels}, then a float value.
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in: {line}"
        );
        assert!(value.parse::<f64>().is_ok(), "bad sample value: {line}");
    }
    for (name, count) in help_seen {
        assert_eq!(count, 1, "HELP repeated for {name}");
    }
    // Counter families use the _total suffix convention.
    for (name, ty) in type_of {
        if ty == "counter" {
            assert!(name.ends_with("_total"), "counter {name} missing _total");
        }
    }
}

#[test]
fn introspection_endpoint_serves_live_data_midflight() {
    let service = QueryService::start(ServiceConfig {
        workers: 2,
        catalog: catalog(),
        http_port: Some(0),
        ..Default::default()
    })
    .unwrap();
    let addr = service.http_addr().expect("endpoint bound");

    let (head, body) = get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");

    // Hold one query in flight with an injected work-order delay, then catch
    // it live on both routes.
    let faults = FaultPlan::new(vec![Injection {
        site: FaultSite::WorkOrderExec,
        kind: FaultKind::Delay(Duration::from_millis(400)),
        nth: 1,
    }]);
    let slow = service
        .submit_sql_with(
            QUERY,
            ExecOptions {
                faults: Some(Arc::new(faults)),
                ..Default::default()
            },
        )
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(5);
    let mut caught_live = false;
    while Instant::now() < deadline {
        let (_, queries) = get(addr, "/queries");
        if queries.contains("running") {
            let (_, metrics) = get(addr, "/metrics");
            let active = metrics
                .lines()
                .find_map(|l| l.strip_prefix("uot_service_active_queries "))
                .expect("active gauge present")
                .parse::<f64>()
                .unwrap();
            assert!(active >= 1.0, "query in flight but gauge says {active}");
            caught_live = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(caught_live, "never observed the delayed query on /queries");
    slow.wait().unwrap();

    // A burst of ordinary traffic, then reconcile the scraped counters.
    let handles: Vec<_> = (0..6).map(|_| service.submit_sql(QUERY).unwrap()).collect();
    for h in handles {
        h.wait().unwrap();
    }

    let (_, body) = get(addr, "/metrics");
    assert_prometheus_conformant(&body);
    let counter = |name: &str| -> f64 {
        body.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("{name} missing from /metrics"))
            .parse()
            .unwrap()
    };
    assert_eq!(counter("uot_hub_queries_submitted_total"), 7.0);
    assert_eq!(counter("uot_hub_queries_completed_total"), 7.0);
    assert_eq!(counter("uot_hub_queries_failed_total"), 0.0);
    assert!(counter("uot_hub_work_orders_total") > 0.0);
    assert!(counter("uot_hub_rows_produced_total") > 0.0);
    assert_eq!(counter("uot_service_active_queries"), 0.0);
    // The latency histogram saw exactly one observation per query.
    let hist_count = body
        .lines()
        .find_map(|l| l.strip_prefix("uot_hub_query_latency_us_count "))
        .expect("histogram count present")
        .parse::<f64>()
        .unwrap();
    assert_eq!(hist_count, 7.0);

    // The drained registry renders an empty live table.
    let (_, queries) = get(addr, "/queries");
    assert!(!queries.contains("running"), "{queries}");

    service.shutdown();
}

#[test]
fn watchdog_flags_deadline_threatened_queries() {
    let service = QueryService::start(ServiceConfig {
        workers: 1,
        catalog: catalog(),
        watchdog: WatchdogConfig {
            enabled: true,
            poll_interval: Duration::from_millis(5),
            // Effectively disable stall detection; this test pins the
            // deadline side.
            stall_timeout: Duration::from_secs(3600),
            deadline_fraction: 0.01,
        },
        ..Default::default()
    })
    .unwrap();

    // A generous deadline the query will comfortably meet, but whose 1%
    // threshold (20 ms) the injected 300 ms delay sails past — the watchdog
    // must flag it without the deadline enforcement cancelling it.
    let faults = FaultPlan::new(vec![Injection {
        site: FaultSite::WorkOrderExec,
        kind: FaultKind::Delay(Duration::from_millis(300)),
        nth: 1,
    }]);
    let result = service
        .submit_sql_with(
            QUERY,
            ExecOptions {
                deadline: Some(Duration::from_secs(2)),
                faults: Some(Arc::new(faults)),
                trace: true,
                ..Default::default()
            },
        )
        .unwrap()
        .wait()
        .expect("query completes despite the watchdog flag");

    assert_eq!(
        service.hub_snapshot().counter(HubCounter::WatchdogDeadline),
        1,
        "exactly one deadline flag for one threatened query"
    );
    let trace = result.trace.expect("tracing was requested");
    let flags = trace.count(|k| matches!(k, TraceEventKind::Watchdog { .. }));
    assert_eq!(flags, 1, "the flag is also a structured trace event");

    service.shutdown();
}

#[test]
fn watchdog_flags_stalled_edges() {
    let service = QueryService::start(ServiceConfig {
        workers: 1,
        catalog: catalog(),
        // Small temporaries: the select emits a block per work order, so the
        // edge really holds occupancy while the worker is frozen.
        block_bytes: 2 * 1024,
        watchdog: WatchdogConfig {
            enabled: true,
            poll_interval: Duration::from_millis(5),
            stall_timeout: Duration::from_millis(50),
            deadline_fraction: 0.8,
        },
        ..Default::default()
    })
    .unwrap();

    // A streaming select feeding a sort, with a huge UoT so the edge keeps
    // staging (never reaching the threshold), while the injected delay
    // freezes the single worker for 400 ms with blocks already held on the
    // edge. The watchdog must notice the untouched occupancy. (An aggregate
    // would not do: it is blocking, so its only block stages right before
    // the partial flush and there is no held-occupancy window.)
    let faults = FaultPlan::new(vec![Injection {
        site: FaultSite::WorkOrderExec,
        kind: FaultKind::Delay(Duration::from_millis(400)),
        nth: 4,
    }]);
    service
        .submit_sql_with(
            "SELECT k, v FROM fact WHERE k < 40 ORDER BY k",
            ExecOptions {
                uot: Some(Uot::Blocks(10_000)),
                // Keep the chain on the staged path: a fused pipeline has no
                // edge occupancy for the watchdog to watch.
                fusion: Some(uot_core::FusionPolicy::Never),
                faults: Some(Arc::new(faults)),
                ..Default::default()
            },
        )
        .unwrap()
        .wait()
        .unwrap();

    assert!(
        service
            .hub_snapshot()
            .counter(HubCounter::WatchdogStalledEdges)
            >= 1,
        "the frozen staged edge was never flagged"
    );

    service.shutdown();
}

#[test]
fn service_explain_analyze_returns_the_annotated_tree() {
    let service = QueryService::start(ServiceConfig {
        workers: 2,
        catalog: catalog(),
        ..Default::default()
    })
    .unwrap();

    let plain = service.submit_sql(QUERY).unwrap().wait().unwrap();
    let explained = service
        .submit_sql(&format!("explain analyze {QUERY}"))
        .unwrap()
        .wait()
        .unwrap();

    let ex = explained.explain.as_ref().expect("explain attached");
    assert_eq!(ex.result_rows, plain.metrics.result_rows);
    assert_eq!(explained.metrics.result_rows, plain.metrics.result_rows);

    // The visible rows are the annotated tree, one line per row.
    assert_eq!(explained.schema.len(), 1);
    let rows: usize = explained.blocks.iter().map(|b| b.num_rows()).sum();
    assert_eq!(rows, ex.render().lines().count());
    // And the plain run's rows are real data, not the rendering.
    assert!(plain.schema.len() > 1);

    service.shutdown();
}
