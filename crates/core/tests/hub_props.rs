//! Property and concurrency tests for the always-on [`MetricsHub`].
//!
//! The hub shards its counters and histogram buckets by thread to keep the
//! hot path contention-free; [`HubSnapshot`] folds the shards back together.
//! These tests pin the contract that makes that sharding invisible:
//!
//! 1. Recording any workload from any number of threads and then folding
//!    yields exactly the same histogram (count, sum, every bucket) as a
//!    serial [`HistogramSnapshot`] built with `record()` — the single-shard
//!    reference implementation.
//! 2. Snapshots taken *while* recorders are running never over-count and
//!    are monotone: the hub may miss in-flight increments but it never
//!    invents them, so a scraper always sees a consistent past.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use uot_core::obs::hub::{bucket_bounds, bucket_index, HIST_BUCKETS};
use uot_core::{HistogramSnapshot, HubCounter, HubHistogram, MetricsHub};

/// Values stay below 2^44 so a 512-element workload cannot overflow the
/// u64 `sum` accumulator; the range still exercises ~44 of the 63 octaves.
fn observation() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        0u64..16,                // the exact low buckets
        1u64..(1 << 20),         // mid octaves
        (1u64 << 20)..(1 << 44), // high octaves
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded recording + fold == serial reference, exactly.
    #[test]
    fn sharded_histogram_matches_serial_reference(
        values in proptest::collection::vec(observation(), 0..512),
        threads in 1usize..5,
    ) {
        let mut reference = HistogramSnapshot::empty();
        for &v in &values {
            reference.record(v);
        }

        let hub = MetricsHub::new();
        // Chunk the workload across real threads so the observations land in
        // different shards (shard choice hashes the thread id).
        std::thread::scope(|s| {
            for chunk in values.chunks(values.len().div_ceil(threads).max(1)) {
                let hub = &hub;
                s.spawn(move || {
                    for &v in chunk {
                        hub.record(HubHistogram::QueryLatencyUs, v);
                    }
                });
            }
        });

        let snap = hub.snapshot();
        let folded = snap.histogram(HubHistogram::QueryLatencyUs);
        prop_assert_eq!(folded.count, reference.count);
        prop_assert_eq!(folded.sum, reference.sum);
        prop_assert_eq!(&folded.buckets[..], &reference.buckets[..]);
    }

    /// Counter adds distribute over threads: the folded total is the serial
    /// sum no matter how the deltas are interleaved.
    #[test]
    fn sharded_counters_sum_exactly(
        deltas in proptest::collection::vec(0u64..(1 << 32), 0..256),
        threads in 1usize..5,
    ) {
        let expected: u64 = deltas.iter().sum();
        let hub = MetricsHub::new();
        std::thread::scope(|s| {
            for chunk in deltas.chunks(deltas.len().div_ceil(threads).max(1)) {
                let hub = &hub;
                s.spawn(move || {
                    for &d in chunk {
                        hub.add(HubCounter::TransferBytes, d);
                    }
                });
            }
        });
        prop_assert_eq!(hub.snapshot().counter(HubCounter::TransferBytes), expected);
    }

    /// Merging per-shard-style partial snapshots is associative with
    /// recording: split a workload arbitrarily, record each part into its
    /// own hub, merge the snapshots — same fold as one hub seeing it all.
    #[test]
    fn snapshot_merge_matches_single_hub(
        values in proptest::collection::vec(observation(), 0..256),
        split in 0usize..=256,
    ) {
        let cut = split.min(values.len());
        let whole = MetricsHub::new();
        let (a, b) = (MetricsHub::new(), MetricsHub::new());
        for (i, &v) in values.iter().enumerate() {
            whole.record(HubHistogram::SpillVolumeBytes, v);
            whole.add(HubCounter::SpillEvents, 1);
            let part = if i < cut { &a } else { &b };
            part.record(HubHistogram::SpillVolumeBytes, v);
            part.add(HubCounter::SpillEvents, 1);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let lone = whole.snapshot();
        prop_assert_eq!(merged.counter(HubCounter::SpillEvents), lone.counter(HubCounter::SpillEvents));
        let (m, l) = (
            merged.histogram(HubHistogram::SpillVolumeBytes),
            lone.histogram(HubHistogram::SpillVolumeBytes),
        );
        prop_assert_eq!(m.count, l.count);
        prop_assert_eq!(m.sum, l.sum);
        prop_assert_eq!(&m.buckets[..], &l.buckets[..]);
    }

    /// Every value lands in a bucket whose bounds contain it, and the
    /// bucket index is monotone in the value — the invariant the quantile
    /// estimator and the bench's same-bucket assertion both lean on.
    #[test]
    fn bucket_index_is_consistent_and_monotone(a in any::<u64>(), b in any::<u64>()) {
        for v in [a, b] {
            let i = bucket_index(v);
            prop_assert!(i < HIST_BUCKETS);
            let (lo, hi) = bucket_bounds(i);
            prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
        }
        if a <= b {
            prop_assert!(bucket_index(a) <= bucket_index(b));
        } else {
            prop_assert!(bucket_index(b) <= bucket_index(a));
        }
    }
}

/// Live scraping: snapshots racing with recorders never over-count, counts
/// are monotone across successive snapshots, and the post-join fold is
/// exact. This is the `/metrics` endpoint's consistency story.
#[test]
fn concurrent_snapshots_are_monotone_and_final_fold_is_exact() {
    const RECORDERS: u64 = 4;
    const PER_THREAD: u64 = 50_000;

    let hub = Arc::new(MetricsHub::new());
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let mut workers = Vec::new();
        for _ in 0..RECORDERS {
            let hub = hub.clone();
            workers.push(s.spawn(move || {
                for i in 0..PER_THREAD {
                    hub.add(HubCounter::WorkOrders, 1);
                    hub.record(HubHistogram::WorkOrderServiceUs, i % 4096);
                }
            }));
        }

        let scraper = {
            let (hub, done) = (hub.clone(), done.clone());
            s.spawn(move || {
                let cap = RECORDERS * PER_THREAD;
                let mut last_count = 0u64;
                let mut last_counter = 0u64;
                let mut scrapes = 0u64;
                while !done.load(Ordering::Acquire) {
                    let snap = hub.snapshot();
                    let c = snap.counter(HubCounter::WorkOrders);
                    assert!(
                        c >= last_counter,
                        "counter went backwards: {last_counter} -> {c}"
                    );
                    assert!(c <= cap, "counter over-counted: {c} > {cap}");
                    last_counter = c;

                    let h = snap.histogram(HubHistogram::WorkOrderServiceUs);
                    assert!(h.count >= last_count, "histogram count went backwards");
                    assert!(
                        h.count <= cap,
                        "histogram over-counted: {} > {cap}",
                        h.count
                    );
                    last_count = h.count;
                    // Each shard publishes buckets before bumping `count`
                    // and the fold reads `count` first, so the bucket total
                    // can only ever run ahead of the count — never behind.
                    let staged: u64 = h.buckets.iter().sum();
                    assert!(
                        staged >= h.count,
                        "bucket total {staged} fell behind count {}",
                        h.count
                    );
                    scrapes += 1;
                }
                scrapes
            })
        };

        for w in workers {
            w.join().expect("recorder thread panicked");
        }
        done.store(true, Ordering::Release);
        let scrapes = scraper.join().expect("scraper thread panicked");
        assert!(scrapes > 0, "scraper never ran");
    });

    let snap = hub.snapshot();
    let total = RECORDERS * PER_THREAD;
    assert_eq!(snap.counter(HubCounter::WorkOrders), total);
    let h = snap.histogram(HubHistogram::WorkOrderServiceUs);
    assert_eq!(h.count, total);
    let per_thread_sum: u64 = (0..PER_THREAD).map(|i| i % 4096).sum();
    assert_eq!(h.sum, RECORDERS * per_thread_sum);
    assert_eq!(h.buckets.iter().sum::<u64>(), total);
    // Spot-check placement: every observation was < 4096, so nothing may
    // sit above bucket_index(4095).
    let top = bucket_index(4095);
    assert!(h.buckets[top + 1..].iter().all(|&b| b == 0));
}
