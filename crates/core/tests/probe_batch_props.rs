//! Property tests for the vectorized key pipeline: the batched probe path
//! (KeyExtractor → batch hash → prefetched ProbeSession → gather assembly)
//! must be indistinguishable from the retained row-at-a-time scalar path.
//!
//! Randomized build/probe tables (both block formats, single-`Int32`,
//! composite-fixed, and wide-`Var` key shapes, duplicate and absent keys) are
//! joined under inner/semi/anti semantics through both implementations, and
//! the sorted outputs must match exactly. A second property drives the whole
//! engine across UoTs and temporary formats and checks the batched pipeline
//! never changes query answers.

use proptest::prelude::*;
use std::sync::Arc;
use uot_core::ops::{build, probe};
use uot_core::state::ExecContext;
use uot_core::{Engine, EngineConfig, JoinType, PlanBuilder, QueryPlan, Source, Uot};
use uot_storage::{
    BlockFormat, BlockPool, DataType, MemoryTracker, Schema, Table, TableBuilder, Value,
};

/// Which key-column set to join on — exercises all three extractor shapes.
#[derive(Debug, Clone, Copy)]
enum KeyShape {
    /// Single `Int32` column (the extractor's packed fast path).
    I32,
    /// `(Int32, Char(4))` composite, 8 encoded bytes (fixed-width packing).
    Composite,
    /// Single `Char(20)`, 20 encoded bytes (wide `Var` fallback).
    Wide,
}

impl KeyShape {
    fn cols(self) -> Vec<usize> {
        match self {
            KeyShape::I32 => vec![0],
            KeyShape::Composite => vec![0, 1],
            KeyShape::Wide => vec![2],
        }
    }
}

#[derive(Debug, Clone)]
struct JoinCase {
    /// Build-side keys (domain 0..12, so duplicates are common).
    build_keys: Vec<i32>,
    /// Probe-side keys (domain 0..20, so some keys are absent from build).
    probe_keys: Vec<i32>,
    key_shape: KeyShape,
    build_format: BlockFormat,
    probe_format: BlockFormat,
    rows_per_block: usize,
}

fn arb_case() -> impl Strategy<Value = JoinCase> {
    let fmt = prop_oneof![Just(BlockFormat::Row), Just(BlockFormat::Column)];
    (
        proptest::collection::vec(0i32..12, 0..80),
        proptest::collection::vec(0i32..20, 0..120),
        prop_oneof![
            Just(KeyShape::I32),
            Just(KeyShape::Composite),
            Just(KeyShape::Wide)
        ],
        fmt.clone(),
        fmt,
        prop_oneof![Just(3usize), Just(7), Just(32)],
    )
        .prop_map(
            |(build_keys, probe_keys, key_shape, build_format, probe_format, rows_per_block)| {
                JoinCase {
                    build_keys,
                    probe_keys,
                    key_shape,
                    build_format,
                    probe_format,
                    rows_per_block,
                }
            },
        )
}

/// All key columns derive deterministically from `k`, so key equality across
/// the two paths is purely about the pipeline, not data generation.
fn key_table(name: &str, keys: &[i32], format: BlockFormat, rows_per_block: usize) -> Arc<Table> {
    let s = Schema::from_pairs(&[
        ("k", DataType::Int32),
        ("tag", DataType::Char(4)),
        ("wide", DataType::Char(20)),
        ("v", DataType::Int32),
    ]);
    let tuple = s.tuple_width();
    let mut tb = TableBuilder::new(name, s, format, rows_per_block * tuple);
    for (i, &k) in keys.iter().enumerate() {
        tb.append(&[
            Value::I32(k),
            Value::Str(format!("t{}", k % 5)),
            Value::Str(format!("wide-key-{k:08}")),
            Value::I32(i as i32),
        ])
        .unwrap();
    }
    Arc::new(tb.finish())
}

fn join_plan(case: &JoinCase, join: JoinType) -> (QueryPlan, usize, usize) {
    let dim = key_table(
        "dim",
        &case.build_keys,
        case.build_format,
        case.rows_per_block,
    );
    let fact = key_table(
        "fact",
        &case.probe_keys,
        case.probe_format,
        case.rows_per_block,
    );
    let key_cols = case.key_shape.cols();
    let mut pb = PlanBuilder::new();
    let b = pb
        .build_hash(Source::Table(dim), key_cols.clone(), vec![3, 0])
        .unwrap();
    let build_out = if matches!(join, JoinType::Inner) {
        vec![0, 1]
    } else {
        vec![]
    };
    let p = pb
        .probe(
            Source::Table(fact),
            b,
            key_cols,
            vec![0, 3],
            build_out,
            join,
        )
        .unwrap();
    (pb.build(p).unwrap(), b, p)
}

/// Drive build + probe work orders by hand through either probe
/// implementation and return the sorted output rows.
fn run_probe_path(plan: &Arc<QueryPlan>, b: usize, p: usize, scalar: bool) -> Vec<Vec<Value>> {
    let pool = BlockPool::new(MemoryTracker::new());
    let ctx = ExecContext::new(plan.clone(), pool, BlockFormat::Row, 1 << 12, 4).unwrap();
    let (dim, fact) = match (
        plan.op(b).kind.stream_source(),
        plan.op(p).kind.stream_source(),
    ) {
        (Source::Table(d), Source::Table(f)) => (d.clone(), f.clone()),
        _ => unreachable!("plans here stream from tables"),
    };
    for blk in dim.blocks() {
        build::execute(&ctx, b, &blk.clone()).unwrap();
    }
    let mut rows = Vec::new();
    for blk in fact.blocks() {
        let out = if scalar {
            probe::execute_scalar(&ctx, p, &blk.clone()).unwrap()
        } else {
            probe::execute(&ctx, p, &blk.clone()).unwrap()
        };
        for o in out {
            rows.extend(o.all_rows());
        }
    }
    for o in ctx.output(p).flush() {
        rows.extend(o.all_rows());
    }
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched and scalar probes agree row-for-row for every join type.
    #[test]
    fn batched_probe_matches_scalar_reference(case in arb_case()) {
        for join in [JoinType::Inner, JoinType::Semi, JoinType::Anti] {
            let (plan, b, p) = join_plan(&case, join);
            let plan = Arc::new(plan);
            let batched = run_probe_path(&plan, b, p, false);
            let scalar = run_probe_path(&plan, b, p, true);
            prop_assert_eq!(
                &batched, &scalar,
                "join {:?} shape {:?} formats {:?}/{:?}",
                join, case.key_shape, case.build_format, case.probe_format
            );
            // Cross-check the expected row count directly from the key
            // multisets so the property can't pass vacuously.
            let expected = match join {
                JoinType::Inner => case.probe_keys.iter().map(|pk| {
                    case.build_keys.iter().filter(|bk| *bk == pk).count()
                }).sum::<usize>(),
                JoinType::Semi => case.probe_keys.iter()
                    .filter(|pk| case.build_keys.contains(pk)).count(),
                JoinType::Anti => case.probe_keys.iter()
                    .filter(|pk| !case.build_keys.contains(pk)).count(),
            };
            prop_assert_eq!(batched.len(), expected, "count for {:?}", join);
        }
    }

    /// The batched pipeline is invisible at the engine level: answers are
    /// identical across execution modes, UoTs, and temporary formats.
    #[test]
    fn engine_results_invariant_with_batched_pipeline(case in arb_case()) {
        let (plan, _, _) = join_plan(&case, JoinType::Inner);
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for uot in [Uot::Blocks(1), Uot::Blocks(3), Uot::Table] {
            for temp_format in [BlockFormat::Row, BlockFormat::Column] {
                let cfg = EngineConfig {
                    default_uot: uot,
                    temp_format,
                    ..EngineConfig::serial()
                }
                .with_block_bytes(256);
                let result = Engine::new(cfg).execute(plan.clone()).unwrap();
                let rows = result.sorted_rows();
                match &reference {
                    None => reference = Some(rows),
                    Some(r) => prop_assert_eq!(&rows, r, "under {} {:?}", uot, temp_format),
                }
            }
        }
    }
}
