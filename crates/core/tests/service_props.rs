//! Cross-query isolation proptests for the multi-query [`QueryService`]:
//!
//! 1. A query's results and its schedule-deterministic metrics (per-operator
//!    work-order counts and produced rows, result rows) are identical when
//!    it runs alone vs alongside noisy neighbors — including a sibling with
//!    injected faults and a sibling cancelled mid-run.
//! 2. The shared pool tracker returns to exactly 0 after all queries drain,
//!    on every teardown path (success, fault, cancellation).
//!
//! Timing-dependent metrics (wall time, task durations, peak bytes, pool
//! counters) are legitimately perturbed by contention and are not compared.

use proptest::prelude::*;
use std::sync::Arc;
use uot_core::{
    EngineError, ExecOptions, FaultKind, FaultPlan, FaultSite, FusionPolicy, Injection, JoinType,
    PlanBuilder, QueryPlan, QueryService, ServiceConfig, Source, Uot,
};
use uot_expr::{cmp, col, lit, AggSpec, CmpOp};
use uot_storage::{BlockFormat, DataType, Schema, Table, TableBuilder, Value};

/// Silence the default panic hook for *injected* panics only (they are
/// expected and contained); anything else still prints normally.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected"))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

fn arb_table(name: &'static str, max_rows: usize) -> impl Strategy<Value = Arc<Table>> {
    (
        proptest::collection::vec((0i32..25, -500i64..500), 1..max_rows),
        1usize..6,
    )
        .prop_map(move |(rows, rows_per_block)| {
            let schema = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)]);
            let mut tb = TableBuilder::new(
                name,
                schema.clone(),
                BlockFormat::Column,
                schema.tuple_width() * rows_per_block,
            );
            for (k, v) in &rows {
                tb.append(&[Value::I32(*k), Value::I64(*v)]).unwrap();
            }
            Arc::new(tb.finish())
        })
}

/// select(fact) -> probe(dim) -> aggregate: stream transfers, a hash table,
/// staged edges and an output-emitting finalize.
fn join_agg_plan(fact: &Arc<Table>, dim: &Arc<Table>) -> QueryPlan {
    let mut pb = PlanBuilder::new();
    let b = pb
        .build_hash(Source::Table(dim.clone()), vec![0], vec![0, 1])
        .unwrap();
    let s = pb
        .filter(
            Source::Table(fact.clone()),
            cmp(col(0), CmpOp::Lt, lit(20i32)),
        )
        .unwrap();
    let p = pb
        .probe(
            Source::Op(s),
            b,
            vec![0],
            vec![0, 1],
            vec![1],
            JoinType::Inner,
        )
        .unwrap();
    let a = pb
        .aggregate(
            Source::Op(p),
            vec![0],
            vec![AggSpec::count_star(), AggSpec::sum(col(1))],
            &["n", "sv"],
        )
        .unwrap();
    pb.build(a).unwrap()
}

/// The comparison basis: everything about an execution that must not depend
/// on what else the service is running.
#[derive(Debug, PartialEq)]
struct Deterministic {
    sorted_rows: Vec<Vec<Value>>,
    per_op: Vec<(String, usize, usize)>, // (name, work_orders, produced_rows)
    result_rows: usize,
}

fn deterministic_view(result: &uot_core::QueryResult) -> Deterministic {
    Deterministic {
        sorted_rows: result.sorted_rows(),
        per_op: result
            .metrics
            .ops
            .iter()
            .map(|o| (o.name.clone(), o.work_orders, o.produced_rows))
            .collect(),
        result_rows: result.metrics.result_rows,
    }
}

fn service() -> QueryService {
    QueryService::start(ServiceConfig {
        workers: 2,
        memory_budget: 64 << 20,
        default_reservation: 4 << 20,
        block_bytes: 128,
        ..Default::default()
    })
    .expect("service starts")
}

/// A fixed (non-proptest) table for the deterministic regression tests.
fn fixed_table(name: &'static str, n: i32) -> Arc<Table> {
    let schema = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)]);
    let mut tb = TableBuilder::new(
        name,
        schema.clone(),
        BlockFormat::Column,
        schema.tuple_width() * 4,
    );
    for i in 0..n {
        tb.append(&[Value::I32(i % 25), Value::I64(i as i64)])
            .unwrap();
    }
    Arc::new(tb.finish())
}

/// Regression: a budget error surfacing from the *transfer-flush* path (the
/// scheduler flushing a staged edge) must carry the same operator, query and
/// occupancy attribution as one raised on the operator allocation path, so
/// diagnostics never need to care where the failure surfaced.
#[test]
fn transfer_flush_budget_error_carries_full_attribution() {
    let fact = fixed_table("tf_fact", 60);
    let dim = fixed_table("tf_dim", 10);
    let svc = service();
    let faults = Arc::new(FaultPlan::new(vec![Injection {
        site: FaultSite::TransferFlush,
        kind: FaultKind::Error,
        nth: 1,
    }]));
    let handle = svc
        .submit_with(
            join_agg_plan(&fact, &dim),
            ExecOptions::default()
                .with_uot(Uot::Table)
                // Fusion off: a fused select->probe chain bypasses the
                // staged edge, and the flush site would never fire.
                .with_fusion(FusionPolicy::Never)
                .with_faults(faults),
        )
        .unwrap();
    let id = handle.id();
    match handle.wait().unwrap_err() {
        EngineError::BudgetExceeded {
            op,
            query,
            requested,
            budget,
            global_budget,
            ..
        } => {
            assert!(!op.is_empty(), "flush failure must name the flushing op");
            assert_eq!(query, id, "flush failure must name the query");
            assert_eq!(requested, 0, "injected-fault convention");
            assert_eq!(budget, 4 << 20, "per-query reservation");
            assert_eq!(global_budget, 64 << 20, "service-wide budget");
        }
        other => panic!("expected BudgetExceeded from transfer flush, got {other}"),
    }
    assert_eq!(svc.memory_in_use(), 0, "failed flush must not leak");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn query_is_isolated_from_noisy_siblings(
        fact in arb_table("iso_fact", 40),
        dim in arb_table("iso_dim", 15),
        noise_fact in arb_table("noise_fact", 60),
        noise_dim in arb_table("noise_dim", 15),
        uot in prop_oneof![Just(Uot::Blocks(1)), Just(Uot::Blocks(3)), Just(Uot::Table)],
        fault_kind in 0usize..2,
        nth in 1usize..10,
    ) {
        quiet_injected_panics();
        let plan = join_agg_plan(&fact, &dim);
        let opts = ExecOptions::default().with_uot(uot);
        let svc = service();

        // Baseline: the query alone on an otherwise idle service.
        let baseline = svc
            .submit_with(plan.clone(), opts.clone())
            .unwrap()
            .wait()
            .unwrap();
        let baseline_view = deterministic_view(&baseline);
        prop_assert_eq!(svc.memory_in_use(), 0, "baseline teardown leaked");

        // The same query alongside three noisy neighbors: a plain sibling,
        // a sibling with an injected fault, and a sibling cancelled mid-run.
        let kind = if fault_kind == 0 { FaultKind::Panic } else { FaultKind::Error };
        let faults = Arc::new(FaultPlan::new(vec![Injection {
            site: FaultSite::WorkOrderExec,
            kind,
            nth,
        }]));
        let victim = svc.submit_with(plan.clone(), opts.clone()).unwrap();
        let noisy = svc
            .submit_with(join_agg_plan(&noise_fact, &noise_dim), opts.clone())
            .unwrap();
        let faulted = svc
            .submit_with(
                join_agg_plan(&noise_fact, &noise_dim),
                opts.clone().with_faults(faults),
            )
            .unwrap();
        let cancelled = svc
            .submit_with(join_agg_plan(&noise_fact, &noise_dim), opts)
            .unwrap();
        cancelled.cancel();

        let contended = victim.wait().unwrap();
        // Drain the neighbors: any outcome is legal for them — the noisy one
        // succeeds, the faulted one fails or survives (nth past its schedule),
        // the cancelled one is cancelled or finished the race.
        let _ = noisy.wait().unwrap();
        match faulted.wait() {
            Ok(_) => {}
            Err(
                EngineError::WorkOrderPanic { .. }
                | EngineError::BudgetExceeded { .. }
                | EngineError::Internal(_)
                | EngineError::Storage(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected fault shape: {other}"),
        }
        match cancelled.wait() {
            Ok(_) | Err(EngineError::Cancelled { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected cancel outcome: {other}"),
        }

        // Byte-identical results and schedule-deterministic metrics.
        prop_assert_eq!(deterministic_view(&contended), baseline_view);
        // Invariant 2: every teardown path drained its temporary memory.
        prop_assert_eq!(
            svc.memory_in_use(),
            0,
            "pool tracker nonzero after all queries drained (uot={})",
            uot
        );
    }
}
