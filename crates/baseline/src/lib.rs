//! # uot-baseline
//!
//! A MonetDB-style **operator-at-a-time** engine: the Fig. 11 comparator.
//!
//! MonetDB's relevant property in the paper's UoT framing is its data
//! transfer mechanism: every operator materializes its *entire* output
//! (full column vectors, "BATs") before the next operator starts — the
//! maximal UoT with no block streaming and no inter-operator overlap. This
//! engine interprets the **same physical plans** as `uot-core` (so the
//! comparison isolates the execution model, not the plan), but:
//!
//! * each operator's input and output is one fully materialized columnar
//!   table (a single giant column block), not a stream of fixed-size blocks;
//! * operators run strictly one at a time, in plan order;
//! * there is no work-order parallelism (classic un-mitosed MonetDB plans).
//!
//! Differences in absolute numbers vs. the real MonetDB are expected and
//! documented in DESIGN.md; what the experiment needs is the behavior of the
//! *transfer mechanism*.

pub mod engine;

pub use engine::{BaselineEngine, BaselineMetrics, BaselineResult};
