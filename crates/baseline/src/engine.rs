//! The operator-at-a-time interpreter.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use uot_core::hash_table::JoinHashTable;
use uot_core::ops::builders::{into_virtual_block, make_builders};
use uot_core::plan::{JoinType, OperatorKind, QueryPlan, SortKey, Source};
use uot_core::{EngineError, Result};
use uot_expr::{gather_from, AggSpec, CmpOp};
use uot_storage::{
    hash_key::FxBuildHasher, ColumnBlock, ColumnData, DataType, HashKey, StorageBlock, Value,
};

/// Per-operator and whole-query measurements.
#[derive(Debug, Clone, Default)]
pub struct BaselineMetrics {
    /// `(operator name, wall time, output rows)` in execution order.
    pub per_op: Vec<(String, Duration, usize)>,
    /// End-to-end wall time.
    pub wall_time: Duration,
    /// Peak bytes of live materialized intermediates + hash tables.
    pub peak_bytes: usize,
}

/// A materialized query result.
#[derive(Debug)]
pub struct BaselineResult {
    /// The result table (single columnar block).
    pub result: StorageBlock,
    /// Measurements.
    pub metrics: BaselineMetrics,
}

impl BaselineResult {
    /// Rows in canonical order (for comparisons with the UoT engine).
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.result.all_rows();
        rows.sort_by(|a, b| cmp_rows(a, b));
        rows
    }

    /// Rows in result order.
    pub fn rows(&self) -> Vec<Vec<Value>> {
        self.result.all_rows()
    }
}

fn cmp_rows(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let o = x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal);
        if o != std::cmp::Ordering::Equal {
            return o;
        }
    }
    std::cmp::Ordering::Equal
}

/// What an executed operator leaves behind.
enum Materialized {
    Table(Arc<StorageBlock>),
    Hash(Arc<JoinHashTable>),
}

impl Materialized {
    fn bytes(&self) -> usize {
        match self {
            Materialized::Table(b) => b.num_rows() * b.schema().tuple_width(),
            Materialized::Hash(h) => h.memory_bytes(),
        }
    }

    fn table(&self) -> Result<&Arc<StorageBlock>> {
        match self {
            Materialized::Table(b) => Ok(b),
            Materialized::Hash(_) => Err(EngineError::Internal(
                "expected a materialized table, found a hash table".into(),
            )),
        }
    }

    fn hash(&self) -> Result<&Arc<JoinHashTable>> {
        match self {
            Materialized::Hash(h) => Ok(h),
            Materialized::Table(_) => Err(EngineError::Internal(
                "expected a hash table, found a table".into(),
            )),
        }
    }
}

/// The operator-at-a-time engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct BaselineEngine;

impl BaselineEngine {
    /// New engine (no knobs: the execution model *is* the configuration).
    pub fn new() -> Self {
        BaselineEngine
    }

    /// Execute `plan`, one operator at a time.
    pub fn execute(&self, plan: &QueryPlan) -> Result<BaselineResult> {
        let start = Instant::now();
        let mut metrics = BaselineMetrics::default();
        let mut outputs: Vec<Option<Materialized>> = (0..plan.len()).map(|_| None).collect();
        let mut live_bytes = 0usize;

        for id in 0..plan.len() {
            let t0 = Instant::now();
            let out = self.run_op(plan, id, &outputs)?;
            let rows = match &out {
                Materialized::Table(b) => b.num_rows(),
                Materialized::Hash(h) => h.len(),
            };
            live_bytes += out.bytes();
            metrics.peak_bytes = metrics.peak_bytes.max(live_bytes);
            metrics
                .per_op
                .push((plan.op(id).name.clone(), t0.elapsed(), rows));
            outputs[id] = Some(out);
            // Operator-at-a-time: inputs whose only consumer just ran can be
            // released (MonetDB drops consumed BATs the same way).
            for dep in self.inputs_of(plan, id) {
                if plan.consumer_of(dep) == Some(id) {
                    if let Some(m) = outputs[dep].take() {
                        live_bytes -= m.bytes();
                    }
                }
            }
        }

        let sink = outputs[plan.sink()]
            .take()
            .ok_or_else(|| EngineError::Internal("sink produced nothing".into()))?;
        let result = match sink {
            Materialized::Table(b) => Arc::try_unwrap(b).unwrap_or_else(|arc| (*arc).clone()),
            Materialized::Hash(_) => {
                return Err(EngineError::Internal("sink was a hash table".into()))
            }
        };
        metrics.wall_time = start.elapsed();
        Ok(BaselineResult { result, metrics })
    }

    fn inputs_of(&self, plan: &QueryPlan, id: usize) -> Vec<usize> {
        let mut v = Vec::new();
        if let Source::Op(src) = plan.op(id).kind.stream_source() {
            v.push(*src);
        }
        v.extend(plan.op(id).kind.blocking_deps());
        v
    }

    /// Materialize a source as one giant columnar block.
    fn materialize(
        &self,
        _plan: &QueryPlan,
        src: &Source,
        outputs: &[Option<Materialized>],
    ) -> Result<Arc<StorageBlock>> {
        match src {
            Source::Op(id) => outputs[*id]
                .as_ref()
                .ok_or_else(|| EngineError::Internal(format!("operator {id} not yet run")))?
                .table()
                .cloned(),
            Source::Table(t) => {
                let schema = t.schema().clone();
                let n = t.num_rows();
                let mut cols = Vec::with_capacity(schema.len());
                for c in 0..schema.len() {
                    let mut parts: Vec<ColumnData> = Vec::with_capacity(t.num_blocks());
                    for b in t.blocks() {
                        parts.push(uot_expr::gather_all(b, c).map_err(EngineError::from)?);
                    }
                    cols.push(concat_columns(parts, schema.dtype(c)));
                }
                Ok(Arc::new(StorageBlock::Column(ColumnBlock::from_columns(
                    schema, cols, n,
                )?)))
            }
        }
    }

    fn run_op(
        &self,
        plan: &QueryPlan,
        id: usize,
        outputs: &[Option<Materialized>],
    ) -> Result<Materialized> {
        let op = plan.op(id);
        match &op.kind {
            OperatorKind::Select {
                source,
                predicate,
                projections,
                // The baseline ignores LIP: operator-at-a-time execution
                // materializes everything regardless, and the downstream
                // joins drop the same rows, so results are identical.
                lip: _,
            } => {
                let input = self.materialize(plan, source, outputs)?;
                let bm = predicate.eval(&input).map_err(EngineError::from)?;
                let rows: Vec<usize> = bm.iter_ones().collect();
                let cols: Vec<ColumnData> = projections
                    .iter()
                    .map(|p| p.eval_gather(&input, &rows))
                    .collect::<std::result::Result<_, _>>()
                    .map_err(EngineError::from)?;
                Ok(Materialized::Table(Arc::new(StorageBlock::Column(
                    ColumnBlock::from_columns(op.out_schema.clone(), cols, rows.len())?,
                ))))
            }
            OperatorKind::BuildHash {
                source,
                key_cols,
                payload_cols,
            } => {
                let input = self.materialize(plan, source, outputs)?;
                let ht = JoinHashTable::new(op.out_schema.clone(), 1);
                ht.insert_block(&input, key_cols, payload_cols)?;
                Ok(Materialized::Hash(Arc::new(ht)))
            }
            OperatorKind::Probe {
                probe,
                build,
                probe_key_cols,
                probe_out_cols,
                build_out_cols,
                join,
            } => {
                let input = self.materialize(plan, probe, outputs)?;
                let ht = outputs[*build]
                    .as_ref()
                    .ok_or_else(|| EngineError::Internal("build not yet run".into()))?
                    .hash()?
                    .clone();
                let mut builders = make_builders(&op.out_schema);
                let n_probe = probe_out_cols.len();
                for row in 0..input.num_rows() {
                    let key = HashKey::from_row(&input, row, probe_key_cols);
                    match join {
                        JoinType::Inner => {
                            ht.probe_key(&key, |payload| {
                                for (j, &c) in probe_out_cols.iter().enumerate() {
                                    builders[j].push_from_block(&input, row, c);
                                }
                                for (j, &c) in build_out_cols.iter().enumerate() {
                                    builders[n_probe + j].push_from_payload(payload, c);
                                }
                            });
                        }
                        JoinType::Semi => {
                            if ht.contains_key(&key) {
                                for (j, &c) in probe_out_cols.iter().enumerate() {
                                    builders[j].push_from_block(&input, row, c);
                                }
                            }
                        }
                        JoinType::Anti => {
                            if !ht.contains_key(&key) {
                                for (j, &c) in probe_out_cols.iter().enumerate() {
                                    builders[j].push_from_block(&input, row, c);
                                }
                            }
                        }
                    }
                }
                Ok(Materialized::Table(Arc::new(into_virtual_block(
                    op.out_schema.clone(),
                    builders,
                )?)))
            }
            OperatorKind::Aggregate {
                source,
                group_by,
                aggs,
            } => {
                let input = self.materialize(plan, source, outputs)?;
                let rows = self.aggregate(&input, group_by, aggs)?;
                self.rows_to_table(op.out_schema.clone(), rows)
            }
            OperatorKind::Sort {
                source,
                keys,
                limit,
            } => {
                let input = self.materialize(plan, source, outputs)?;
                let mut rows = input.all_rows();
                rows.sort_by(|a, b| cmp_sort(a, b, keys));
                if let Some(n) = limit {
                    rows.truncate(*n);
                }
                self.rows_to_table(op.out_schema.clone(), rows)
            }
            OperatorKind::NestedLoops {
                left,
                right,
                conds,
                left_out,
                right_out,
            } => {
                let l = self.materialize(plan, left, outputs)?;
                let r = outputs[*right]
                    .as_ref()
                    .ok_or_else(|| EngineError::Internal("inner side not yet run".into()))?
                    .table()?
                    .clone();
                let mut builders = make_builders(&op.out_schema);
                let nl = left_out.len();
                for i in 0..l.num_rows() {
                    for j in 0..r.num_rows() {
                        if conds
                            .iter()
                            .all(|&(lc, cmp, rc)| cmp_fields(&l, i, lc, &r, j, rc, cmp))
                        {
                            for (k, &c) in left_out.iter().enumerate() {
                                builders[k].push_from_block(&l, i, c);
                            }
                            for (k, &c) in right_out.iter().enumerate() {
                                builders[nl + k].push_from_block(&r, j, c);
                            }
                        }
                    }
                }
                Ok(Materialized::Table(Arc::new(into_virtual_block(
                    op.out_schema.clone(),
                    builders,
                )?)))
            }
            OperatorKind::Limit { source, n } => {
                let input = self.materialize(plan, source, outputs)?;
                let take = (*n).min(input.num_rows());
                let rows: Vec<usize> = (0..take).collect();
                let cols: Vec<ColumnData> = (0..op.out_schema.len())
                    .map(|c| uot_expr::gather_column(&input, c, &rows))
                    .collect::<std::result::Result<_, _>>()
                    .map_err(EngineError::from)?;
                Ok(Materialized::Table(Arc::new(StorageBlock::Column(
                    ColumnBlock::from_columns(op.out_schema.clone(), cols, take)?,
                ))))
            }
        }
    }

    fn aggregate(
        &self,
        input: &StorageBlock,
        group_by: &[usize],
        aggs: &[AggSpec],
    ) -> Result<Vec<Vec<Value>>> {
        let schema = input.schema().clone();
        let arg_cols: Vec<Option<ColumnData>> = aggs
            .iter()
            .map(|a| {
                a.arg
                    .as_ref()
                    .map(|e| e.eval_all(input))
                    .transpose()
                    .map_err(EngineError::from)
            })
            .collect::<Result<_>>()?;
        let mut groups: HashMap<HashKey, (Vec<Value>, Vec<uot_expr::AggState>), FxBuildHasher> =
            HashMap::default();
        let mut rows_by_group: HashMap<HashKey, Vec<usize>, FxBuildHasher> = HashMap::default();
        let n = input.num_rows();
        if group_by.is_empty() {
            rows_by_group.insert(HashKey::from_i64(0), (0..n).collect());
        } else {
            for row in 0..n {
                let key = HashKey::from_row(input, row, group_by);
                rows_by_group.entry(key).or_default().push(row);
            }
        }
        if rows_by_group.is_empty() && group_by.is_empty() {
            rows_by_group.insert(HashKey::from_i64(0), Vec::new());
        }
        for (key, rows) in rows_by_group {
            let group_vals: Vec<Value> = group_by
                .iter()
                .map(|&g| input.value_at(rows[0], g).expect("in bounds"))
                .collect::<Vec<_>>();
            let mut states: Vec<uot_expr::AggState> = aggs
                .iter()
                .map(|a| a.init_state(&schema).expect("validated"))
                .collect();
            for ((state, spec), arg) in states.iter_mut().zip(aggs).zip(&arg_cols) {
                match (spec.func, arg) {
                    (uot_expr::AggFunc::CountStar, _) => state.update_count(rows.len()),
                    (_, Some(col)) => state
                        .update_column(&gather_from(col, &rows))
                        .map_err(EngineError::from)?,
                    (_, None) => return Err(EngineError::Internal("aggregate without arg".into())),
                }
            }
            groups.insert(key, (group_vals, states));
        }
        let mut rows: Vec<Vec<Value>> = groups
            .into_values()
            .map(|(mut g, states)| {
                g.extend(states.iter().map(|s| s.finalize()));
                g
            })
            .collect();
        rows.sort_by(|a, b| cmp_rows(a, b));
        Ok(rows)
    }

    fn rows_to_table(
        &self,
        schema: Arc<uot_storage::Schema>,
        rows: Vec<Vec<Value>>,
    ) -> Result<Materialized> {
        let n = rows.len();
        let mut block = ColumnBlock::new(schema.clone(), (n.max(1)) * schema.tuple_width())?;
        for r in &rows {
            block.append_row(r)?;
        }
        Ok(Materialized::Table(Arc::new(StorageBlock::Column(block))))
    }
}

/// Scalar-aggregate edge case: zero input rows still need the group-values
/// lookup to be skipped. Handled by construction above (`rows[0]` is only
/// touched when `group_by` is non-empty, which implies rows exist).
fn cmp_sort(a: &[Value], b: &[Value], keys: &[SortKey]) -> std::cmp::Ordering {
    for k in keys {
        let o = a[k.col]
            .partial_cmp(&b[k.col])
            .unwrap_or(std::cmp::Ordering::Equal);
        let o = if k.desc { o.reverse() } else { o };
        if o != std::cmp::Ordering::Equal {
            return o;
        }
    }
    cmp_rows(a, b)
}

fn cmp_fields(
    l: &StorageBlock,
    i: usize,
    lc: usize,
    r: &StorageBlock,
    j: usize,
    rc: usize,
    op: CmpOp,
) -> bool {
    use std::cmp::Ordering;
    let ord = match (l.schema().dtype(lc), r.schema().dtype(rc)) {
        (DataType::Int32, DataType::Int32) => l.i32_at(i, lc).cmp(&r.i32_at(j, rc)),
        (DataType::Int64, DataType::Int64) => l.i64_at(i, lc).cmp(&r.i64_at(j, rc)),
        (DataType::Date, DataType::Date) => l.date_at(i, lc).cmp(&r.date_at(j, rc)),
        (DataType::Float64, DataType::Float64) => l
            .f64_at(i, lc)
            .partial_cmp(&r.f64_at(j, rc))
            .unwrap_or(Ordering::Equal),
        (DataType::Char(_), DataType::Char(_)) => l.char_at(i, lc).cmp(r.char_at(j, rc)),
        _ => return false,
    };
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// Concatenate column parts of the same type.
fn concat_columns(parts: Vec<ColumnData>, dtype: DataType) -> ColumnData {
    match dtype {
        DataType::Int32 => ColumnData::I32(
            parts
                .into_iter()
                .flat_map(|p| match p {
                    ColumnData::I32(v) => v,
                    _ => unreachable!("schema-typed parts"),
                })
                .collect(),
        ),
        DataType::Int64 => ColumnData::I64(
            parts
                .into_iter()
                .flat_map(|p| match p {
                    ColumnData::I64(v) => v,
                    _ => unreachable!("schema-typed parts"),
                })
                .collect(),
        ),
        DataType::Float64 => ColumnData::F64(
            parts
                .into_iter()
                .flat_map(|p| match p {
                    ColumnData::F64(v) => v,
                    _ => unreachable!("schema-typed parts"),
                })
                .collect(),
        ),
        DataType::Date => ColumnData::Date(
            parts
                .into_iter()
                .flat_map(|p| match p {
                    ColumnData::Date(v) => v,
                    _ => unreachable!("schema-typed parts"),
                })
                .collect(),
        ),
        DataType::Char(n) => {
            let mut data = Vec::new();
            for p in parts {
                match p {
                    ColumnData::Char { width, data: d } => {
                        debug_assert_eq!(width, n as usize);
                        data.extend_from_slice(&d);
                    }
                    _ => unreachable!("schema-typed parts"),
                }
            }
            ColumnData::Char {
                width: n as usize,
                data,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uot_core::plan::PlanBuilder;
    use uot_core::{Engine, EngineConfig};
    use uot_expr::{cmp, col, lit, Predicate};
    use uot_storage::{BlockFormat, Schema, Table, TableBuilder};

    fn table(name: &str, n: i32) -> Arc<Table> {
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Float64)]);
        let mut tb = TableBuilder::new(name, s, BlockFormat::Column, 96);
        for i in 0..n {
            tb.append(&[Value::I32(i % 10), Value::F64(i as f64)])
                .unwrap();
        }
        Arc::new(tb.finish())
    }

    fn join_plan() -> QueryPlan {
        let dim = table("dim", 10);
        let fact = table("fact", 100);
        let mut pb = PlanBuilder::new();
        let b = pb.build_hash(Source::Table(dim), vec![0], vec![1]).unwrap();
        let s = pb
            .filter(Source::Table(fact), cmp(col(1), CmpOp::Lt, lit(50.0)))
            .unwrap();
        let p = pb
            .probe(
                Source::Op(s),
                b,
                vec![0],
                vec![0, 1],
                vec![0],
                JoinType::Inner,
            )
            .unwrap();
        let a = pb
            .aggregate(
                Source::Op(p),
                vec![0],
                vec![AggSpec::count_star(), AggSpec::sum(col(1))],
                &["n", "s"],
            )
            .unwrap();
        pb.build(a).unwrap()
    }

    #[test]
    fn matches_the_uot_engine() {
        let plan = join_plan();
        let uot = Engine::new(EngineConfig::serial())
            .execute(plan.clone())
            .unwrap();
        let base = BaselineEngine::new().execute(&plan).unwrap();
        assert_eq!(base.sorted_rows(), uot.sorted_rows());
    }

    #[test]
    fn per_op_metrics_cover_all_operators() {
        let plan = join_plan();
        let r = BaselineEngine::new().execute(&plan).unwrap();
        assert_eq!(r.metrics.per_op.len(), plan.len());
        assert!(r.metrics.peak_bytes > 0);
        assert!(r.metrics.wall_time.as_nanos() > 0);
    }

    #[test]
    fn full_materialization_shows_in_peak_bytes() {
        // A pass-through filter materializes ~the whole table: peak must be
        // at least the table's data size.
        let fact = table("fact2", 1000);
        let mut pb = PlanBuilder::new();
        let s = pb
            .filter(Source::Table(fact.clone()), Predicate::True)
            .unwrap();
        let plan = pb.build(s).unwrap();
        let r = BaselineEngine::new().execute(&plan).unwrap();
        assert!(r.metrics.peak_bytes >= 1000 * 12);
        assert_eq!(r.result.num_rows(), 1000);
    }

    #[test]
    fn sort_and_limit() {
        let fact = table("fact3", 25);
        let mut pb = PlanBuilder::new();
        let s = pb.filter(Source::Table(fact), Predicate::True).unwrap();
        let so = pb
            .sort(Source::Op(s), vec![SortKey::desc(1)], Some(5))
            .unwrap();
        let plan = pb.build(so).unwrap();
        let r = BaselineEngine::new().execute(&plan).unwrap();
        let vs: Vec<f64> = r.rows().iter().map(|row| row[1].as_f64()).collect();
        assert_eq!(vs, vec![24.0, 23.0, 22.0, 21.0, 20.0]);
    }

    #[test]
    fn semi_and_anti_join() {
        let dim = table("dim4", 5); // keys 0..5
        let fact = table("fact4", 20); // keys 0..10 twice
        for (join, expect) in [(JoinType::Semi, 10), (JoinType::Anti, 10)] {
            let mut pb = PlanBuilder::new();
            let b = pb
                .build_hash(Source::Table(dim.clone()), vec![0], vec![])
                .unwrap();
            let p = pb
                .probe(
                    Source::Table(fact.clone()),
                    b,
                    vec![0],
                    vec![0],
                    vec![],
                    join,
                )
                .unwrap();
            let plan = pb.build(p).unwrap();
            let r = BaselineEngine::new().execute(&plan).unwrap();
            assert_eq!(r.result.num_rows(), expect, "{join:?}");
        }
    }

    #[test]
    fn nested_loops() {
        let t = table("t5", 6);
        let mut pb = PlanBuilder::new();
        let inner = pb
            .filter(Source::Table(t.clone()), cmp(col(0), CmpOp::Lt, lit(3i32)))
            .unwrap();
        let j = pb
            .nested_loops(
                Source::Table(t),
                inner,
                vec![(0, CmpOp::Eq, 0)],
                vec![0],
                vec![1],
            )
            .unwrap();
        let plan = pb.build(j).unwrap();
        let r = BaselineEngine::new().execute(&plan).unwrap();
        assert_eq!(r.result.num_rows(), 3);
    }

    #[test]
    fn limit_op() {
        let t = table("t6", 30);
        let mut pb = PlanBuilder::new();
        let s = pb.filter(Source::Table(t), Predicate::True).unwrap();
        let l = pb.limit(Source::Op(s), 7).unwrap();
        let plan = pb.build(l).unwrap();
        let r = BaselineEngine::new().execute(&plan).unwrap();
        assert_eq!(r.result.num_rows(), 7);
    }

    #[test]
    fn scalar_aggregate_over_empty_input() {
        let t = table("t7", 0);
        let mut pb = PlanBuilder::new();
        let a = pb
            .aggregate(
                Source::Table(t),
                vec![],
                vec![AggSpec::count_star()],
                &["n"],
            )
            .unwrap();
        let plan = pb.build(a).unwrap();
        let r = BaselineEngine::new().execute(&plan).unwrap();
        assert_eq!(r.rows(), vec![vec![Value::I64(0)]]);
    }
}
