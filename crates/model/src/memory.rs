//! The Section VI memory-footprint model.
//!
//! For a cascade of a selection and `n` probe operators (Fig. 4 of the
//! paper), Table II gives the *additional* memory each strategy needs beyond
//! what both share:
//!
//! * **Low UoT** (pipelined): all hash tables must exist simultaneously →
//!   overhead `Σᵢ₌₂ⁿ |Hᵢ|` (the first table is needed by both strategies).
//! * **High UoT** (one join at a time): only one hash table at a time, but
//!   the selection output is materialized → overhead `|σ(R)|`.
//!
//! `|σ(R)|` shrinks with both **selectivity** (fraction of rows kept) and
//! **projectivity** (fraction of bytes per tuple kept) — the effect Tables
//! III/IV quantify for TPC-H.

/// The paper's hash-table sizing formula: an input of `input_bytes` with
/// `tuple_width`-byte tuples, stored in buckets of `bucket_bytes` at load
/// factor `load_factor`, occupies `(M/w)·(c/f)` bytes.
pub fn hash_table_size(
    input_bytes: f64,
    tuple_width: f64,
    bucket_bytes: f64,
    load_factor: f64,
) -> f64 {
    assert!(tuple_width > 0.0, "tuple width must be positive");
    assert!(
        load_factor > 0.0 && load_factor <= 1.0,
        "load factor must be in (0, 1]"
    );
    (input_bytes / tuple_width) * (bucket_bytes / load_factor)
}

/// Selectivity/projectivity profile of a selection (Tables III/IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionProfile {
    /// Fraction of rows that pass the predicate, `s = N_s / N` in `[0, 1]`.
    pub selectivity: f64,
    /// Fraction of tuple bytes projected, `p = C_s / C` in `[0, 1]`.
    pub projectivity: f64,
}

impl SelectionProfile {
    /// New profile (asserts both fractions are in `[0, 1]`).
    pub fn new(selectivity: f64, projectivity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&selectivity),
            "selectivity {selectivity}"
        );
        assert!(
            (0.0..=1.0).contains(&projectivity),
            "projectivity {projectivity}"
        );
        SelectionProfile {
            selectivity,
            projectivity,
        }
    }

    /// The "Total (%)" column of Tables III/IV: the materialized output's
    /// size relative to the input table, `s · p`.
    pub fn total_fraction(&self) -> f64 {
        self.selectivity * self.projectivity
    }

    /// `|σ(R)|` for an input of `input_bytes`.
    pub fn output_bytes(&self, input_bytes: f64) -> f64 {
        self.total_fraction() * input_bytes
    }
}

/// Memory reduction of a selection: returns `(selectivity, projectivity,
/// total)` as percentages, from observed row/byte counts. This is how the
/// `uot-tpch` analysis reproduces Tables III and IV from generated data.
pub fn memory_reduction(
    rows_in: usize,
    rows_out: usize,
    tuple_bytes_in: usize,
    tuple_bytes_out: usize,
) -> (f64, f64, f64) {
    let s = if rows_in == 0 {
        0.0
    } else {
        rows_out as f64 / rows_in as f64
    };
    let p = if tuple_bytes_in == 0 {
        0.0
    } else {
        tuple_bytes_out as f64 / tuple_bytes_in as f64
    };
    (s * 100.0, p * 100.0, s * p * 100.0)
}

/// Table II instantiated for one select → probe×n cascade.
#[derive(Debug, Clone)]
pub struct CascadeFootprint {
    /// Sizes of the join hash tables `|H_1| ... |H_n|`, in bytes.
    pub hash_table_bytes: Vec<f64>,
    /// Size of the materialized selection output `|σ(R)|`, in bytes.
    pub selection_output_bytes: f64,
}

impl CascadeFootprint {
    /// Total footprint of the low-UoT strategy per Table II: all hash
    /// tables, no intermediate table.
    pub fn low_uot_total(&self) -> f64 {
        self.hash_table_bytes.iter().sum()
    }

    /// Total footprint of the high-UoT strategy per Table II: one hash table
    /// at a time plus the materialized intermediate.
    pub fn high_uot_total(&self) -> f64 {
        self.hash_table_bytes.first().copied().unwrap_or(0.0) + self.selection_output_bytes
    }

    /// The *overhead* of low UoT over the shared baseline: `Σᵢ₌₂ⁿ |Hᵢ|`.
    pub fn low_uot_overhead(&self) -> f64 {
        self.hash_table_bytes.iter().skip(1).sum()
    }

    /// The *overhead* of high UoT over the shared baseline: `|σ(R)|`.
    pub fn high_uot_overhead(&self) -> f64 {
        self.selection_output_bytes
    }

    /// True when the pipelined (low-UoT) strategy needs less extra memory.
    pub fn low_uot_wins(&self) -> bool {
        self.low_uot_overhead() < self.high_uot_overhead()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_table_formula() {
        // 1 GB input, 100-byte tuples, 32-byte buckets, load factor 0.5:
        // 10^7 entries * 64 bytes = 640 MB.
        let m = 1e9;
        let size = hash_table_size(m, 100.0, 32.0, 0.5);
        assert!((size - 640e6).abs() < 1.0);
        // load factor 1 = no slack
        assert_eq!(hash_table_size(1000.0, 10.0, 10.0, 1.0), 1000.0);
    }

    #[test]
    #[should_panic(expected = "load factor")]
    fn bad_load_factor_panics() {
        hash_table_size(1.0, 1.0, 1.0, 0.0);
    }

    #[test]
    fn selection_profile_total() {
        // TPC-H Q07 on lineitem per Table III: s=30.4%, p=18.3% -> 5.6%.
        let p = SelectionProfile::new(0.304, 0.183);
        assert!((p.total_fraction() - 0.0556).abs() < 1e-3);
        assert!((p.output_bytes(100.0) - 5.56).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn selectivity_out_of_range_panics() {
        SelectionProfile::new(1.5, 0.5);
    }

    #[test]
    fn memory_reduction_percentages() {
        let (s, p, t) = memory_reduction(1000, 304, 120, 22);
        assert!((s - 30.4).abs() < 1e-9);
        assert!((p - 18.333).abs() < 1e-2);
        assert!((t - 5.573).abs() < 1e-2);
        // degenerate inputs
        assert_eq!(memory_reduction(0, 0, 10, 5).0, 0.0);
        assert_eq!(memory_reduction(10, 5, 0, 0).1, 0.0);
    }

    #[test]
    fn table2_overheads() {
        let f = CascadeFootprint {
            hash_table_bytes: vec![100.0, 50.0, 30.0],
            selection_output_bytes: 60.0,
        };
        assert_eq!(f.low_uot_total(), 180.0);
        assert_eq!(f.high_uot_total(), 160.0);
        assert_eq!(f.low_uot_overhead(), 80.0);
        assert_eq!(f.high_uot_overhead(), 60.0);
        assert!(!f.low_uot_wins()); // big dimension tables: blocking wins
    }

    #[test]
    fn small_hash_tables_favor_pipelining() {
        // SSB-style: tiny dimension hash tables, large fact selection.
        let f = CascadeFootprint {
            hash_table_bytes: vec![10.0, 5.0, 5.0],
            selection_output_bytes: 500.0,
        };
        assert!(f.low_uot_wins());
    }

    #[test]
    fn q07_style_example_from_paper() {
        // Section VI-C: orders hash table ~2.4 GB; selection output 2.8 GB
        // unoptimized, 224 MB with LIP. Low UoT overhead includes the orders
        // table; high UoT overhead is the selection output.
        let unopt = CascadeFootprint {
            hash_table_bytes: vec![0.1e9, 2.4e9, 0.2e9],
            selection_output_bytes: 2.8e9,
        };
        assert!(!unopt.low_uot_wins() || unopt.low_uot_overhead() < unopt.high_uot_overhead());
        let with_lip = CascadeFootprint {
            hash_table_bytes: vec![0.1e9, 2.4e9, 0.2e9],
            selection_output_bytes: 224e6,
        };
        // with pruning, the blocking strategy's overhead is far smaller
        assert!(with_lip.high_uot_overhead() < with_lip.low_uot_overhead());
    }

    #[test]
    fn empty_cascade() {
        let f = CascadeFootprint {
            hash_table_bytes: vec![],
            selection_output_bytes: 0.0,
        };
        assert_eq!(f.low_uot_total(), 0.0);
        assert_eq!(f.high_uot_total(), 0.0);
        assert_eq!(f.low_uot_overhead(), 0.0);
    }
}
