//! # uot-model
//!
//! The paper's analytical models, reproduced as a library:
//!
//! * [`cost`] — the Section V cost model for the select → probe pair: the
//!   extra work done at the two UoT extremes (in memory-hierarchy terms), the
//!   cost ratio of Equation 1, and the Section V-C persistent-store variant.
//! * [`memory`] — the Section VI memory-footprint model: Table II's
//!   low-vs-high UoT overheads (`Σ|Hᵢ|` vs `|σ(R)|`), the hash-table sizing
//!   formula `(M/w)·(c/f)`, and the selectivity × projectivity reduction of
//!   Tables III/IV.
//!
//! The model is deliberately *relative*: it only accounts for work that
//! differs between UoT values (the paper's "key idea ... focus on operations
//! that result in a cost difference").

pub mod cost;
pub mod memory;

pub use cost::{CostParams, HardwareProfile, PersistentStoreParams};
pub use memory::{hash_table_size, memory_reduction, CascadeFootprint, SelectionProfile};
