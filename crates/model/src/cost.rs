//! The Section V analytical cost model.
//!
//! Notation follows Table I of the paper. All costs are in abstract time
//! units (nanoseconds when derived from a [`HardwareProfile`]); the model's
//! value is in the *ratio* between the two strategies, not absolute numbers.
//!
//! For the select → probe pair, with `N = N_probe^in = N_select^out` UoTs:
//!
//! * **High UoT** (non-pipelining) extra work:
//!   `W_mem·N + AR_L3·N + p1·N·M_L3`
//!   — the select output is written out to memory, read back sequentially
//!   (amortized by the prefetcher), and each probe input UoT risks an L3
//!   miss after the hash table disrupts the sequential pattern.
//!
//! * **Low UoT** (pipelining) extra work:
//!   `2N·IC + p2·N·(M_L3 + R_L3) + p1'·N·(M_L3 + R_L3 + W_mem)`
//!   — two instruction-cache misses per context switch, the select's
//!   sequential pattern is disrupted by interleaved probes, and with
//!   probability `p1' = min(1, 2·B·T/|L3|)` the "hot" probe input was
//!   already evicted from L3 (the paper's key cache-residency term).

/// Hardware characteristics used to derive [`CostParams`].
#[derive(Debug, Clone, Copy)]
pub struct HardwareProfile {
    /// Sustained memory bandwidth in bytes/ns (= GB/s).
    pub mem_bandwidth_bytes_per_ns: f64,
    /// Shared L3 capacity in bytes.
    pub l3_bytes: f64,
    /// Penalty of one L3 miss burst when a UoT turns out cold (ns).
    pub l3_miss_ns: f64,
    /// Penalty of an instruction-cache miss on a context switch (ns).
    pub icache_miss_ns: f64,
    /// How much the hardware prefetcher amortizes sequential reads:
    /// `AR_L3 = R_L3 / prefetch_factor` (Section V: "the amortized cost ...
    /// will be substantially smaller").
    pub prefetch_factor: f64,
    /// Bytes of sequential access the prefetcher needs before its stride
    /// detection pays off. Re-reads of UoTs smaller than this see the full
    /// `R_L3`; larger UoTs approach `AR_L3` — this is what makes the paper's
    /// high-UoT simplification `p1'·(R_L3 + W_mem) ≈ AR_L3 + W_mem` hold at
    /// multi-megabyte UoTs but not at tiny ones.
    pub prefetch_warmup_bytes: f64,
}

impl HardwareProfile {
    /// Roughly the paper's evaluation platform (Haswell EP, 25 MB L3).
    pub fn haswell() -> Self {
        HardwareProfile {
            mem_bandwidth_bytes_per_ns: 40.0, // ~40 GB/s per socket
            l3_bytes: 25.0 * 1024.0 * 1024.0,
            l3_miss_ns: 90.0,
            icache_miss_ns: 30.0,
            prefetch_factor: 8.0,
            prefetch_warmup_bytes: 256.0 * 1024.0,
        }
    }
}

/// Instantiated model parameters (Table I).
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// `R_L3`: cost of reading one UoT into L3 from memory (ns).
    pub r_l3: f64,
    /// `AR_L3`: amortized (prefetched, sequential) read of one UoT (ns).
    pub ar_l3: f64,
    /// Effective cost of *re-reading* an evicted UoT in the pipelined case:
    /// full `R_L3` for UoTs below the prefetch warm-up, approaching `AR_L3`
    /// beyond it.
    pub rr_l3: f64,
    /// `W_mem`: cost of writing one UoT from cache to memory (ns).
    pub w_mem: f64,
    /// `IC`: instruction-cache miss cost per context switch (ns).
    pub ic: f64,
    /// `M_L3`: penalty of missing a UoT at L3 (ns).
    pub m_l3: f64,
    /// `N`: number of probe-input UoTs (= select-output UoTs).
    pub n_uots: f64,
    /// `T`: worker threads sharing the L3.
    pub threads: f64,
    /// `B`: UoT size in bytes.
    pub uot_bytes: f64,
    /// `|L3|` in bytes.
    pub l3_bytes: f64,
    /// `p1`: probability a probe-input UoT read misses L3 in the
    /// non-pipelined case (the hash table's random reads disrupt the
    /// sequential probe-input stream).
    pub p1: f64,
    /// `p2`: probability the select's sequential pattern misses after a
    /// context switch back from a probe (low-UoT case).
    pub p2: f64,
}

impl CostParams {
    /// Derive parameters from hardware, a UoT size and a thread count.
    ///
    /// `p1` and `p2` follow the paper's qualitative guidance: both rise
    /// toward 1 as interleaving/disruption grows. We model `p1` as high
    /// (0.9 — the non-pipelined probe always mixes sequential input with
    /// random hash-table reads) and `p2` as decreasing with UoT size (more
    /// blocks per transfer → fewer context switches per byte).
    pub fn derive(hw: HardwareProfile, uot_bytes: f64, threads: usize, n_uots: usize) -> Self {
        let r_l3 = uot_bytes / hw.mem_bandwidth_bytes_per_ns + hw.l3_miss_ns;
        let ar_l3 = r_l3 / hw.prefetch_factor;
        let warm = hw.prefetch_warmup_bytes.min(uot_bytes);
        let rr_l3 = warm / hw.mem_bandwidth_bytes_per_ns
            + (uot_bytes - warm) / hw.mem_bandwidth_bytes_per_ns / hw.prefetch_factor
            + hw.l3_miss_ns;
        let w_mem = uot_bytes / hw.mem_bandwidth_bytes_per_ns;
        // Context-switch disruption shrinks as the UoT grows past L3-sized
        // working sets; clamp to (0, 1].
        let p2 = (hw.l3_bytes / (hw.l3_bytes + uot_bytes * threads as f64)).clamp(0.05, 1.0);
        CostParams {
            r_l3,
            ar_l3,
            rr_l3,
            w_mem,
            ic: hw.icache_miss_ns,
            m_l3: hw.l3_miss_ns,
            n_uots: n_uots as f64,
            threads: threads as f64,
            uot_bytes,
            l3_bytes: hw.l3_bytes,
            p1: 0.9,
            p2,
        }
    }

    /// `p1' = min(1, 2·B·T / |L3|)` — the probability that a "pipelined"
    /// probe input has already been evicted from the shared L3 (Section V).
    pub fn p1_prime(&self) -> f64 {
        (2.0 * self.uot_bytes * self.threads / self.l3_bytes).min(1.0)
    }

    /// Extra work of the **high-UoT** (non-pipelining) strategy:
    /// `W_mem·N + AR_L3·N + p1·N·M_L3` (ns).
    pub fn high_uot_extra_cost(&self) -> f64 {
        self.n_uots * (self.w_mem + self.ar_l3 + self.p1 * self.m_l3)
    }

    /// Extra work of the **low-UoT** (pipelining) strategy:
    /// `2N·IC + p2·N·(M_L3+R_L3) + p1'·N·(M_L3+R_L3+W_mem)` (ns), with the
    /// re-read term using the warm-up-aware `rr_l3` (see [`CostParams::rr_l3`]).
    pub fn low_uot_extra_cost(&self) -> f64 {
        let p1p = self.p1_prime();
        self.n_uots
            * (2.0 * self.ic
                + self.p2 * (self.m_l3 + self.rr_l3)
                + p1p * (self.m_l3 + self.rr_l3 + self.w_mem))
    }

    /// Extra work of the **fused** (UoT→0) strategy: the pipeline's
    /// operators run as one push-based loop, so no intermediate UoT is ever
    /// written out or read back. What remains is per-UoT instruction-cache
    /// pressure from the larger fused loop body (one `IC`, not the staged
    /// path's two context switches) and the chance that the chain's resident
    /// state — `resident_bytes` of hash tables and Bloom filters shared by
    /// every batch — no longer fits L3 alongside the working set:
    /// `N·(IC + p_f·M_L3)` with `p_f = min(1, (B·T + resident)/|L3|)`.
    pub fn fused_extra_cost(&self, resident_bytes: f64) -> f64 {
        let p_f = ((self.uot_bytes * self.threads + resident_bytes) / self.l3_bytes).min(1.0);
        self.n_uots * (self.ic + p_f * self.m_l3)
    }

    /// Does fusing a pipeline with `resident_bytes` of chain-resident state
    /// beat the *better* of the two staged strategies? In-memory this is
    /// almost always yes — the fused loop skips both the write-out/re-read
    /// of the high-UoT path and the context-switch/eviction churn of the
    /// low-UoT path — which matches the push-fusion literature; the value of
    /// the estimate is that it stays honest when the resident state grows
    /// past L3 and per-batch re-fetches start to bite.
    pub fn fusion_wins(&self, resident_bytes: f64) -> bool {
        let staged_best = self.high_uot_extra_cost().min(self.low_uot_extra_cost());
        self.fused_extra_cost(resident_bytes) <= staged_best
    }

    /// Equation 1: the cost ratio non-pipelining / pipelining, with the
    /// instruction-cache term dropped (the paper drops it for large UoTs and
    /// it is negligible at any multi-kilobyte UoT):
    ///
    /// `(AR_L3 + W_mem + p1·M_L3) / (p2·(M_L3+R_L3) + p1'·(M_L3+R_L3+W_mem))`
    pub fn cost_ratio_eq1(&self) -> f64 {
        let p1p = self.p1_prime();
        let num = self.ar_l3 + self.w_mem + self.p1 * self.m_l3;
        let den = self.p2 * (self.m_l3 + self.rr_l3) + p1p * (self.m_l3 + self.rr_l3 + self.w_mem);
        num / den
    }
}

/// Section V-C: the model re-parameterized for a persistent store (SSD/HDD
/// behind a buffer pool). `p1`/`p2` are ~0 (the hash table stays in the
/// pool); the difference is dominated by storage I/O vs. instruction-cache
/// misses.
#[derive(Debug, Clone, Copy)]
pub struct PersistentStoreParams {
    /// Cost of reading one UoT from the store (ns).
    pub r_store: f64,
    /// Cost of writing one UoT to the store (ns).
    pub w_store: f64,
    /// Instruction-cache miss cost (ns).
    pub ic: f64,
    /// Number of UoTs.
    pub n_uots: f64,
}

impl PersistentStoreParams {
    /// A commodity-SSD profile for a given UoT size.
    pub fn ssd(uot_bytes: f64, n_uots: usize) -> Self {
        // ~2 GB/s read, ~1 GB/s write, plus ~80 µs access latency.
        PersistentStoreParams {
            r_store: uot_bytes / 2.0 + 80_000.0,
            w_store: uot_bytes / 1.0 + 80_000.0,
            ic: 30.0,
            n_uots: n_uots as f64,
        }
    }

    /// Extra cost of the high-UoT strategy:
    /// `R_store·N_probe_in + W_store·N_select_out` (ns).
    pub fn high_uot_extra_cost(&self) -> f64 {
        self.n_uots * (self.r_store + self.w_store)
    }

    /// Extra cost of the low-UoT strategy: `2N·IC` (ns).
    pub fn low_uot_extra_cost(&self) -> f64 {
        2.0 * self.n_uots * self.ic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(uot_kb: f64, threads: usize) -> CostParams {
        CostParams::derive(HardwareProfile::haswell(), uot_kb * 1024.0, threads, 1000)
    }

    #[test]
    fn p1_prime_matches_formula() {
        let p = params(128.0, 20);
        let expect = (2.0_f64 * 128.0 * 1024.0 * 20.0 / (25.0 * 1024.0 * 1024.0)).min(1.0);
        assert!((p.p1_prime() - expect).abs() < 1e-12);
        // Large UoT with many threads saturates at 1.
        let p = params(4096.0, 20);
        assert_eq!(p.p1_prime(), 1.0);
        // Tiny UoT, one thread: far below 1.
        let p = params(4.0, 1);
        assert!(p.p1_prime() < 0.01);
    }

    #[test]
    fn high_uot_ratio_near_one() {
        // Paper, Section V-A (a): for UoT > |L3| / (2T) the ratio ≈ 1.
        let p = params(2048.0, 20); // 2 MB UoT, 20 threads
        let ratio = p.cost_ratio_eq1();
        assert!(
            (0.7..=1.3).contains(&ratio),
            "expected ratio near 1, got {ratio}"
        );
    }

    #[test]
    fn gap_is_narrow_across_the_whole_spectrum() {
        // The paper's headline: "the gap between the traditional pipelining
        // and non-pipelining methods ... is quite narrow". Under realistic
        // intra-operator parallelism (the paper evaluates with 20 workers),
        // neither strategy should look more than ~2x better. (At T=1 with
        // multi-megabyte UoTs the model *does* favor pipelining more —
        // there is no cache pressure to evict the hot probe input — but that
        // is outside the paper's parallel setting.)
        for uot_kb in [16.0, 32.0, 128.0, 512.0, 2048.0, 8192.0] {
            for threads in [4, 8, 20] {
                let ratio = params(uot_kb, threads).cost_ratio_eq1();
                assert!(
                    (0.5..=2.0).contains(&ratio),
                    "ratio {ratio} out of the narrow band at B={uot_kb}KB T={threads}"
                );
            }
        }
    }

    #[test]
    fn small_uots_give_pipelining_a_modest_edge() {
        // Paper, Section V-A (b): at small UoTs the extra work of the
        // non-pipelined strategy (write + re-read of every UoT) exceeds the
        // pipelined strategy's disruption costs — a modest edge, not an
        // order of magnitude.
        let p = params(32.0, 4);
        let high = p.high_uot_extra_cost();
        let low = p.low_uot_extra_cost();
        // Includes the instruction-cache term that Eq. 1 drops.
        let full_ratio = high / low;
        assert!(
            (0.8..=2.0).contains(&full_ratio),
            "expected modest pipelining edge, got {full_ratio}"
        );
    }

    #[test]
    fn extra_costs_scale_linearly_in_n() {
        let a = CostParams::derive(HardwareProfile::haswell(), 128.0 * 1024.0, 8, 100);
        let b = CostParams::derive(HardwareProfile::haswell(), 128.0 * 1024.0, 8, 200);
        assert!((b.high_uot_extra_cost() / a.high_uot_extra_cost() - 2.0).abs() < 1e-9);
        assert!((b.low_uot_extra_cost() / a.low_uot_extra_cost() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn prefetching_makes_amortized_reads_cheaper() {
        let p = params(128.0, 8);
        assert!(p.ar_l3 < p.r_l3 / 4.0);
        // Disabling prefetch (factor 1) removes the amortization.
        let hw = HardwareProfile {
            prefetch_factor: 1.0,
            ..HardwareProfile::haswell()
        };
        let noprefetch = CostParams::derive(hw, 128.0 * 1024.0, 8, 100);
        assert_eq!(noprefetch.ar_l3, noprefetch.r_l3);
        // ... which makes the non-pipelined side look worse (higher ratio).
        assert!(noprefetch.cost_ratio_eq1() > p.cost_ratio_eq1());
    }

    #[test]
    fn persistent_store_strongly_favors_pipelining() {
        // Section V-C: "order of seconds" vs "order of microseconds" for
        // thousands of UoTs.
        let p = PersistentStoreParams::ssd(128.0 * 1024.0, 5000);
        let high = p.high_uot_extra_cost();
        let low = p.low_uot_extra_cost();
        assert!(high > 1e9, "high-UoT extra should be ~seconds: {high} ns");
        assert!(low < 1e6, "low-UoT extra should be <1 ms: {low} ns");
        assert!(high / low > 1000.0);
    }

    #[test]
    fn fused_beats_both_staged_strategies_in_memory() {
        // UoT→0: with cache-resident hash state the fused loop drops both
        // the high-UoT write/re-read and the low-UoT switching costs.
        for uot_kb in [32.0, 128.0, 512.0] {
            for threads in [1, 4, 8] {
                let p = params(uot_kb, threads);
                let resident = 2.0 * 1024.0 * 1024.0; // 2 MB of hash tables
                assert!(
                    p.fusion_wins(resident),
                    "fusion should win at B={uot_kb}KB T={threads}"
                );
                assert!(p.fused_extra_cost(resident) < p.high_uot_extra_cost());
                assert!(p.fused_extra_cost(resident) < p.low_uot_extra_cost());
            }
        }
    }

    #[test]
    fn fused_cost_grows_with_resident_state_and_saturates() {
        let p = params(128.0, 8);
        let small = p.fused_extra_cost(0.0);
        let big = p.fused_extra_cost(20.0 * 1024.0 * 1024.0);
        assert!(small < big, "resident state must make fusion dearer");
        // Past L3, p_f clamps at 1: the cost stops growing.
        let over = p.fused_extra_cost(200.0 * 1024.0 * 1024.0);
        let way_over = p.fused_extra_cost(2000.0 * 1024.0 * 1024.0);
        assert_eq!(over, way_over);
        assert_eq!(over, p.n_uots * (p.ic + p.m_l3));
    }

    #[test]
    fn fused_cost_scales_linearly_in_n() {
        let a = CostParams::derive(HardwareProfile::haswell(), 128.0 * 1024.0, 8, 100);
        let b = CostParams::derive(HardwareProfile::haswell(), 128.0 * 1024.0, 8, 200);
        let r = 1024.0 * 1024.0;
        assert!((b.fused_extra_cost(r) / a.fused_extra_cost(r) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn p2_decreases_with_uot_size() {
        let small = params(16.0, 8).p2;
        let large = params(4096.0, 8).p2;
        assert!(small > large);
        assert!((0.0..=1.0).contains(&small));
        assert!((0.0..=1.0).contains(&large));
    }
}
