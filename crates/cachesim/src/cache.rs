//! One set-associative, LRU cache level.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Cache-line size in bytes (must divide `size_bytes`).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }

    /// A 32 KB, 8-way L1 with 64-byte lines.
    pub fn l1_32k() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// A 256 KB, 8-way L2.
    pub fn l2_256k() -> Self {
        CacheConfig {
            size_bytes: 256 * 1024,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// A 25 MB, 20-way L3 (the paper's Haswell EP, scaled).
    pub fn l3_25m() -> Self {
        CacheConfig {
            size_bytes: 25 * 1024 * 1024,
            line_bytes: 64,
            ways: 20,
        }
    }
}

/// Hit/miss counters for one level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Lines installed by the prefetcher.
    pub prefetch_fills: u64,
    /// Demand hits on lines that were installed by a prefetch and had not
    /// yet been touched by demand — "useful prefetches".
    pub prefetch_hits: u64,
    /// Prefetched lines evicted without ever being touched by demand —
    /// pure wasted memory bandwidth.
    pub wasted_prefetches: u64,
}

impl CacheStats {
    /// Demand miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// One cache way: the cached line tag plus whether it is an untouched
/// prefetch.
#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    prefetched: bool,
    /// LRU clock; larger = more recent.
    lru: u64,
}

/// A set-associative LRU cache.
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Way>,
    n_sets: usize,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let n_sets = config.sets().max(1);
        Cache {
            sets: vec![
                Way {
                    tag: 0,
                    valid: false,
                    prefetched: false,
                    lru: 0,
                };
                n_sets * config.ways
            ],
            n_sets,
            clock: 0,
            stats: CacheStats::default(),
            config,
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes as u64
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line % self.n_sets as u64) as usize;
        set * self.config.ways..(set + 1) * self.config.ways
    }

    /// Demand access: returns `true` on hit. On miss, the line is installed
    /// (the caller charges the next level).
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = self.line_of(addr);
        let range = self.set_range(line);
        let clock = self.clock;
        // Hit?
        for w in &mut self.sets[range.clone()] {
            if w.valid && w.tag == line {
                w.lru = clock;
                if w.prefetched {
                    w.prefetched = false;
                    self.stats.prefetch_hits += 1;
                }
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        self.install(line, false);
        false
    }

    /// Install a line without a demand access (prefetch fill). No-op if the
    /// line is already resident. Returns `true` when a line was actually
    /// installed (the caller charges memory bandwidth only for real fills —
    /// redundant prefetches are dropped by the memory system for free).
    pub fn prefetch_fill(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let range = self.set_range(line);
        if self.sets[range].iter().any(|w| w.valid && w.tag == line) {
            return false;
        }
        self.stats.prefetch_fills += 1;
        self.install(line, true);
        true
    }

    /// True when the line holding `addr` is resident (probe without side
    /// effects).
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.sets[self.set_range(line)]
            .iter()
            .any(|w| w.valid && w.tag == line)
    }

    fn install(&mut self, line: u64, prefetched: bool) {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(line);
        let victim = self.sets[range]
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("ways >= 1");
        if victim.valid && victim.prefetched {
            // Evicting a prefetched line nobody touched: the bandwidth that
            // fetched it was wasted.
            self.stats.wasted_prefetches += 1;
        }
        victim.tag = line;
        victim.valid = true;
        victim.prefetched = prefetched;
        victim.lru = clock;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B
        Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::l1_32k();
        assert_eq!(c.sets(), 64);
        assert_eq!(CacheConfig::l3_25m().sets(), 20480);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Set 0 holds lines 0, 4, 8, ... (line % 4 == 0). Two ways.
        c.access(0); // line 0
        c.access(4 * 64); // line 4
        assert!(c.access(0)); // still resident, refreshes LRU
        c.access(8 * 64); // line 8 evicts line 4 (LRU)
        assert!(c.contains(0));
        assert!(!c.contains(4 * 64));
        assert!(c.contains(8 * 64));
    }

    #[test]
    fn prefetch_fill_and_useful_prefetch_counting() {
        let mut c = tiny();
        c.prefetch_fill(128);
        assert!(c.contains(128));
        assert_eq!(c.stats().prefetch_fills, 1);
        // Demand access on a prefetched line counts as hit + useful prefetch.
        assert!(c.access(128));
        assert_eq!(c.stats().prefetch_hits, 1);
        // Second access is a plain hit.
        assert!(c.access(128));
        assert_eq!(c.stats().prefetch_hits, 1);
        // Redundant prefetch fills are no-ops.
        c.prefetch_fill(128);
        assert_eq!(c.stats().prefetch_fills, 1);
    }

    #[test]
    fn working_set_bigger_than_cache_thrashes() {
        let mut c = tiny(); // 512 B
                            // 2 KB working set, sequential, twice: second pass still misses.
        for pass in 0..2 {
            for line in 0..32u64 {
                let hit = c.access(line * 64);
                if pass == 1 {
                    assert!(!hit, "line {line} should have been evicted");
                }
            }
        }
    }

    #[test]
    fn working_set_within_cache_hits_on_second_pass() {
        let mut c = tiny();
        for _ in 0..2 {
            for line in 0..8u64 {
                c.access(line * 64);
            }
        }
        assert_eq!(c.stats().hits, 8);
        assert_eq!(c.stats().misses, 8);
    }

    #[test]
    fn empty_stats() {
        let c = tiny();
        assert_eq!(c.stats().miss_ratio(), 0.0);
    }
}
