//! A stride-detecting spatial prefetcher.
//!
//! Models the paper's description (Section IV-D): "the prefetcher observes
//! patterns of data accesses from memory to caches and speculates the access
//! of a data element in advance". Streams are tracked per 4 KB region; after
//! two consecutive accesses with the same stride the prefetcher gains
//! confidence and issues `degree` prefetches ahead of the stream. Random
//! access patterns (hash-table probes) never build confidence, and a mix of
//! streams can evict useful lines — the pollution effect behind Table VI's
//! "prefetching worsens build/probe".

/// Prefetcher knobs.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchConfig {
    /// Whether the prefetcher is on at all (the MSR-0x1A4 substitute —
    /// the MSR's bits 0/1 disable the stream *and* the adjacent/next-line
    /// prefetchers together, so this flag gates both).
    pub enabled: bool,
    /// Lines prefetched ahead once a stream is confident.
    pub degree: usize,
    /// Stream-table entries (concurrent streams tracked).
    pub streams: usize,
    /// Also model the DCU next-line prefetcher: every demand miss pulls the
    /// following line too. Helps sequential code; pollutes the cache under
    /// random access (the hash-table effect behind Table VI's "prefetching
    /// worsens build/probe").
    pub next_line: bool,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            enabled: true,
            degree: 4,
            streams: 16,
            next_line: true,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Stream {
    valid: bool,
    region: u64,
    last_line: i64,
    stride: i64,
    confidence: u8,
    lru: u64,
}

/// The stride prefetcher: feed it demand line addresses, get back lines to
/// prefetch.
#[derive(Debug)]
pub struct StridePrefetcher {
    config: PrefetchConfig,
    streams: Vec<Stream>,
    clock: u64,
    issued: u64,
}

/// Region granularity for stream tracking (4 KB pages).
const REGION_SHIFT: u32 = 12;

impl StridePrefetcher {
    /// New prefetcher.
    pub fn new(config: PrefetchConfig) -> Self {
        StridePrefetcher {
            streams: vec![Stream::default(); config.streams.max(1)],
            clock: 0,
            issued: 0,
            config,
        }
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Observe a demand access to `addr` (byte address) with the given line
    /// size; returns the byte addresses of lines to prefetch (empty while
    /// confidence is building or when disabled).
    pub fn observe(&mut self, addr: u64, line_bytes: u64) -> Vec<u64> {
        if !self.config.enabled {
            return Vec::new();
        }
        let mut extra = Vec::new();
        if self.config.next_line {
            // DCU next-line prefetch fires on every observed miss,
            // regardless of stride confidence.
            extra.push((addr / line_bytes + 1) * line_bytes);
            self.issued += 1;
        }
        self.clock += 1;
        let line = (addr / line_bytes) as i64;
        let region = addr >> REGION_SHIFT;

        // Find (or allocate) the stream for this region.
        let idx = match self
            .streams
            .iter()
            .position(|s| s.valid && s.region == region)
        {
            Some(i) => i,
            None => {
                let victim = self
                    .streams
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| if s.valid { s.lru } else { 0 })
                    .map(|(i, _)| i)
                    .expect("streams >= 1");
                self.streams[victim] = Stream {
                    valid: true,
                    region,
                    last_line: line,
                    stride: 0,
                    confidence: 0,
                    lru: self.clock,
                };
                return extra;
            }
        };
        let s = &mut self.streams[idx];
        s.lru = self.clock;
        let stride = line - s.last_line;
        if stride == 0 {
            return extra; // same line; no new stride information
        }
        // Direction-based confidence (like hardware streamers): a monotone
        // miss stream in one region is a stream even if the line stride
        // wobbles (e.g. a 141-byte tuple stride alternates between 2- and
        // 3-line steps).
        if s.stride != 0 && stride.signum() == s.stride.signum() {
            s.confidence = s.confidence.saturating_add(1);
        } else {
            s.confidence = 0;
        }
        s.stride = stride;
        s.last_line = line;
        if s.confidence < 1 {
            return extra;
        }
        let degree = self.config.degree;
        extra.extend((1..=degree as i64).map(|k| ((line + stride * k) as u64) * line_bytes));
        self.issued += degree as u64;
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_prefetcher_stays_silent() {
        let mut p = StridePrefetcher::new(PrefetchConfig {
            enabled: false,
            ..Default::default()
        });
        for i in 0..100u64 {
            assert!(p.observe(i * 64, 64).is_empty());
        }
        assert_eq!(p.issued(), 0);
    }

    fn stride_only() -> PrefetchConfig {
        PrefetchConfig {
            next_line: false,
            ..Default::default()
        }
    }

    #[test]
    fn sequential_stream_triggers_prefetch() {
        let mut p = StridePrefetcher::new(stride_only());
        assert!(p.observe(0, 64).is_empty()); // allocate stream
        assert!(p.observe(64, 64).is_empty()); // learn stride, conf 0
        let out = p.observe(128, 64); // confirm stride, conf 1 -> fire
        assert_eq!(out, vec![192, 256, 320, 384]);
        assert_eq!(p.issued(), 4);
    }

    #[test]
    fn strided_row_store_scan_is_detected() {
        // 2 lines per tuple (128-byte tuples): stride 2.
        let mut p = StridePrefetcher::new(stride_only());
        p.observe(0, 64);
        p.observe(128, 64);
        let out = p.observe(256, 64);
        assert_eq!(out, vec![384, 512, 640, 768]);
    }

    #[test]
    fn random_accesses_never_gain_confidence() {
        let mut p = StridePrefetcher::new(stride_only());
        // Addresses in the same region but with changing strides.
        let addrs = [0u64, 640, 128, 1920, 320, 2560, 64];
        let mut fired = 0;
        for &a in &addrs {
            fired += p.observe(a, 64).len();
        }
        assert_eq!(fired, 0);
    }

    #[test]
    fn repeated_same_line_is_ignored() {
        let mut p = StridePrefetcher::new(stride_only());
        p.observe(0, 64);
        for _ in 0..10 {
            assert!(p.observe(32, 64).is_empty()); // same line 0
        }
    }

    #[test]
    fn multiple_streams_tracked_independently() {
        let mut p = StridePrefetcher::new(stride_only());
        let region_a = 0u64;
        let region_b = 1 << 20; // far region
                                // interleave two sequential streams
        p.observe(region_a, 64);
        p.observe(region_b, 64);
        p.observe(region_a + 64, 64);
        p.observe(region_b + 64, 64);
        let a = p.observe(region_a + 128, 64);
        let b = p.observe(region_b + 128, 64);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
        assert!(b[0] > region_b);
    }

    #[test]
    fn stream_table_evicts_lru() {
        let mut p = StridePrefetcher::new(PrefetchConfig {
            streams: 2,
            next_line: false,
            ..Default::default()
        });
        p.observe(0, 64); // stream A
        p.observe(1 << 20, 64); // stream B
        p.observe(2 << 20, 64); // evicts A (LRU)
                                // A must re-learn from scratch: next two accesses fire nothing.
        assert!(p.observe(64, 64).is_empty());
        assert!(p.observe(128, 64).is_empty());
        assert_eq!(p.observe(192, 64).len(), 4);
    }

    #[test]
    fn next_line_fires_on_every_observation() {
        let mut p = StridePrefetcher::new(PrefetchConfig::default());
        // even a random, low-confidence access pulls its next line
        let out = p.observe(10_000 * 64, 64);
        assert_eq!(out, vec![10_001 * 64]);
        let out = p.observe(77 * 64, 64);
        assert!(out.contains(&(78 * 64)));
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn next_line_combines_with_stream_prefetch() {
        let mut p = StridePrefetcher::new(PrefetchConfig::default());
        p.observe(0, 64);
        p.observe(64, 64);
        let out = p.observe(128, 64);
        // next-line (192) plus 4 stream prefetches (192, 256, 320, 384)
        assert_eq!(out.len(), 5);
        assert!(out.contains(&256));
    }
}
