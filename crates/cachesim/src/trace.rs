//! Access-trace generators for the paper's three operator kinds.
//!
//! The geometry mirrors the engine's storage layer: a storage block is a
//! contiguous region of fixed-width tuples (row store) or per-column runs
//! (column store); a hash table is a large region accessed at random. Traces
//! are what Table VI's three rows (select / build / probe) look like to the
//! memory system:
//!
//! * **select** — sequential pass over the block, touching one column
//!   (strided in a row store, dense in a column store);
//! * **build** — sequential pass over the input + a random *write* into the
//!   hash-table region per tuple;
//! * **probe** — sequential pass over the input + a random *read* chain in
//!   the hash-table region per tuple.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte address.
    pub addr: u64,
    /// Write access (the simulator treats reads/writes alike for residency;
    /// the flag documents the pattern).
    pub write: bool,
}

impl Access {
    /// A read of `addr`.
    pub fn read(addr: u64) -> Self {
        Access { addr, write: false }
    }

    /// A write of `addr`.
    pub fn write(addr: u64) -> Self {
        Access { addr, write: true }
    }
}

/// Trace generator with the engine's block geometry.
#[derive(Debug, Clone)]
pub struct TraceGen {
    /// Width of one tuple in bytes (row-store stride).
    pub tuple_bytes: u64,
    /// Bytes of the referenced column(s) per tuple.
    pub referenced_bytes: u64,
    /// Number of tuples per block.
    pub tuples_per_block: u64,
    /// Base address of the block region.
    pub block_base: u64,
    /// Base address of the hash-table region.
    pub hash_table_base: u64,
    /// Size of the hash-table region in bytes.
    pub hash_table_bytes: u64,
    /// RNG seed (traces are deterministic given the seed).
    pub seed: u64,
}

impl TraceGen {
    /// Geometry for a block of `block_bytes` holding `tuple_bytes`-wide
    /// tuples, with a hash table of `hash_table_bytes`.
    pub fn new(block_bytes: u64, tuple_bytes: u64, hash_table_bytes: u64) -> Self {
        TraceGen {
            tuple_bytes,
            referenced_bytes: 8,
            tuples_per_block: block_bytes / tuple_bytes.max(1),
            block_base: 1 << 30,
            hash_table_base: 2 << 30,
            hash_table_bytes,
            seed: 0x5eed,
        }
    }

    /// Sequential scan of one column in **row-store** layout: one read per
    /// tuple at stride `tuple_bytes` (the access pattern of Section VII-B6's
    /// select row).
    pub fn select_row_store(&self) -> Vec<Access> {
        (0..self.tuples_per_block)
            .map(|i| Access::read(self.block_base + i * self.tuple_bytes))
            .collect()
    }

    /// Sequential scan of one column in **column-store** layout: dense reads
    /// of `referenced_bytes` values.
    pub fn select_column_store(&self) -> Vec<Access> {
        (0..self.tuples_per_block)
            .map(|i| Access::read(self.block_base + i * self.referenced_bytes))
            .collect()
    }

    /// Build: sequential input read + one random hash-table write per tuple.
    pub fn build_hash(&self) -> Vec<Access> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(2 * self.tuples_per_block as usize);
        for i in 0..self.tuples_per_block {
            out.push(Access::read(self.block_base + i * self.tuple_bytes));
            let slot = rng.gen_range(0..self.hash_table_bytes.max(1)) & !63;
            out.push(Access::write(self.hash_table_base + slot));
        }
        out
    }

    /// Probe: sequential input read + a short random read chain (bucket +
    /// payload) in the hash-table region per tuple.
    pub fn probe_hash(&self) -> Vec<Access> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
        let mut out = Vec::with_capacity(3 * self.tuples_per_block as usize);
        for i in 0..self.tuples_per_block {
            out.push(Access::read(self.block_base + i * self.tuple_bytes));
            let bucket = rng.gen_range(0..self.hash_table_bytes.max(1)) & !63;
            out.push(Access::read(self.hash_table_base + bucket));
            let payload = rng.gen_range(0..self.hash_table_bytes.max(1)) & !63;
            out.push(Access::read(self.hash_table_base + payload));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> TraceGen {
        TraceGen::new(128 * 1024, 128, 16 * 1024 * 1024)
    }

    #[test]
    fn select_row_store_is_strided() {
        let g = gen();
        let t = g.select_row_store();
        assert_eq!(t.len(), 1024);
        assert_eq!(t[1].addr - t[0].addr, 128);
        assert!(t.iter().all(|a| !a.write));
    }

    #[test]
    fn select_column_store_is_dense() {
        let g = gen();
        let t = g.select_column_store();
        assert_eq!(t[1].addr - t[0].addr, 8);
    }

    #[test]
    fn build_interleaves_writes_to_hash_region() {
        let g = gen();
        let t = g.build_hash();
        assert_eq!(t.len(), 2048);
        // Even entries: sequential input reads; odd entries: HT writes.
        assert!(!t[0].write && t[1].write);
        assert!(t[1].addr >= g.hash_table_base);
        assert!(t[1].addr < g.hash_table_base + g.hash_table_bytes);
    }

    #[test]
    fn probe_has_two_hash_reads_per_tuple() {
        let g = gen();
        let t = g.probe_hash();
        assert_eq!(t.len(), 3 * 1024);
        assert!(t.iter().all(|a| !a.write));
        assert!(t[1].addr >= g.hash_table_base && t[2].addr >= g.hash_table_base);
    }

    #[test]
    fn traces_are_deterministic() {
        let g = gen();
        assert_eq!(g.build_hash(), g.build_hash());
        assert_eq!(g.probe_hash(), g.probe_hash());
        let mut g2 = gen();
        g2.seed = 99;
        assert_ne!(g2.build_hash(), g.build_hash());
    }

    #[test]
    fn hash_addresses_are_line_aligned() {
        let g = gen();
        for a in g.probe_hash().iter().skip(1).step_by(3) {
            assert_eq!((a.addr - g.hash_table_base) % 64, 0);
        }
    }
}
