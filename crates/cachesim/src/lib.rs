//! # uot-cachesim
//!
//! A trace-driven, three-level, set-associative cache-hierarchy simulator
//! with a toggleable **stride prefetcher**.
//!
//! ## Why this exists
//!
//! Section IV-D / Table VI of the paper measures operator task times with the
//! hardware prefetcher enabled vs. disabled via Intel's MSR `0x1A4` — which
//! requires bare-metal root on specific CPUs. This crate substitutes a
//! simulator that exercises the same code path the paper studies: the
//! interaction of operator *access patterns* (sequential scans, random hash
//! probes, mixed streams) with spatial prefetching. The `table6_prefetching`
//! bench replays the select/build/probe traces of the engine's block
//! geometry through this hierarchy with the prefetcher on and off.
//!
//! ## Pieces
//!
//! * [`cache`] — one set-associative LRU cache level.
//! * [`prefetch`] — a stride-detecting, multi-line spatial prefetcher.
//! * [`hierarchy`] — inclusive L1/L2/L3 + memory with per-level latencies.
//! * [`trace`] — access-trace generators for the paper's three operators
//!   (select scan, hash build, hash probe) in row/column layouts.

pub mod cache;
pub mod hierarchy;
pub mod prefetch;
pub mod trace;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{Hierarchy, HierarchyConfig, ReplayStats};
pub use prefetch::{PrefetchConfig, StridePrefetcher};
pub use trace::{Access, TraceGen};
