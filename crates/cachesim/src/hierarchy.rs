//! The three-level hierarchy: L1 → L2 → L3 → memory, with the prefetcher
//! observing L1 demand misses and filling L2/L3 (the spatial prefetchers the
//! paper toggles live next to L2 on Intel parts).

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::prefetch::{PrefetchConfig, StridePrefetcher};
use crate::trace::Access;

/// Full hierarchy configuration.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// L2 cache.
    pub l2: CacheConfig,
    /// Shared L3 cache.
    pub l3: CacheConfig,
    /// Latency of an L1 hit, in cycles.
    pub l1_latency: u64,
    /// Latency of an L2 hit.
    pub l2_latency: u64,
    /// Latency of an L3 hit.
    pub l3_latency: u64,
    /// Latency of a memory access.
    pub mem_latency: u64,
    /// Memory-bandwidth cost, in cycles, charged to the triggering access
    /// for each prefetch fill that installs a new line (redundant prefetches
    /// are free). Sequential code amortizes this against the ~200-cycle
    /// misses its useful prefetches remove; random hash traffic triggers
    /// next-line prefetches that install lines nobody will read — the
    /// mechanism behind Table VI's "prefetching worsens the build and
    /// probe".
    pub prefetch_fill_cost: u64,
    /// Prefetcher settings.
    pub prefetch: PrefetchConfig,
}

impl HierarchyConfig {
    /// Roughly the paper's Haswell EP platform.
    pub fn haswell(prefetch_enabled: bool) -> Self {
        HierarchyConfig {
            l1: CacheConfig::l1_32k(),
            l2: CacheConfig::l2_256k(),
            l3: CacheConfig::l3_25m(),
            l1_latency: 4,
            l2_latency: 12,
            l3_latency: 40,
            mem_latency: 200,
            prefetch_fill_cost: 45,
            prefetch: PrefetchConfig {
                enabled: prefetch_enabled,
                // Conservative degree: Intel streamers throttle under mixed
                // traffic; degree 2 keeps the overshoot fills bounded.
                degree: 2,
                ..Default::default()
            },
        }
    }
}

/// Counters from one trace replay.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayStats {
    /// Demand accesses replayed.
    pub accesses: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Per-level counters.
    pub l1: CacheStats,
    /// Per-level counters.
    pub l2: CacheStats,
    /// Per-level counters.
    pub l3: CacheStats,
    /// Prefetches issued.
    pub prefetches: u64,
}

impl ReplayStats {
    /// Average cycles per demand access.
    pub fn cycles_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.cycles as f64 / self.accesses as f64
        }
    }
}

/// The simulated hierarchy.
#[derive(Debug)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    l3: Cache,
    prefetcher: StridePrefetcher,
    accesses: u64,
    cycles: u64,
}

impl Hierarchy {
    /// Fresh, cold hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        Hierarchy {
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            l3: Cache::new(config.l3),
            prefetcher: StridePrefetcher::new(config.prefetch),
            accesses: 0,
            cycles: 0,
            config,
        }
    }

    /// Replay one demand access; returns its cost in cycles.
    pub fn access(&mut self, addr: u64) -> u64 {
        self.accesses += 1;
        let cost = if self.l1.access(addr) {
            self.config.l1_latency
        } else {
            // L1 miss: the prefetcher trains on the miss stream. Fills that
            // install new lines occupy memory bandwidth, charged here.
            let line = self.config.l1.line_bytes as u64;
            let mut fill_cost = 0;
            for pf in self.prefetcher.observe(addr, line) {
                let installed = self.l3.prefetch_fill(pf);
                self.l2.prefetch_fill(pf);
                if installed {
                    fill_cost += self.config.prefetch_fill_cost;
                }
            }
            self.cycles += fill_cost;
            if self.l2.access(addr) {
                self.config.l2_latency
            } else if self.l3.access(addr) {
                self.config.l3_latency
            } else {
                self.config.mem_latency
            }
        };
        self.cycles += cost;
        cost
    }

    /// Replay a whole trace.
    pub fn replay(&mut self, trace: &[Access]) -> ReplayStats {
        for a in trace {
            self.access(a.addr);
        }
        self.stats()
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> ReplayStats {
        ReplayStats {
            accesses: self.accesses,
            cycles: self.cycles,
            l1: self.l1.stats(),
            l2: self.l2.stats(),
            l3: self.l3.stats(),
            prefetches: self.prefetcher.issued(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Access;

    fn small_config(prefetch: bool) -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 1024,
                line_bytes: 64,
                ways: 2,
            },
            l2: CacheConfig {
                size_bytes: 8 * 1024,
                line_bytes: 64,
                ways: 4,
            },
            l3: CacheConfig {
                size_bytes: 64 * 1024,
                line_bytes: 64,
                ways: 8,
            },
            l1_latency: 4,
            l2_latency: 12,
            l3_latency: 40,
            mem_latency: 200,
            prefetch_fill_cost: 45,
            prefetch: PrefetchConfig {
                enabled: prefetch,
                ..Default::default()
            },
        }
    }

    #[test]
    fn cold_then_warm_latencies() {
        let mut h = Hierarchy::new(small_config(false));
        assert_eq!(h.access(0), 200); // cold: memory
        assert_eq!(h.access(0), 4); // L1 hit
        assert_eq!(h.access(32), 4); // same line
    }

    #[test]
    fn l2_and_l3_hits_after_l1_eviction() {
        let mut h = Hierarchy::new(small_config(false));
        // Touch enough lines to spill L1 (1 KB = 16 lines) but stay in L2.
        for line in 0..64u64 {
            h.access(line * 64);
        }
        // Line 0 evicted from L1 but resident in L2 -> 12 cycles.
        assert_eq!(h.access(0), 12);
    }

    #[test]
    fn prefetching_speeds_up_sequential_scans() {
        let trace: Vec<Access> = (0..4096u64).map(|i| Access::read(i * 64)).collect();
        let mut off = Hierarchy::new(small_config(false));
        let s_off = off.replay(&trace);
        let mut on = Hierarchy::new(small_config(true));
        let s_on = on.replay(&trace);
        assert!(s_on.prefetches > 0);
        assert!(
            s_on.cycles < s_off.cycles,
            "prefetching must help a pure sequential scan: {} vs {}",
            s_on.cycles,
            s_off.cycles
        );
        // A healthy share of prefetches should be useful in a pure stream.
        // (Issued counts include redundant prefetches of already-resident
        // lines — with degree 4 each miss re-requests ~3 known lines — so
        // the useful fraction is bounded by ~1/degree.)
        assert!(s_on.l2.prefetch_hits + s_on.l3.prefetch_hits > s_on.prefetches / 8);
    }

    #[test]
    fn prefetching_does_not_help_random_access() {
        // Pseudo-random line walk over a region much larger than L3.
        let mut addr = 12345u64;
        let trace: Vec<Access> = (0..4096)
            .map(|_| {
                addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
                Access::read((addr % (1 << 22)) & !63)
            })
            .collect();
        let mut off = Hierarchy::new(small_config(false));
        let s_off = off.replay(&trace);
        let mut on = Hierarchy::new(small_config(true));
        let s_on = on.replay(&trace);
        // No stride to learn: few prefetches, and certainly no big win.
        let ratio = s_on.cycles as f64 / s_off.cycles as f64;
        assert!(ratio > 0.95, "random access should not benefit: {ratio}");
    }

    #[test]
    fn replay_stats_accounting() {
        let trace: Vec<Access> = (0..100u64).map(|i| Access::read(i * 64)).collect();
        let mut h = Hierarchy::new(small_config(false));
        let s = h.replay(&trace);
        assert_eq!(s.accesses, 100);
        assert_eq!(s.l1.hits + s.l1.misses, 100);
        assert!(s.cycles_per_access() >= 4.0);
        assert_eq!(ReplayStats::default().cycles_per_access(), 0.0);
    }
}
