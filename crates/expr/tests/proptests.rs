//! Property tests for expression evaluation:
//! * vectorized evaluation agrees with the row-at-a-time reference,
//! * predicate bitmaps agree with per-row evaluation,
//! * aggregate merge is order-insensitive (parallel partials are sound).

use proptest::prelude::*;
use std::sync::Arc;
use uot_expr::{cmp, col, lit, AggSpec, BinOp, CmpOp, Predicate, ScalarExpr};
use uot_storage::{BlockFormat, DataType, Schema, StorageBlock, Value};

fn schema() -> Arc<Schema> {
    Schema::from_pairs(&[
        ("a", DataType::Int32),
        ("b", DataType::Float64),
        ("c", DataType::Int64),
        ("d", DataType::Date),
    ])
}

fn block(rows: &[(i32, f64, i64, i32)], format: BlockFormat) -> StorageBlock {
    let mut b = StorageBlock::new(schema(), format, 1 << 20).unwrap();
    for &(a, bb, c, d) in rows {
        b.append_row(&[Value::I32(a), Value::F64(bb), Value::I64(c), Value::Date(d)])
            .unwrap();
    }
    b
}

fn arb_rows() -> impl Strategy<Value = Vec<(i32, f64, i64, i32)>> {
    proptest::collection::vec(
        (
            -100i32..100,
            -100.0f64..100.0,
            -1000i64..1000,
            -5000i32..5000,
        ),
        1..60,
    )
}

/// Numeric expressions over columns a (i32), b (f64), c (i64).
fn arb_expr() -> impl Strategy<Value = ScalarExpr> {
    let leaf = prop_oneof![
        Just(col(0)),
        Just(col(1)),
        Just(col(2)),
        (-50i32..50).prop_map(lit),
        (-50.0f64..50.0).prop_map(lit),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul)],
        )
            .prop_map(|(l, r, op)| l.bin(op, r))
    })
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    let leaf = (arb_expr(), op, arb_expr()).prop_map(|(l, o, r)| cmp(l, o, r));
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|p| p.negate()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vectorized_matches_row_eval(
        rows in arb_rows(),
        expr in arb_expr(),
        fmt in prop_oneof![Just(BlockFormat::Row), Just(BlockFormat::Column)],
    ) {
        let b = block(&rows, fmt);
        let vec = expr.eval_all(&b).unwrap();
        for r in 0..b.num_rows() {
            let scalar = expr.eval_row(&b, r).unwrap();
            match (&vec, &scalar) {
                (uot_storage::ColumnData::I64(v), Value::I64(s)) => {
                    prop_assert_eq!(v[r], *s)
                }
                (uot_storage::ColumnData::F64(v), Value::F64(s)) => {
                    prop_assert!((v[r] - s).abs() <= 1e-9 * s.abs().max(1.0))
                }
                (uot_storage::ColumnData::I32(v), Value::I32(s)) => {
                    prop_assert_eq!(v[r], *s)
                }
                other => prop_assert!(false, "type mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn gather_is_a_subset_of_eval_all(
        rows in arb_rows(),
        expr in arb_expr(),
    ) {
        let b = block(&rows, BlockFormat::Column);
        let all = expr.eval_all(&b).unwrap();
        let idx: Vec<usize> = (0..b.num_rows()).step_by(2).collect();
        let sub = expr.eval_gather(&b, &idx).unwrap();
        prop_assert_eq!(sub.len(), idx.len());
        for (j, &r) in idx.iter().enumerate() {
            match (&all, &sub) {
                (uot_storage::ColumnData::I64(a), uot_storage::ColumnData::I64(s)) => {
                    prop_assert_eq!(a[r], s[j])
                }
                (uot_storage::ColumnData::F64(a), uot_storage::ColumnData::F64(s)) => {
                    prop_assert_eq!(a[r].to_bits(), s[j].to_bits())
                }
                (uot_storage::ColumnData::I32(a), uot_storage::ColumnData::I32(s)) => {
                    prop_assert_eq!(a[r], s[j])
                }
                other => prop_assert!(false, "type mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn predicates_agree_across_formats(
        rows in arb_rows(),
        pred in arb_pred(),
    ) {
        let r = block(&rows, BlockFormat::Row);
        let c = block(&rows, BlockFormat::Column);
        let bm_r = pred.eval(&r).unwrap();
        let bm_c = pred.eval(&c).unwrap();
        prop_assert_eq!(
            bm_r.iter_ones().collect::<Vec<_>>(),
            bm_c.iter_ones().collect::<Vec<_>>()
        );
    }

    #[test]
    fn demorgan_holds(rows in arb_rows(), p in arb_pred(), q in arb_pred()) {
        let b = block(&rows, BlockFormat::Column);
        // !(p && q) == !p || !q
        let lhs = p.clone().and(q.clone()).negate().eval(&b).unwrap();
        let rhs = p.negate().or(q.negate()).eval(&b).unwrap();
        prop_assert_eq!(
            lhs.iter_ones().collect::<Vec<_>>(),
            rhs.iter_ones().collect::<Vec<_>>()
        );
    }

    #[test]
    fn aggregate_merge_is_partition_invariant(
        rows in arb_rows(),
        split in 0usize..60,
    ) {
        let b = block(&rows, BlockFormat::Column);
        let s = schema();
        let split = split.min(rows.len());
        for spec in [
            AggSpec::sum(col(2)),
            AggSpec::min(col(0)),
            AggSpec::max(col(0)),
            AggSpec::avg(col(1)),
            AggSpec::count_star(),
        ] {
            // whole-input state
            let mut whole = spec.init_state(&s).unwrap();
            if spec.func == uot_expr::AggFunc::CountStar {
                whole.update_count(rows.len());
            } else {
                let data = spec.arg.as_ref().unwrap().eval_all(&b).unwrap();
                whole.update_column(&data).unwrap();
            }
            // split into two partials and merge
            let idx_a: Vec<usize> = (0..split).collect();
            let idx_b: Vec<usize> = (split..rows.len()).collect();
            let mut pa = spec.init_state(&s).unwrap();
            let mut pb = spec.init_state(&s).unwrap();
            if spec.func == uot_expr::AggFunc::CountStar {
                pa.update_count(idx_a.len());
                pb.update_count(idx_b.len());
            } else {
                let arg = spec.arg.as_ref().unwrap();
                if !idx_a.is_empty() {
                    pa.update_column(&arg.eval_gather(&b, &idx_a).unwrap()).unwrap();
                }
                if !idx_b.is_empty() {
                    pb.update_column(&arg.eval_gather(&b, &idx_b).unwrap()).unwrap();
                }
            }
            pa.merge(&pb);
            match (whole.finalize(), pa.finalize()) {
                (Value::F64(w), Value::F64(m)) => {
                    prop_assert!((w - m).abs() <= 1e-9 * w.abs().max(1.0))
                }
                (w, m) => prop_assert_eq!(w, m),
            }
        }
    }
}
