//! Error type for expression evaluation.

use std::fmt;
use uot_storage::StorageError;

/// Errors raised while type-checking or evaluating expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// An operand had a type the operator cannot handle.
    InvalidType {
        /// Where the problem was found.
        context: &'static str,
        /// Offending type name.
        found: String,
    },
    /// Two operands had incompatible types.
    Incompatible {
        /// Left operand's type.
        left: String,
        /// Right operand's type.
        right: String,
        /// What was being attempted.
        context: &'static str,
    },
    /// A column index was out of bounds for the input schema.
    ColumnOutOfRange {
        /// Index requested.
        index: usize,
        /// Schema arity.
        len: usize,
    },
    /// An underlying storage error.
    Storage(StorageError),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::InvalidType { context, found } => {
                write!(f, "invalid type in {context}: {found}")
            }
            ExprError::Incompatible {
                left,
                right,
                context,
            } => write!(f, "incompatible types in {context}: {left} vs {right}"),
            ExprError::ColumnOutOfRange { index, len } => {
                write!(f, "column {index} out of range ({len} columns)")
            }
            ExprError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for ExprError {}

impl From<StorageError> for ExprError {
    fn from(e: StorageError) -> Self {
        ExprError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = ExprError::InvalidType {
            context: "addition",
            found: "Char(4)".into(),
        };
        assert!(e.to_string().contains("addition"));
        assert!(e.to_string().contains("Char(4)"));
    }

    #[test]
    fn storage_errors_convert() {
        let s = StorageError::TableNotFound("x".into());
        let e: ExprError = s.into();
        assert!(matches!(e, ExprError::Storage(_)));
    }
}
