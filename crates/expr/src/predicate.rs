//! Boolean predicates producing selection bitmaps.
//!
//! The select operator evaluates one [`Predicate`] per input block. Numeric
//! and date comparisons between a column and a literal take a typed fast path
//! on column-store blocks; everything else goes through generic vectorized
//! evaluation. String predicates (`=`, `IN`, prefix match) compare against
//! space-padded fixed-width values, matching the storage encoding.

use crate::error::ExprError;
use crate::scalar::ScalarExpr;
use crate::Result;
use uot_storage::{Bitmap, ColumnData, DataType, StorageBlock, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    #[inline]
    fn holds<T: PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// A boolean predicate over one block's rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (select everything).
    True,
    /// Numeric/date comparison of two scalar expressions.
    Cmp {
        /// Left side.
        left: ScalarExpr,
        /// Operator.
        op: CmpOp,
        /// Right side.
        right: ScalarExpr,
    },
    /// Conjunction (empty = true).
    And(Vec<Predicate>),
    /// Disjunction (empty = false).
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// String equality against a `Char(n)` column.
    StrEq {
        /// Column index.
        col: usize,
        /// Comparison value (padded to the column width).
        value: String,
    },
    /// String prefix match (SQL `LIKE 'prefix%'`).
    StrStartsWith {
        /// Column index.
        col: usize,
        /// Required prefix.
        prefix: String,
    },
    /// String membership (SQL `IN (...)`).
    StrIn {
        /// Column index.
        col: usize,
        /// Accepted values.
        values: Vec<String>,
    },
    /// Substring match (SQL `LIKE '%needle%'`).
    StrContains {
        /// Column index.
        col: usize,
        /// Required substring.
        needle: String,
    },
}

/// Build `left op right`.
pub fn cmp(left: ScalarExpr, op: CmpOp, right: ScalarExpr) -> Predicate {
    Predicate::Cmp { left, op, right }
}

/// Build a range predicate `lo <= expr < hi` (the common TPC-H date filter).
pub fn between_half_open(expr: ScalarExpr, lo: Value, hi: Value) -> Predicate {
    Predicate::And(vec![
        cmp(expr.clone(), CmpOp::Ge, ScalarExpr::Literal(lo)),
        cmp(expr, CmpOp::Lt, ScalarExpr::Literal(hi)),
    ])
}

impl Predicate {
    /// Conjoin two predicates.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut a)) => {
                a.insert(0, p);
                Predicate::And(a)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// Disjoin two predicates.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(vec![self, other])
    }

    /// Negate.
    pub fn negate(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// All column indices this predicate reads.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Predicate::True => {}
            Predicate::Cmp { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.referenced_columns(out);
                }
            }
            Predicate::Not(p) => p.referenced_columns(out),
            Predicate::StrEq { col, .. }
            | Predicate::StrStartsWith { col, .. }
            | Predicate::StrIn { col, .. }
            | Predicate::StrContains { col, .. } => out.push(*col),
        }
    }

    /// Evaluate to one selection bit per row of `block`.
    pub fn eval(&self, block: &StorageBlock) -> Result<Bitmap> {
        let n = block.num_rows();
        match self {
            Predicate::True => Ok(Bitmap::ones(n)),
            Predicate::Cmp { left, op, right } => eval_cmp(block, left, *op, right),
            Predicate::And(ps) => {
                let mut acc = Bitmap::ones(n);
                for p in ps {
                    // short-circuit: empty accumulator stays empty
                    if acc.count_ones() == 0 {
                        break;
                    }
                    acc.and_with(&p.eval(block)?);
                }
                Ok(acc)
            }
            Predicate::Or(ps) => {
                let mut acc = Bitmap::zeros(n);
                for p in ps {
                    acc.or_with(&p.eval(block)?);
                }
                Ok(acc)
            }
            Predicate::Not(p) => {
                let mut b = p.eval(block)?;
                b.not_inplace();
                Ok(b)
            }
            Predicate::StrEq { col, value } => eval_str(block, *col, |bytes, width| {
                str_eq_padded(bytes, value, width)
            }),
            Predicate::StrStartsWith { col, prefix } => eval_str(block, *col, |bytes, _w| {
                bytes.len() >= prefix.len() && &bytes[..prefix.len()] == prefix.as_bytes()
            }),
            Predicate::StrIn { col, values } => eval_str(block, *col, |bytes, width| {
                values.iter().any(|v| str_eq_padded(bytes, v, width))
            }),
            Predicate::StrContains { col, needle } => eval_str(block, *col, |bytes, _w| {
                !needle.is_empty() && bytes.windows(needle.len()).any(|w| w == needle.as_bytes())
            }),
        }
    }

    /// Selectivity helper: fraction of rows selected in `block`.
    pub fn selectivity(&self, block: &StorageBlock) -> Result<f64> {
        let n = block.num_rows();
        if n == 0 {
            return Ok(0.0);
        }
        Ok(self.eval(block)?.count_ones() as f64 / n as f64)
    }
}

#[inline]
fn str_eq_padded(bytes: &[u8], value: &str, width: usize) -> bool {
    let v = value.as_bytes();
    if v.len() > width {
        return false;
    }
    bytes[..v.len()] == *v && bytes[v.len()..].iter().all(|&b| b == b' ')
}

fn eval_str(
    block: &StorageBlock,
    col: usize,
    pred: impl Fn(&[u8], usize) -> bool,
) -> Result<Bitmap> {
    let schema = block.schema();
    if col >= schema.len() {
        return Err(ExprError::ColumnOutOfRange {
            index: col,
            len: schema.len(),
        });
    }
    let width = match schema.dtype(col) {
        DataType::Char(n) => n as usize,
        other => {
            return Err(ExprError::InvalidType {
                context: "string predicate",
                found: other.name(),
            })
        }
    };
    let n = block.num_rows();
    let mut bm = Bitmap::zeros(n);
    if let Some(ColumnData::Char { width: w, data }) = block.column_data(col) {
        for (i, chunk) in data.chunks_exact(*w).enumerate() {
            if pred(chunk, *w) {
                bm.set(i);
            }
        }
    } else {
        for i in 0..n {
            if pred(block.char_at(i, col), width) {
                bm.set(i);
            }
        }
    }
    Ok(bm)
}

/// Comparison evaluation with a `Col op Literal` fast path on column blocks.
fn eval_cmp(
    block: &StorageBlock,
    left: &ScalarExpr,
    op: CmpOp,
    right: &ScalarExpr,
) -> Result<Bitmap> {
    let n = block.num_rows();
    // Fast path: bare column vs literal on a column-store block.
    if let (Some(c), ScalarExpr::Literal(v)) = (left.as_col(), right) {
        if let Some(col) = block.column_data(c) {
            if let Some(bm) = cmp_slice_literal(col, op, v, n) {
                return Ok(bm);
            }
        }
    }
    // Mirrored fast path (literal on the left).
    if let (ScalarExpr::Literal(v), Some(c)) = (left, right.as_col()) {
        if let Some(col) = block.column_data(c) {
            let flipped = match op {
                CmpOp::Eq => CmpOp::Eq,
                CmpOp::Ne => CmpOp::Ne,
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
            };
            if let Some(bm) = cmp_slice_literal(col, flipped, v, n) {
                return Ok(bm);
            }
        }
    }
    // Generic path: evaluate both sides, compare in a common numeric domain.
    let l = left.eval_all(block)?;
    let r = right.eval_all(block)?;
    cmp_columns(&l, op, &r, n)
}

/// Compare a typed column slice against a literal. Returns `None` when the
/// (column type, literal type) pair is not a supported fast path.
fn cmp_slice_literal(col: &ColumnData, op: CmpOp, v: &Value, n: usize) -> Option<Bitmap> {
    let mut bm = Bitmap::zeros(n);
    match (col, v) {
        (ColumnData::I32(xs), Value::I32(y)) => {
            for (i, x) in xs.iter().enumerate() {
                if op.holds(*x, *y) {
                    bm.set(i);
                }
            }
        }
        (ColumnData::I64(xs), Value::I64(y)) => {
            for (i, x) in xs.iter().enumerate() {
                if op.holds(*x, *y) {
                    bm.set(i);
                }
            }
        }
        (ColumnData::F64(xs), Value::F64(y)) => {
            for (i, x) in xs.iter().enumerate() {
                if op.holds(*x, *y) {
                    bm.set(i);
                }
            }
        }
        (ColumnData::Date(xs), Value::Date(y)) => {
            for (i, x) in xs.iter().enumerate() {
                if op.holds(*x, *y) {
                    bm.set(i);
                }
            }
        }
        _ => return None,
    }
    Some(bm)
}

/// Generic elementwise comparison of two evaluated columns.
fn cmp_columns(l: &ColumnData, op: CmpOp, r: &ColumnData, n: usize) -> Result<Bitmap> {
    let mut bm = Bitmap::zeros(n);
    // Date vs Date compares day counts; all integer combinations widen to
    // i64; any float side compares as f64.
    match (l, r) {
        (ColumnData::Date(a), ColumnData::Date(b)) => {
            for i in 0..n {
                if op.holds(a[i], b[i]) {
                    bm.set(i);
                }
            }
        }
        (ColumnData::Char { .. }, _) | (_, ColumnData::Char { .. }) => {
            return Err(ExprError::InvalidType {
                context: "numeric comparison",
                found: "Char".into(),
            });
        }
        (ColumnData::Date(_), _) | (_, ColumnData::Date(_)) => {
            return Err(ExprError::Incompatible {
                left: name_of(l),
                right: name_of(r),
                context: "comparison",
            });
        }
        _ => {
            let fl = matches!(l, ColumnData::F64(_)) || matches!(r, ColumnData::F64(_));
            if fl {
                let a = to_f64(l);
                let b = to_f64(r);
                for i in 0..n {
                    if op.holds(a[i], b[i]) {
                        bm.set(i);
                    }
                }
            } else {
                let a = to_i64(l);
                let b = to_i64(r);
                for i in 0..n {
                    if op.holds(a[i], b[i]) {
                        bm.set(i);
                    }
                }
            }
        }
    }
    Ok(bm)
}

fn name_of(c: &ColumnData) -> String {
    match c {
        ColumnData::I32(_) => "Int32".into(),
        ColumnData::I64(_) => "Int64".into(),
        ColumnData::F64(_) => "Float64".into(),
        ColumnData::Date(_) => "Date".into(),
        ColumnData::Char { .. } => "Char".into(),
    }
}

fn to_i64(c: &ColumnData) -> Vec<i64> {
    match c {
        ColumnData::I32(v) => v.iter().map(|&x| x as i64).collect(),
        ColumnData::I64(v) => v.clone(),
        _ => unreachable!("checked by caller"),
    }
}

fn to_f64(c: &ColumnData) -> Vec<f64> {
    match c {
        ColumnData::I32(v) => v.iter().map(|&x| x as f64).collect(),
        ColumnData::I64(v) => v.iter().map(|&x| x as f64).collect(),
        ColumnData::F64(v) => v.clone(),
        _ => unreachable!("checked by caller"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{col, lit};
    use uot_storage::{BlockFormat, Schema, Value};

    fn block(format: BlockFormat) -> StorageBlock {
        let s = Schema::from_pairs(&[
            ("qty", DataType::Int32),
            ("price", DataType::Float64),
            ("d", DataType::Date),
            ("flag", DataType::Char(2)),
            ("big", DataType::Int64),
        ]);
        let mut b = StorageBlock::new(s, format, 4096).unwrap();
        for i in 0..10 {
            b.append_row(&[
                Value::I32(i),
                Value::F64(i as f64 * 1.5),
                Value::Date(100 + i),
                Value::Str(if i % 2 == 0 { "A" } else { "BX" }.into()),
                Value::I64(1000 - i as i64),
            ])
            .unwrap();
        }
        b
    }

    fn ones(p: &Predicate, b: &StorageBlock) -> Vec<usize> {
        p.eval(b).unwrap().iter_ones().collect()
    }

    #[test]
    fn numeric_comparisons_both_formats() {
        for fmt in [BlockFormat::Row, BlockFormat::Column] {
            let b = block(fmt);
            assert_eq!(ones(&cmp(col(0), CmpOp::Lt, lit(3i32)), &b), vec![0, 1, 2]);
            assert_eq!(ones(&cmp(col(0), CmpOp::Ge, lit(8i32)), &b), vec![8, 9]);
            assert_eq!(ones(&cmp(col(0), CmpOp::Eq, lit(5i32)), &b), vec![5]);
            assert_eq!(ones(&cmp(col(0), CmpOp::Ne, lit(5i32)), &b).len(), 9);
            assert_eq!(
                ones(&cmp(col(4), CmpOp::Gt, lit(997i64)), &b),
                vec![0, 1, 2]
            );
            assert_eq!(ones(&cmp(col(1), CmpOp::Le, lit(3.0)), &b), vec![0, 1, 2]);
        }
    }

    #[test]
    fn literal_on_left_flips() {
        for fmt in [BlockFormat::Row, BlockFormat::Column] {
            let b = block(fmt);
            // 3 > qty  <=>  qty < 3
            assert_eq!(ones(&cmp(lit(3i32), CmpOp::Gt, col(0)), &b), vec![0, 1, 2]);
        }
    }

    #[test]
    fn date_range_half_open() {
        let b = block(BlockFormat::Column);
        let p = between_half_open(col(2), Value::Date(102), Value::Date(105));
        assert_eq!(ones(&p, &b), vec![2, 3, 4]);
    }

    #[test]
    fn and_or_not() {
        let b = block(BlockFormat::Column);
        let p = cmp(col(0), CmpOp::Ge, lit(2i32)).and(cmp(col(0), CmpOp::Lt, lit(5i32)));
        assert_eq!(ones(&p, &b), vec![2, 3, 4]);
        let p = cmp(col(0), CmpOp::Lt, lit(1i32)).or(cmp(col(0), CmpOp::Ge, lit(9i32)));
        assert_eq!(ones(&p, &b), vec![0, 9]);
        let p = cmp(col(0), CmpOp::Lt, lit(8i32)).negate();
        assert_eq!(ones(&p, &b), vec![8, 9]);
    }

    #[test]
    fn and_short_circuits_empty() {
        let b = block(BlockFormat::Column);
        let p = cmp(col(0), CmpOp::Lt, lit(0i32)).and(cmp(col(0), CmpOp::Ge, lit(0i32)));
        assert!(ones(&p, &b).is_empty());
    }

    #[test]
    fn true_selects_all() {
        let b = block(BlockFormat::Row);
        assert_eq!(ones(&Predicate::True, &b).len(), 10);
        assert_eq!(Predicate::True.selectivity(&b).unwrap(), 1.0);
    }

    #[test]
    fn string_predicates_both_formats() {
        for fmt in [BlockFormat::Row, BlockFormat::Column] {
            let b = block(fmt);
            let eq = Predicate::StrEq {
                col: 3,
                value: "A".into(),
            };
            assert_eq!(ones(&eq, &b), vec![0, 2, 4, 6, 8]);
            let pre = Predicate::StrStartsWith {
                col: 3,
                prefix: "B".into(),
            };
            assert_eq!(ones(&pre, &b), vec![1, 3, 5, 7, 9]);
            let isin = Predicate::StrIn {
                col: 3,
                values: vec!["A".into(), "BX".into()],
            };
            assert_eq!(ones(&isin, &b).len(), 10);
        }
    }

    #[test]
    fn contains_matches_substrings() {
        let s = Schema::from_pairs(&[("name", DataType::Char(12))]);
        for fmt in [BlockFormat::Row, BlockFormat::Column] {
            let mut b = StorageBlock::new(s.clone(), fmt, 1024).unwrap();
            for v in ["dark green", "greenish", "red", "gre en"] {
                b.append_row(&[Value::Str(v.into())]).unwrap();
            }
            let p = Predicate::StrContains {
                col: 0,
                needle: "green".into(),
            };
            assert_eq!(ones(&p, &b), vec![0, 1]);
            // empty needle matches nothing (degenerate LIKE '%%' is excluded)
            let p = Predicate::StrContains {
                col: 0,
                needle: String::new(),
            };
            assert!(ones(&p, &b).is_empty());
            // longer than the column width
            let p = Predicate::StrContains {
                col: 0,
                needle: "x".repeat(20),
            };
            assert!(ones(&p, &b).is_empty());
        }
    }

    #[test]
    fn padded_equality_is_exact() {
        // "A" must not equal "AX"; "A " padding must equal "A".
        let b = block(BlockFormat::Column);
        let p = Predicate::StrEq {
            col: 3,
            value: "AX".into(),
        };
        assert!(ones(&p, &b).is_empty());
        let p = Predicate::StrEq {
            col: 3,
            value: "A ".into(),
        };
        // "A " pads to width 2 == stored "A " -> matches evens.
        assert_eq!(ones(&p, &b).len(), 5);
        // Longer than the column width can never match.
        let p = Predicate::StrEq {
            col: 3,
            value: "ABC".into(),
        };
        assert!(ones(&p, &b).is_empty());
    }

    #[test]
    fn expression_comparison() {
        let b = block(BlockFormat::Column);
        // qty * 2 >= 10  <=>  qty >= 5
        let p = cmp(col(0).mul(lit(2i32)), CmpOp::Ge, lit(10i64));
        assert_eq!(ones(&p, &b), vec![5, 6, 7, 8, 9]);
        // price > qty (mixed i32/f64 -> f64 compare)
        let p = cmp(col(1), CmpOp::Gt, col(0));
        assert_eq!(ones(&p, &b).len(), 9); // all but row 0 (0.0 > 0 false)
    }

    #[test]
    fn selectivity_fraction() {
        let b = block(BlockFormat::Column);
        let p = cmp(col(0), CmpOp::Lt, lit(3i32));
        assert!((p.selectivity(&b).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn type_errors() {
        let b = block(BlockFormat::Column);
        // string column in numeric comparison
        let p = cmp(col(3), CmpOp::Eq, lit(1i32));
        assert!(p.eval(&b).is_err());
        // date vs integer literal mismatch (generic path)
        let p = cmp(col(2), CmpOp::Eq, lit(100i32));
        assert!(p.eval(&b).is_err());
        // string predicate on non-string column
        let p = Predicate::StrEq {
            col: 0,
            value: "x".into(),
        };
        assert!(p.eval(&b).is_err());
        // out of range column
        let p = Predicate::StrEq {
            col: 42,
            value: "x".into(),
        };
        assert!(matches!(
            p.eval(&b),
            Err(ExprError::ColumnOutOfRange { .. })
        ));
    }

    #[test]
    fn referenced_columns_walks_tree() {
        let p = cmp(col(0), CmpOp::Lt, lit(1i32))
            .and(Predicate::StrEq {
                col: 3,
                value: "A".into(),
            })
            .or(cmp(col(1), CmpOp::Gt, col(4)).negate());
        let mut cols = vec![];
        p.referenced_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols, vec![0, 1, 3, 4]);
    }

    #[test]
    fn and_builder_flattens() {
        let p = Predicate::True.and(cmp(col(0), CmpOp::Lt, lit(1i32)));
        assert!(matches!(p, Predicate::Cmp { .. }));
        let p = cmp(col(0), CmpOp::Lt, lit(1i32))
            .and(cmp(col(0), CmpOp::Gt, lit(0i32)))
            .and(cmp(col(1), CmpOp::Gt, lit(0.0)));
        if let Predicate::And(ps) = &p {
            assert_eq!(ps.len(), 3);
        } else {
            panic!("expected flattened And");
        }
    }
}
