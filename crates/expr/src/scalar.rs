//! Scalar expressions over storage blocks.
//!
//! A [`ScalarExpr`] is evaluated against a block, producing one typed
//! [`ColumnData`] vector for the requested rows. TPC-H's arithmetic — e.g.
//! `l_extendedprice * (1 - l_discount)` — is covered by column references,
//! literals and the four binary operators with the usual numeric promotion
//! (any float operand promotes the expression to `Float64`; integer-only
//! expressions stay `Int64`).

use crate::error::ExprError;
use crate::Result;
use uot_storage::{ColumnData, DataType, Schema, StorageBlock, Value};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division on integer operands).
    Div,
}

impl BinOp {
    fn apply_i64(self, a: i64, b: i64) -> Result<i64> {
        Ok(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return Err(ExprError::InvalidType {
                        context: "integer division by zero",
                        found: "0".into(),
                    });
                }
                a.wrapping_div(b)
            }
        })
    }

    fn apply_f64(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Reference to input column `usize` (by position).
    Col(usize),
    /// A constant.
    Literal(Value),
    /// Binary arithmetic.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// `EXTRACT(YEAR FROM date_expr)` — produces an `Int32` year.
    Year(Box<ScalarExpr>),
    /// `CASE WHEN pred THEN a ELSE b END`. The predicate is evaluated over
    /// the whole block (vectorized) and the branches selected per row.
    Case {
        /// Branch condition.
        when: Box<crate::predicate::Predicate>,
        /// Value when the condition holds.
        then: Box<ScalarExpr>,
        /// Value otherwise.
        els: Box<ScalarExpr>,
    },
}

/// `col(i)` convenience constructor.
pub fn col(i: usize) -> ScalarExpr {
    ScalarExpr::Col(i)
}

/// `lit(v)` convenience constructor.
pub fn lit(v: impl Into<Value>) -> ScalarExpr {
    ScalarExpr::Literal(v.into())
}

#[allow(clippy::should_implement_trait)] // add/sub/mul/div are expression
                                         // builders returning `ScalarExpr`, not arithmetic on evaluated values
impl ScalarExpr {
    /// Build `self op other`.
    pub fn bin(self, op: BinOp, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Build `self + other`.
    pub fn add(self, other: ScalarExpr) -> ScalarExpr {
        self.bin(BinOp::Add, other)
    }

    /// Build `self - other`.
    pub fn sub(self, other: ScalarExpr) -> ScalarExpr {
        self.bin(BinOp::Sub, other)
    }

    /// Build `self * other`.
    pub fn mul(self, other: ScalarExpr) -> ScalarExpr {
        self.bin(BinOp::Mul, other)
    }

    /// Build `self / other`.
    pub fn div(self, other: ScalarExpr) -> ScalarExpr {
        self.bin(BinOp::Div, other)
    }

    /// Build `EXTRACT(YEAR FROM self)`.
    pub fn year(self) -> ScalarExpr {
        ScalarExpr::Year(Box::new(self))
    }

    /// Build `CASE WHEN when THEN self ELSE els END`.
    pub fn case_when(
        when: crate::predicate::Predicate,
        then: ScalarExpr,
        els: ScalarExpr,
    ) -> ScalarExpr {
        ScalarExpr::Case {
            when: Box::new(when),
            then: Box::new(then),
            els: Box::new(els),
        }
    }

    /// The type this expression produces over `schema`.
    pub fn output_type(&self, schema: &Schema) -> Result<DataType> {
        match self {
            ScalarExpr::Col(i) => {
                if *i >= schema.len() {
                    return Err(ExprError::ColumnOutOfRange {
                        index: *i,
                        len: schema.len(),
                    });
                }
                Ok(schema.dtype(*i))
            }
            ScalarExpr::Literal(v) => Ok(v.data_type()),
            ScalarExpr::Bin { op: _, left, right } => {
                let l = left.output_type(schema)?;
                let r = right.output_type(schema)?;
                let numeric = |t: DataType| {
                    matches!(t, DataType::Int32 | DataType::Int64 | DataType::Float64)
                };
                if !numeric(l) || !numeric(r) {
                    return Err(ExprError::Incompatible {
                        left: l.name(),
                        right: r.name(),
                        context: "arithmetic",
                    });
                }
                if l == DataType::Float64 || r == DataType::Float64 {
                    Ok(DataType::Float64)
                } else {
                    Ok(DataType::Int64)
                }
            }
            ScalarExpr::Year(e) => {
                let t = e.output_type(schema)?;
                if t != DataType::Date {
                    return Err(ExprError::InvalidType {
                        context: "YEAR",
                        found: t.name(),
                    });
                }
                Ok(DataType::Int32)
            }
            ScalarExpr::Case { then, els, .. } => {
                let t = then.output_type(schema)?;
                let e = els.output_type(schema)?;
                if t == e {
                    return Ok(t);
                }
                let numeric = |t: DataType| {
                    matches!(t, DataType::Int32 | DataType::Int64 | DataType::Float64)
                };
                if numeric(t) && numeric(e) {
                    if t == DataType::Float64 || e == DataType::Float64 {
                        Ok(DataType::Float64)
                    } else {
                        Ok(DataType::Int64)
                    }
                } else {
                    Err(ExprError::Incompatible {
                        left: t.name(),
                        right: e.name(),
                        context: "CASE branches",
                    })
                }
            }
        }
    }

    /// All column indices this expression reads.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            ScalarExpr::Col(i) => out.push(*i),
            ScalarExpr::Literal(_) => {}
            ScalarExpr::Bin { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            ScalarExpr::Year(e) => e.referenced_columns(out),
            ScalarExpr::Case { when, then, els } => {
                when.referenced_columns(out);
                then.referenced_columns(out);
                els.referenced_columns(out);
            }
        }
    }

    /// True when this expression is a bare column reference.
    pub fn as_col(&self) -> Option<usize> {
        match self {
            ScalarExpr::Col(i) => Some(*i),
            _ => None,
        }
    }

    /// Evaluate the expression for one row (slow path: sorting, tests).
    pub fn eval_row(&self, block: &StorageBlock, row: usize) -> Result<Value> {
        match self {
            ScalarExpr::Col(i) => Ok(block.value_at(row, *i)?),
            ScalarExpr::Literal(v) => Ok(v.clone()),
            ScalarExpr::Bin { op, left, right } => {
                let l = left.eval_row(block, row)?;
                let r = right.eval_row(block, row)?;
                match (&l, &r) {
                    (Value::F64(_), _) | (_, Value::F64(_)) => {
                        let (a, b) = (
                            l.to_f64_lossy().ok_or(ExprError::InvalidType {
                                context: "arithmetic",
                                found: format!("{l:?}"),
                            })?,
                            r.to_f64_lossy().ok_or(ExprError::InvalidType {
                                context: "arithmetic",
                                found: format!("{r:?}"),
                            })?,
                        );
                        Ok(Value::F64(op.apply_f64(a, b)))
                    }
                    _ => {
                        let a = match l {
                            Value::I32(v) => v as i64,
                            Value::I64(v) => v,
                            other => {
                                return Err(ExprError::InvalidType {
                                    context: "arithmetic",
                                    found: format!("{other:?}"),
                                })
                            }
                        };
                        let b = match r {
                            Value::I32(v) => v as i64,
                            Value::I64(v) => v,
                            other => {
                                return Err(ExprError::InvalidType {
                                    context: "arithmetic",
                                    found: format!("{other:?}"),
                                })
                            }
                        };
                        Ok(Value::I64(op.apply_i64(a, b)?))
                    }
                }
            }
            ScalarExpr::Year(e) => {
                let v = e.eval_row(block, row)?;
                match v {
                    Value::Date(d) => Ok(Value::I32(uot_storage::date_to_ymd(d).0)),
                    other => Err(ExprError::InvalidType {
                        context: "YEAR",
                        found: format!("{other:?}"),
                    }),
                }
            }
            ScalarExpr::Case { when, then, els } => {
                // Row path evaluates the predicate for the whole block; used
                // only on slow paths.
                let bm = when.eval(block)?;
                if bm.get(row) {
                    then.eval_row(block, row)
                } else {
                    els.eval_row(block, row)
                }
            }
        }
    }

    /// Evaluate the expression for the given `rows` of `block`, producing a
    /// [`ColumnData`] of `rows.len()` values.
    pub fn eval_gather(&self, block: &StorageBlock, rows: &[usize]) -> Result<ColumnData> {
        match self {
            ScalarExpr::Col(i) => gather_column(block, *i, rows),
            ScalarExpr::Literal(v) => broadcast(v, rows.len()),
            ScalarExpr::Bin { op, left, right } => {
                let l = left.eval_numeric(block, rows)?;
                let r = right.eval_numeric(block, rows)?;
                combine(*op, l, r)
            }
            ScalarExpr::Year(e) => year_of(e.eval_gather(block, rows)?),
            ScalarExpr::Case { when, then, els } => {
                let bm = when.eval(block)?;
                let mask: Vec<bool> = rows.iter().map(|&r| bm.get(r)).collect();
                let t = then.eval_gather(block, rows)?;
                let e = els.eval_gather(block, rows)?;
                merge_case(&mask, t, e)
            }
        }
    }

    /// Evaluate over **all** rows of the block.
    pub fn eval_all(&self, block: &StorageBlock) -> Result<ColumnData> {
        match self {
            ScalarExpr::Col(i) => gather_all(block, *i),
            ScalarExpr::Literal(v) => broadcast(v, block.num_rows()),
            ScalarExpr::Bin { op, left, right } => {
                let l = left.eval_numeric_all(block)?;
                let r = right.eval_numeric_all(block)?;
                combine(*op, l, r)
            }
            ScalarExpr::Year(e) => year_of(e.eval_all(block)?),
            ScalarExpr::Case { when, then, els } => {
                let bm = when.eval(block)?;
                let mask: Vec<bool> = (0..block.num_rows()).map(|r| bm.get(r)).collect();
                let t = then.eval_all(block)?;
                let e = els.eval_all(block)?;
                merge_case(&mask, t, e)
            }
        }
    }

    fn eval_numeric(&self, block: &StorageBlock, rows: &[usize]) -> Result<NumVec> {
        NumVec::from_column(self.eval_gather(block, rows)?)
    }

    fn eval_numeric_all(&self, block: &StorageBlock) -> Result<NumVec> {
        NumVec::from_column(self.eval_all(block)?)
    }
}

/// Numeric intermediate used inside arithmetic.
enum NumVec {
    I(Vec<i64>),
    F(Vec<f64>),
}

impl NumVec {
    fn from_column(c: ColumnData) -> Result<NumVec> {
        Ok(match c {
            ColumnData::I32(v) => NumVec::I(v.into_iter().map(i64::from).collect()),
            ColumnData::I64(v) => NumVec::I(v),
            ColumnData::F64(v) => NumVec::F(v),
            ColumnData::Date(_) => {
                return Err(ExprError::InvalidType {
                    context: "arithmetic",
                    found: "Date".into(),
                })
            }
            ColumnData::Char { .. } => {
                return Err(ExprError::InvalidType {
                    context: "arithmetic",
                    found: "Char".into(),
                })
            }
        })
    }
}

fn combine(op: BinOp, l: NumVec, r: NumVec) -> Result<ColumnData> {
    Ok(match (l, r) {
        (NumVec::I(a), NumVec::I(b)) => {
            let mut out = Vec::with_capacity(a.len());
            for (x, y) in a.into_iter().zip(b) {
                out.push(op.apply_i64(x, y)?);
            }
            ColumnData::I64(out)
        }
        (NumVec::F(a), NumVec::F(b)) => ColumnData::F64(
            a.into_iter()
                .zip(b)
                .map(|(x, y)| op.apply_f64(x, y))
                .collect(),
        ),
        (NumVec::I(a), NumVec::F(b)) => ColumnData::F64(
            a.into_iter()
                .zip(b)
                .map(|(x, y)| op.apply_f64(x as f64, y))
                .collect(),
        ),
        (NumVec::F(a), NumVec::I(b)) => ColumnData::F64(
            a.into_iter()
                .zip(b)
                .map(|(x, y)| op.apply_f64(x, y as f64))
                .collect(),
        ),
    })
}

/// Map a `Date` column to its calendar years.
fn year_of(c: ColumnData) -> Result<ColumnData> {
    match c {
        ColumnData::Date(v) => Ok(ColumnData::I32(
            v.into_iter()
                .map(|d| uot_storage::date_to_ymd(d).0)
                .collect(),
        )),
        other => Err(ExprError::InvalidType {
            context: "YEAR",
            found: match other {
                ColumnData::I32(_) => "Int32".into(),
                ColumnData::I64(_) => "Int64".into(),
                ColumnData::F64(_) => "Float64".into(),
                ColumnData::Char { .. } => "Char".into(),
                ColumnData::Date(_) => unreachable!(),
            },
        }),
    }
}

/// Per-row branch selection for CASE: `mask[i] ? then[i] : else[i]`.
fn merge_case(mask: &[bool], t: ColumnData, e: ColumnData) -> Result<ColumnData> {
    fn pick<T: Copy>(mask: &[bool], t: &[T], e: &[T]) -> Vec<T> {
        mask.iter()
            .enumerate()
            .map(|(i, &m)| if m { t[i] } else { e[i] })
            .collect()
    }
    Ok(match (t, e) {
        (ColumnData::I32(a), ColumnData::I32(b)) => ColumnData::I32(pick(mask, &a, &b)),
        (ColumnData::I64(a), ColumnData::I64(b)) => ColumnData::I64(pick(mask, &a, &b)),
        (ColumnData::F64(a), ColumnData::F64(b)) => ColumnData::F64(pick(mask, &a, &b)),
        (ColumnData::Date(a), ColumnData::Date(b)) => ColumnData::Date(pick(mask, &a, &b)),
        (
            ColumnData::Char {
                width: wa,
                data: da,
            },
            ColumnData::Char {
                width: wb,
                data: db,
            },
        ) if wa == wb => {
            let mut out = Vec::with_capacity(da.len());
            for (i, &m) in mask.iter().enumerate() {
                let src = if m { &da } else { &db };
                out.extend_from_slice(&src[i * wa..(i + 1) * wa]);
            }
            ColumnData::Char {
                width: wa,
                data: out,
            }
        }
        // Mixed numeric: promote both sides to f64 or i64.
        (t, e) => {
            let num = |c: &ColumnData| {
                matches!(
                    c,
                    ColumnData::I32(_) | ColumnData::I64(_) | ColumnData::F64(_)
                )
            };
            if !num(&t) || !num(&e) {
                return Err(ExprError::Incompatible {
                    left: format!("{t:?}").chars().take(12).collect(),
                    right: format!("{e:?}").chars().take(12).collect(),
                    context: "CASE branches",
                });
            }
            let f = matches!(t, ColumnData::F64(_)) || matches!(e, ColumnData::F64(_));
            if f {
                let (a, b) = (to_f64_vec(t), to_f64_vec(e));
                ColumnData::F64(pick(mask, &a, &b))
            } else {
                let (a, b) = (to_i64_vec(t), to_i64_vec(e));
                ColumnData::I64(pick(mask, &a, &b))
            }
        }
    })
}

fn to_f64_vec(c: ColumnData) -> Vec<f64> {
    match c {
        ColumnData::I32(v) => v.into_iter().map(|x| x as f64).collect(),
        ColumnData::I64(v) => v.into_iter().map(|x| x as f64).collect(),
        ColumnData::F64(v) => v,
        _ => unreachable!("checked by caller"),
    }
}

fn to_i64_vec(c: ColumnData) -> Vec<i64> {
    match c {
        ColumnData::I32(v) => v.into_iter().map(i64::from).collect(),
        ColumnData::I64(v) => v,
        _ => unreachable!("checked by caller"),
    }
}

fn broadcast(v: &Value, n: usize) -> Result<ColumnData> {
    Ok(match v {
        Value::I32(x) => ColumnData::I32(vec![*x; n]),
        Value::I64(x) => ColumnData::I64(vec![*x; n]),
        Value::F64(x) => ColumnData::F64(vec![*x; n]),
        Value::Date(x) => ColumnData::Date(vec![*x; n]),
        Value::Str(s) => {
            let width = s.len();
            let mut data = Vec::with_capacity(width * n);
            for _ in 0..n {
                data.extend_from_slice(s.as_bytes());
            }
            ColumnData::Char { width, data }
        }
    })
}

/// Gather column `i` of `block` at `rows` into a fresh [`ColumnData`].
pub fn gather_column(block: &StorageBlock, i: usize, rows: &[usize]) -> Result<ColumnData> {
    if i >= block.schema().len() {
        return Err(ExprError::ColumnOutOfRange {
            index: i,
            len: block.schema().len(),
        });
    }
    // Column-store fast path: gather from the typed slice.
    if let Some(col) = block.column_data(i) {
        return Ok(match col {
            ColumnData::I32(v) => ColumnData::I32(rows.iter().map(|&r| v[r]).collect()),
            ColumnData::I64(v) => ColumnData::I64(rows.iter().map(|&r| v[r]).collect()),
            ColumnData::F64(v) => ColumnData::F64(rows.iter().map(|&r| v[r]).collect()),
            ColumnData::Date(v) => ColumnData::Date(rows.iter().map(|&r| v[r]).collect()),
            ColumnData::Char { width, data } => {
                let mut out = Vec::with_capacity(width * rows.len());
                for &r in rows {
                    out.extend_from_slice(&data[r * width..(r + 1) * width]);
                }
                ColumnData::Char {
                    width: *width,
                    data: out,
                }
            }
        });
    }
    // Row-store path: strided reads.
    Ok(match block.schema().dtype(i) {
        DataType::Int32 => ColumnData::I32(rows.iter().map(|&r| block.i32_at(r, i)).collect()),
        DataType::Int64 => ColumnData::I64(rows.iter().map(|&r| block.i64_at(r, i)).collect()),
        DataType::Float64 => ColumnData::F64(rows.iter().map(|&r| block.f64_at(r, i)).collect()),
        DataType::Date => ColumnData::Date(rows.iter().map(|&r| block.date_at(r, i)).collect()),
        DataType::Char(n) => {
            let width = n as usize;
            let mut data = Vec::with_capacity(width * rows.len());
            for &r in rows {
                data.extend_from_slice(block.char_at(r, i));
            }
            ColumnData::Char { width, data }
        }
    })
}

/// Gather the given `rows` out of an already-materialized column vector.
pub fn gather_from(data: &ColumnData, rows: &[usize]) -> ColumnData {
    match data {
        ColumnData::I32(v) => ColumnData::I32(rows.iter().map(|&r| v[r]).collect()),
        ColumnData::I64(v) => ColumnData::I64(rows.iter().map(|&r| v[r]).collect()),
        ColumnData::F64(v) => ColumnData::F64(rows.iter().map(|&r| v[r]).collect()),
        ColumnData::Date(v) => ColumnData::Date(rows.iter().map(|&r| v[r]).collect()),
        ColumnData::Char { width, data } => {
            let mut out = Vec::with_capacity(width * rows.len());
            for &r in rows {
                out.extend_from_slice(&data[r * width..(r + 1) * width]);
            }
            ColumnData::Char {
                width: *width,
                data: out,
            }
        }
    }
}

/// Gather all rows of column `i` (clones the column for column blocks).
pub fn gather_all(block: &StorageBlock, i: usize) -> Result<ColumnData> {
    if i >= block.schema().len() {
        return Err(ExprError::ColumnOutOfRange {
            index: i,
            len: block.schema().len(),
        });
    }
    if let Some(col) = block.column_data(i) {
        return Ok(col.clone());
    }
    let rows: Vec<usize> = (0..block.num_rows()).collect();
    gather_column(block, i, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uot_storage::{BlockFormat, Schema};

    fn block(format: BlockFormat) -> StorageBlock {
        let s = Schema::from_pairs(&[
            ("price", DataType::Float64),
            ("disc", DataType::Float64),
            ("qty", DataType::Int32),
            ("d", DataType::Date),
            ("tag", DataType::Char(3)),
        ]);
        let mut b = StorageBlock::new(s, format, 4096).unwrap();
        for i in 0..6 {
            b.append_row(&[
                Value::F64(100.0 + i as f64),
                Value::F64(0.1 * i as f64),
                Value::I32(i),
                Value::Date(500 + i),
                Value::Str(format!("t{i}")),
            ])
            .unwrap();
        }
        b
    }

    #[test]
    fn tpch_revenue_expression() {
        // l_extendedprice * (1 - l_discount)
        let e = col(0).mul(lit(1.0).sub(col(1)));
        for fmt in [BlockFormat::Row, BlockFormat::Column] {
            let b = block(fmt);
            let out = e.eval_all(&b).unwrap();
            let v = out.as_f64();
            assert_eq!(v.len(), 6);
            assert!((v[0] - 100.0).abs() < 1e-9);
            assert!((v[2] - 102.0 * 0.8).abs() < 1e-9);
        }
    }

    #[test]
    fn gather_respects_row_selection() {
        let b = block(BlockFormat::Column);
        let e = col(2);
        let out = e.eval_gather(&b, &[1, 3, 5]).unwrap();
        assert_eq!(out.as_i32(), &[1, 3, 5]);
        // char gather
        let t = col(4).eval_gather(&b, &[0, 5]).unwrap();
        let (w, data) = t.as_char();
        assert_eq!(w, 3);
        assert_eq!(data, b"t0 t5 ");
    }

    #[test]
    fn row_and_column_eval_agree() {
        let e = col(0).add(col(2).mul(lit(2.0)));
        let r = e.eval_all(&block(BlockFormat::Row)).unwrap();
        let c = e.eval_all(&block(BlockFormat::Column)).unwrap();
        assert_eq!(r.as_f64(), c.as_f64());
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let e = col(2).mul(lit(3i32)).add(lit(1i64));
        let b = block(BlockFormat::Column);
        let out = e.eval_all(&b).unwrap();
        assert_eq!(out.as_i64(), &[1, 4, 7, 10, 13, 16]);
        assert_eq!(e.output_type(b.schema()).unwrap(), DataType::Int64);
    }

    #[test]
    fn mixed_arithmetic_promotes_to_float() {
        let b = block(BlockFormat::Column);
        let e = col(2).add(col(0));
        assert_eq!(e.output_type(b.schema()).unwrap(), DataType::Float64);
        let out = e.eval_all(&b).unwrap();
        assert!((out.as_f64()[1] - 102.0).abs() < 1e-9);
    }

    #[test]
    fn literal_broadcast() {
        let b = block(BlockFormat::Row);
        let out = lit(7i32).eval_gather(&b, &[0, 1]).unwrap();
        assert_eq!(out.as_i32(), &[7, 7]);
        let out = lit("ab").eval_gather(&b, &[0, 1, 2]).unwrap();
        assert_eq!(out.as_char().1, b"ababab");
    }

    #[test]
    fn division_semantics() {
        let b = block(BlockFormat::Column);
        // integer division truncates
        let e = lit(7i64).div(lit(2i64));
        assert_eq!(e.eval_gather(&b, &[0]).unwrap().as_i64(), &[3]);
        // integer division by zero errors
        let e = lit(7i64).div(lit(0i64));
        assert!(e.eval_gather(&b, &[0]).is_err());
        // float division by zero gives inf
        let e = lit(7.0).div(lit(0.0));
        assert!(e.eval_gather(&b, &[0]).unwrap().as_f64()[0].is_infinite());
    }

    #[test]
    fn type_errors_detected() {
        let b = block(BlockFormat::Column);
        // date arithmetic rejected
        let e = col(3).add(lit(1i32));
        assert!(e.eval_all(&b).is_err());
        assert!(e.output_type(b.schema()).is_err());
        // char arithmetic rejected
        let e = col(4).mul(lit(2i32));
        assert!(e.eval_all(&b).is_err());
        // out-of-range column
        let e = col(9);
        assert!(matches!(
            e.output_type(b.schema()),
            Err(ExprError::ColumnOutOfRange { .. })
        ));
        assert!(e.eval_all(&b).is_err());
    }

    #[test]
    fn eval_row_matches_vectorized() {
        let e = col(0).mul(lit(1.0).sub(col(1)));
        let b = block(BlockFormat::Column);
        let vec = e.eval_all(&b).unwrap();
        for r in 0..b.num_rows() {
            let v = e.eval_row(&b, r).unwrap().as_f64();
            assert!((v - vec.as_f64()[r]).abs() < 1e-12);
        }
    }

    #[test]
    fn year_extraction() {
        use uot_storage::date_from_ymd;
        let s = Schema::from_pairs(&[("d", DataType::Date)]);
        let mut b = StorageBlock::new(s, BlockFormat::Column, 1024).unwrap();
        for (y, m, d) in [(1992, 1, 1), (1995, 6, 17), (1998, 12, 31)] {
            b.append_row(&[Value::Date(date_from_ymd(y, m, d))])
                .unwrap();
        }
        let e = col(0).year();
        assert_eq!(e.output_type(b.schema()).unwrap(), DataType::Int32);
        assert_eq!(e.eval_all(&b).unwrap().as_i32(), &[1992, 1995, 1998]);
        assert_eq!(e.eval_gather(&b, &[2, 0]).unwrap().as_i32(), &[1998, 1992]);
        assert_eq!(e.eval_row(&b, 1).unwrap(), Value::I32(1995));
        // YEAR of a non-date errors
        assert!(lit(5i32).year().eval_all(&b).is_err());
        assert!(lit(5i32).year().output_type(b.schema()).is_err());
    }

    #[test]
    fn case_expression() {
        use crate::predicate::{cmp, CmpOp};
        let b = block(BlockFormat::Column);
        // CASE WHEN qty < 3 THEN price ELSE 0.0 END
        let e = ScalarExpr::case_when(cmp(col(2), CmpOp::Lt, lit(3i32)), col(0), lit(0.0));
        assert_eq!(e.output_type(b.schema()).unwrap(), DataType::Float64);
        let v = e.eval_all(&b).unwrap();
        assert_eq!(v.as_f64()[0], 100.0);
        assert_eq!(v.as_f64()[2], 102.0);
        assert_eq!(v.as_f64()[3], 0.0);
        // gather path agrees
        let g = e.eval_gather(&b, &[3, 2]).unwrap();
        assert_eq!(g.as_f64(), &[0.0, 102.0]);
        // row path agrees
        assert_eq!(e.eval_row(&b, 3).unwrap(), Value::F64(0.0));
        // mixed numeric branches promote
        let e = ScalarExpr::case_when(cmp(col(2), CmpOp::Lt, lit(3i32)), lit(1i32), lit(0i64));
        assert_eq!(e.output_type(b.schema()).unwrap(), DataType::Int64);
        assert_eq!(e.eval_all(&b).unwrap().as_i64(), &[1, 1, 1, 0, 0, 0]);
        // incompatible branches rejected
        let e = ScalarExpr::case_when(cmp(col(2), CmpOp::Lt, lit(3i32)), lit("x"), lit(0i64));
        assert!(e.output_type(b.schema()).is_err());
        assert!(e.eval_all(&b).is_err());
    }

    #[test]
    fn case_with_string_branches() {
        use crate::predicate::{cmp, CmpOp};
        let b = block(BlockFormat::Row);
        let e = ScalarExpr::case_when(cmp(col(2), CmpOp::Lt, lit(2i32)), lit("lo"), lit("hi"));
        let v = e.eval_all(&b).unwrap();
        let (w, data) = v.as_char();
        assert_eq!(w, 2);
        assert_eq!(&data[..6], b"lolohi");
    }

    #[test]
    fn referenced_columns_collects() {
        let e = col(0).mul(lit(1.0).sub(col(1))).add(col(0));
        let mut cols = vec![];
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec![0, 1, 0]);
        assert_eq!(col(3).as_col(), Some(3));
        assert_eq!(lit(1i32).as_col(), None);
    }
}
