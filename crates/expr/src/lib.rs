//! # uot-expr
//!
//! Expression evaluation for the UoT query engine: scalar expressions,
//! boolean predicates and aggregate functions.
//!
//! Evaluation is **vectorized** in the MonetDB/Vectorwise tradition the paper
//! builds on: a predicate maps a whole storage block to a selection
//! [`Bitmap`](uot_storage::Bitmap); a scalar expression maps the selected rows
//! of a block to one typed [`ColumnData`](uot_storage::ColumnData) vector.
//! Column-store blocks take slice-based fast paths; row-store blocks fall
//! back to strided per-row reads, which is exactly the access-pattern
//! difference the paper's storage-format experiments measure.

pub mod aggregate;
pub mod error;
pub mod exact_sum;
pub mod predicate;
pub mod scalar;

pub use aggregate::{AggFunc, AggSpec, AggState};
pub use error::ExprError;
pub use exact_sum::ExactF64Sum;
pub use predicate::{between_half_open, cmp, CmpOp, Predicate};
pub use scalar::{col, gather_all, gather_column, gather_from, lit, BinOp, ScalarExpr};

/// Result alias for expression evaluation.
pub type Result<T> = std::result::Result<T, ExprError>;
