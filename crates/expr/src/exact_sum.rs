//! Exact, order-invariant `f64` summation.
//!
//! Parallel aggregation sums per-block partials whose boundaries depend on
//! upstream blocking (block size, row width, UoT, degree of parallelism).
//! Naive `f64` accumulation rounds after every add, so the same multiset of
//! inputs can produce different low-order bits under different groupings —
//! which would make query results depend on physical plan shape. [`ExactF64Sum`]
//! removes that dependence: it accumulates into a wide fixed-point register
//! (a Kulisch-style superaccumulator) covering the entire `f64` exponent
//! range, so every intermediate add is exact and [`ExactF64Sum::value`]
//! returns the *correctly rounded* sum of the inputs — a pure function of the
//! input multiset, independent of add order, partial boundaries, and merge
//! shape.
//!
//! Layout: the register holds bit positions for weights `2^-1074 ..= 2^1021`
//! (the full double range) plus 64 bits of carry headroom, as 68 limbs of 32
//! value bits each stored in `i64`. Each add splits the 53-bit significand
//! across at most three limbs; limbs absorb signed contributions and are
//! carry-normalized lazily, so the hot path is three integer adds.

/// Number of 32-bit limbs: ceil(2098 value bits / 32) = 66, plus 2 for carry
/// headroom when many maximal values accumulate before normalization.
const LIMBS: usize = 68;
/// Value bits per limb.
const LIMB_BITS: u32 = 32;
const LIMB_MASK: u64 = (1 << LIMB_BITS) - 1;
/// Normalize after this many unnormalized adds. Each add contributes less
/// than `2^32` per limb, so limb magnitude stays below `2^(32+28) = 2^60`,
/// and merging two accumulators stays below `i64::MAX`.
const NORM_INTERVAL: u32 = 1 << 28;

/// An exact accumulator for `f64` addition.
///
/// `add` and `merge` are associative and commutative over the represented
/// value; `value()` rounds once (to nearest, ties to even). Non-finite
/// inputs short-circuit to IEEE semantics: any NaN poisons the sum, infinities
/// of one sign saturate, and opposing infinities yield NaN.
#[derive(Debug, Clone)]
pub struct ExactF64Sum {
    limbs: [i64; LIMBS],
    /// IEEE-propagated combination of non-finite inputs, if any.
    non_finite: Option<f64>,
    /// Adds since the last carry normalization.
    pending: u32,
}

impl Default for ExactF64Sum {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for ExactF64Sum {
    fn eq(&self, other: &Self) -> bool {
        // Compare the represented value, not the (normalization-dependent)
        // limb contents.
        let mut a = self.clone();
        let mut b = other.clone();
        a.normalize();
        b.normalize();
        a.limbs == b.limbs
            && match (a.non_finite, b.non_finite) {
                (None, None) => true,
                (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
                _ => false,
            }
    }
}

impl ExactF64Sum {
    /// The empty sum (value `0.0`).
    pub fn new() -> Self {
        ExactF64Sum {
            limbs: [0; LIMBS],
            non_finite: None,
            pending: 0,
        }
    }

    /// Add one value. Exact for all finite inputs.
    #[inline]
    pub fn add(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite = Some(match self.non_finite {
                None => v,
                Some(prev) => prev + v,
            });
            return;
        }
        if v == 0.0 {
            return;
        }
        let bits = v.to_bits();
        let negative = (bits >> 63) != 0;
        let biased = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        // Significand and the register bit position of its least bit
        // (position 0 carries weight 2^-1074).
        let (sig, pos) = if biased == 0 {
            (frac, 0i64)
        } else {
            (frac | (1 << 52), biased - 1)
        };
        let limb = (pos >> 5) as usize;
        let shift = (pos & 31) as u32;
        let wide = (sig as u128) << shift; // at most 53 + 31 = 84 bits
        let c0 = (wide as u64 & LIMB_MASK) as i64;
        let c1 = ((wide >> LIMB_BITS) as u64 & LIMB_MASK) as i64;
        let c2 = ((wide >> (2 * LIMB_BITS)) as u64 & LIMB_MASK) as i64;
        if negative {
            self.limbs[limb] -= c0;
            self.limbs[limb + 1] -= c1;
            self.limbs[limb + 2] -= c2;
        } else {
            self.limbs[limb] += c0;
            self.limbs[limb + 1] += c1;
            self.limbs[limb + 2] += c2;
        }
        self.pending += 1;
        if self.pending >= NORM_INTERVAL {
            self.normalize();
        }
    }

    /// Fold another accumulator in. Exact; order-invariant.
    pub fn merge(&mut self, other: &ExactF64Sum) {
        if let Some(nf) = other.non_finite {
            self.non_finite = Some(match self.non_finite {
                None => nf,
                Some(prev) => prev + nf,
            });
        }
        if self.pending.saturating_add(other.pending) >= NORM_INTERVAL {
            self.normalize();
        }
        if other.pending >= NORM_INTERVAL / 2 {
            let mut o = other.clone();
            o.normalize();
            for (a, b) in self.limbs.iter_mut().zip(&o.limbs) {
                *a += b;
            }
            self.pending += 1;
        } else {
            for (a, b) in self.limbs.iter_mut().zip(&other.limbs) {
                *a += b;
            }
            self.pending += other.pending.max(1);
        }
    }

    /// Carry-propagate so every limb is in `[0, 2^32)` (two's-complement at
    /// the top for negative totals).
    fn normalize(&mut self) {
        let mut carry: i64 = 0;
        for l in &mut self.limbs {
            let t = *l + carry;
            let lo = t & LIMB_MASK as i64; // t mod 2^32, non-negative
            carry = (t - lo) >> LIMB_BITS;
            *l = lo;
        }
        // A leftover carry of -1 marks a negative total (two's complement
        // wrap); fold it back so the sign check in `value` sees it.
        if carry == -1 {
            self.limbs[LIMBS - 1] += -1i64 << LIMB_BITS;
        } else {
            debug_assert!(carry == 0, "superaccumulator overflow");
        }
        self.pending = 0;
    }

    /// The correctly rounded (nearest, ties to even) value of the sum.
    pub fn value(&self) -> f64 {
        if let Some(nf) = self.non_finite {
            return nf;
        }
        let mut acc = self.clone();
        acc.normalize();
        // Detect sign: after normalization all limbs are in [0, 2^32) except
        // a possible negative top limb marking a negative total.
        let negative = acc.limbs[LIMBS - 1] < 0;
        let mut mag: [u64; LIMBS] = [0; LIMBS];
        if negative {
            // Two's-complement negate to get the magnitude.
            let mut carry: u64 = 1;
            for (m, &l) in mag.iter_mut().zip(&acc.limbs) {
                let t = (!(l as u64) & LIMB_MASK) + carry;
                *m = t & LIMB_MASK;
                carry = t >> LIMB_BITS;
            }
        } else {
            for (m, &l) in mag.iter_mut().zip(&acc.limbs) {
                *m = l as u64;
            }
        }
        // Most significant set bit position (register coordinates).
        let top = match (0..LIMBS).rev().find(|&i| mag[i] != 0) {
            None => return 0.0,
            Some(i) => i as i64 * 32 + (63 - mag[i].leading_zeros() as i64),
        };
        // Take the 53-bit window [lsb, top]; positions below 0 don't exist
        // (the register's unit is exactly the smallest subnormal).
        let lsb = (top - 52).max(0);
        let mut mantissa: u64 = 0;
        for p in (lsb..=top).rev() {
            mantissa = (mantissa << 1) | bit(&mag, p);
        }
        // Round to nearest, ties to even.
        if lsb > 0 {
            let guard = bit(&mag, lsb - 1) != 0;
            if guard {
                let sticky = (0..lsb - 1).any(|p| bit(&mag, p) != 0);
                if sticky || (mantissa & 1) == 1 {
                    mantissa += 1;
                }
            }
        }
        let mut exp = lsb - 1074; // weight of the mantissa's LSB
        if mantissa == (1 << 53) {
            mantissa >>= 1;
            exp += 1;
        }
        if exp > 971 {
            // Beyond f64 range: the true sum overflows.
            return if negative {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            };
        }
        // mantissa * 2^exp, assembled exactly (both factors and the result
        // are representable; split the scale to stay in normal range).
        let m = mantissa as f64;
        let v = if exp >= -1022 {
            m * pow2(exp as i32)
        } else {
            (m * pow2((exp + 1022) as i32)) * pow2(-1022)
        };
        if negative {
            -v
        } else {
            v
        }
    }
}

#[inline]
fn bit(mag: &[u64; LIMBS], p: i64) -> u64 {
    (mag[(p >> 5) as usize] >> (p & 31)) & 1
}

/// `2^e` for `e` in the normal exponent range, constructed exactly.
#[inline]
fn pow2(e: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&e));
    f64::from_bits(((e + 1023) as u64) << 52)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum(vals: &[f64]) -> f64 {
        let mut s = ExactF64Sum::new();
        for &v in vals {
            s.add(v);
        }
        s.value()
    }

    #[test]
    fn empty_and_zero() {
        assert_eq!(sum(&[]), 0.0);
        assert_eq!(sum(&[0.0, -0.0]), 0.0);
    }

    #[test]
    fn exact_small_integers() {
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(sum(&[-1.0, -2.0, 3.0]), 0.0);
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        // Naive summation loses the 1.0 entirely.
        assert_eq!(sum(&[1e100, 1.0, -1e100]), 1.0);
        assert_eq!(sum(&[1.0, 1e100, -1e100]), 1.0);
        assert_eq!(
            sum(&[f64::MAX, f64::MIN_POSITIVE, -f64::MAX]),
            f64::MIN_POSITIVE
        );
    }

    #[test]
    fn order_and_blocking_invariant() {
        let vals: Vec<f64> = (0..1000)
            .map(|i| {
                ((i * 2654435761u64 as i64) as f64) * 1.0e-3 * if i % 2 == 0 { 1.0 } else { -1.0 }
            })
            .chain((0..100).map(|i| (i as f64) * 1e15))
            .chain((0..100).map(|i| (i as f64) * 1e-15))
            .collect();
        let forward = sum(&vals);
        let mut rev = vals.clone();
        rev.reverse();
        assert_eq!(forward.to_bits(), sum(&rev).to_bits());

        // Arbitrary partial boundaries + merge must not change the bits.
        for chunk in [1, 3, 7, 64, 999] {
            let mut total = ExactF64Sum::new();
            for part in vals.chunks(chunk) {
                let mut p = ExactF64Sum::new();
                for &v in part {
                    p.add(v);
                }
                total.merge(&p);
            }
            assert_eq!(forward.to_bits(), total.value().to_bits(), "chunk {chunk}");
        }
    }

    #[test]
    fn correctly_rounded_where_naive_drifts() {
        // ulp(1e16) = 2, so naive accumulation absorbs each lone 1.0
        // (1e16 + 1 ties back down to 1e16); the true sum 1e16 + 2 is
        // representable and the exact sum must return it.
        let vals = [1e16, 1.0, 1.0];
        let naive: f64 = vals.iter().sum();
        assert_eq!(naive, 1e16, "test premise: naive summation drifts");
        assert_eq!(sum(&vals), 1e16 + 2.0);
    }

    #[test]
    fn negative_totals() {
        assert_eq!(sum(&[1.0, -3.5]), -2.5);
        assert_eq!(sum(&[-1e-300, -1e300, 1e300]), -1e-300);
    }

    #[test]
    fn subnormals() {
        let tiny = f64::from_bits(1); // smallest subnormal
        assert_eq!(sum(&[tiny, tiny]).to_bits(), f64::from_bits(2).to_bits());
        assert_eq!(sum(&[tiny, -tiny]), 0.0);
        assert_eq!(
            sum(&[f64::MIN_POSITIVE, -tiny]).to_bits(),
            f64::MIN_POSITIVE.to_bits() - 1
        );
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(sum(&[f64::MAX, f64::MAX]), f64::INFINITY);
        assert_eq!(sum(&[-f64::MAX, -f64::MAX]), f64::NEG_INFINITY);
        // ...but cancelling back down recovers the exact finite value.
        assert_eq!(sum(&[f64::MAX, f64::MAX, -f64::MAX]), f64::MAX);
    }

    #[test]
    fn non_finite_inputs_follow_ieee() {
        assert_eq!(sum(&[1.0, f64::INFINITY]), f64::INFINITY);
        assert_eq!(sum(&[f64::NEG_INFINITY, 5.0]), f64::NEG_INFINITY);
        assert!(sum(&[f64::INFINITY, f64::NEG_INFINITY]).is_nan());
        assert!(sum(&[f64::NAN, 1.0]).is_nan());
    }

    #[test]
    fn many_adds_trigger_normalization_safely() {
        let mut s = ExactF64Sum::new();
        // Keep this fast but force several normalize cycles via merge.
        let mut part = ExactF64Sum::new();
        for i in 0..10_000 {
            part.add(i as f64 * 1e10);
        }
        for _ in 0..4 {
            s.merge(&part);
        }
        let expect: f64 = 4.0 * (0..10_000u64).map(|i| i as f64 * 1e10).sum::<f64>();
        // The naive reference is exact here (sums of multiples of 1e10 stay
        // well under 2^53 * ulp scale)... verify against the accumulator's own
        // order-invariance instead of bit-asserting the naive fold.
        assert!((s.value() - expect).abs() <= expect * 1e-15);
        let mut rev = ExactF64Sum::new();
        for i in (0..10_000).rev() {
            for _ in 0..4 {
                rev.add(i as f64 * 1e10);
            }
        }
        assert_eq!(s.value().to_bits(), rev.value().to_bits());
    }

    #[test]
    fn equality_is_value_equality() {
        let mut a = ExactF64Sum::new();
        a.add(1.5);
        a.add(2.5);
        let mut b = ExactF64Sum::new();
        b.add(4.0);
        assert_eq!(a, b);
        b.add(1e-30);
        assert_ne!(a, b);
    }
}
