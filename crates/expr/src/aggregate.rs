//! Aggregate functions and their accumulators.
//!
//! The engine's aggregation operators evaluate each aggregate's argument
//! expression into a [`ColumnData`] vector for the relevant rows, then feed
//! it to an [`AggState`]. States support `merge` so per-work-order partial
//! aggregates can be combined by the finalize step — the parallel aggregation
//! pattern Quickstep uses.

use crate::error::ExprError;
use crate::exact_sum::ExactF64Sum;
use crate::scalar::ScalarExpr;
use crate::Result;
use uot_storage::{ColumnData, DataType, Schema, Value};

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — row count, no argument.
    CountStar,
    /// `COUNT(expr)` — equal to row count here (the engine has no NULLs).
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

/// One aggregate in a query: a function plus its argument expression.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Argument; `None` only for `CountStar`.
    pub arg: Option<ScalarExpr>,
}

impl AggSpec {
    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        AggSpec {
            func: AggFunc::CountStar,
            arg: None,
        }
    }

    /// `SUM(expr)`.
    pub fn sum(arg: ScalarExpr) -> Self {
        AggSpec {
            func: AggFunc::Sum,
            arg: Some(arg),
        }
    }

    /// `MIN(expr)`.
    pub fn min(arg: ScalarExpr) -> Self {
        AggSpec {
            func: AggFunc::Min,
            arg: Some(arg),
        }
    }

    /// `MAX(expr)`.
    pub fn max(arg: ScalarExpr) -> Self {
        AggSpec {
            func: AggFunc::Max,
            arg: Some(arg),
        }
    }

    /// `AVG(expr)`.
    pub fn avg(arg: ScalarExpr) -> Self {
        AggSpec {
            func: AggFunc::Avg,
            arg: Some(arg),
        }
    }

    /// `COUNT(expr)`.
    pub fn count(arg: ScalarExpr) -> Self {
        AggSpec {
            func: AggFunc::Count,
            arg: Some(arg),
        }
    }

    /// The output type of this aggregate over `input` (used to build result
    /// schemas).
    pub fn output_type(&self, input: &Schema) -> Result<DataType> {
        match self.func {
            AggFunc::CountStar | AggFunc::Count => Ok(DataType::Int64),
            AggFunc::Avg => Ok(DataType::Float64),
            AggFunc::Sum => {
                let t = self.arg_type(input)?;
                match t {
                    DataType::Int32 | DataType::Int64 => Ok(DataType::Int64),
                    DataType::Float64 => Ok(DataType::Float64),
                    other => Err(ExprError::InvalidType {
                        context: "SUM",
                        found: other.name(),
                    }),
                }
            }
            AggFunc::Min | AggFunc::Max => {
                let t = self.arg_type(input)?;
                match t {
                    DataType::Int32 | DataType::Int64 | DataType::Float64 | DataType::Date => Ok(t),
                    other => Err(ExprError::InvalidType {
                        context: "MIN/MAX",
                        found: other.name(),
                    }),
                }
            }
        }
    }

    fn arg_type(&self, input: &Schema) -> Result<DataType> {
        self.arg
            .as_ref()
            .ok_or(ExprError::InvalidType {
                context: "aggregate argument",
                found: "missing".into(),
            })?
            .output_type(input)
    }

    /// Create the initial accumulator for this aggregate over `input`.
    pub fn init_state(&self, input: &Schema) -> Result<AggState> {
        let kind = match self.func {
            AggFunc::CountStar | AggFunc::Count => StateKind::Count(0),
            AggFunc::Avg => StateKind::Avg {
                sum: ExactF64Sum::new(),
                count: 0,
            },
            AggFunc::Sum => match self.arg_type(input)? {
                DataType::Int32 | DataType::Int64 => StateKind::SumI(0),
                DataType::Float64 => StateKind::SumF(ExactF64Sum::new()),
                other => {
                    return Err(ExprError::InvalidType {
                        context: "SUM",
                        found: other.name(),
                    })
                }
            },
            AggFunc::Min | AggFunc::Max => {
                let is_min = self.func == AggFunc::Min;
                match self.arg_type(input)? {
                    DataType::Int32 | DataType::Int64 | DataType::Date => StateKind::ExtremeI {
                        value: None,
                        is_min,
                    },
                    DataType::Float64 => StateKind::ExtremeF {
                        value: None,
                        is_min,
                    },
                    other => {
                        return Err(ExprError::InvalidType {
                            context: "MIN/MAX",
                            found: other.name(),
                        })
                    }
                }
            }
        };
        Ok(AggState {
            kind,
            out_type: self.output_type(input)?,
        })
    }
}

/// Accumulator internals.
#[derive(Debug, Clone, PartialEq)]
enum StateKind {
    Count(u64),
    SumI(i64),
    // Float sums use the exact accumulator so results are bit-identical
    // regardless of how rows were split into per-work-order partials — query
    // output must not depend on blocking, UoT, or degree of parallelism.
    SumF(ExactF64Sum),
    Avg { sum: ExactF64Sum, count: u64 },
    ExtremeI { value: Option<i64>, is_min: bool },
    ExtremeF { value: Option<f64>, is_min: bool },
}

/// A running aggregate accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct AggState {
    kind: StateKind,
    out_type: DataType,
}

impl AggState {
    /// Fold a vector of argument values (already gathered for the selected
    /// rows) into the accumulator. `CountStar`/`Count` pass the row count via
    /// `update_count` instead.
    pub fn update_column(&mut self, col: &ColumnData) -> Result<()> {
        match &mut self.kind {
            StateKind::Count(c) => *c += col.len() as u64,
            StateKind::SumI(acc) => match col {
                ColumnData::I32(v) => *acc += v.iter().map(|&x| x as i64).sum::<i64>(),
                ColumnData::I64(v) => *acc += v.iter().sum::<i64>(),
                other => return Err(bad("SUM(int)", other)),
            },
            StateKind::SumF(acc) => match col {
                ColumnData::F64(v) => v.iter().for_each(|&x| acc.add(x)),
                other => return Err(bad("SUM(float)", other)),
            },
            StateKind::Avg { sum, count } => match col {
                ColumnData::F64(v) => {
                    v.iter().for_each(|&x| sum.add(x));
                    *count += v.len() as u64;
                }
                ColumnData::I32(v) => {
                    v.iter().for_each(|&x| sum.add(x as f64));
                    *count += v.len() as u64;
                }
                ColumnData::I64(v) => {
                    v.iter().for_each(|&x| sum.add(x as f64));
                    *count += v.len() as u64;
                }
                other => return Err(bad("AVG", other)),
            },
            StateKind::ExtremeI { value, is_min } => {
                let it: Box<dyn Iterator<Item = i64>> = match col {
                    ColumnData::I32(v) => Box::new(v.iter().map(|&x| x as i64)),
                    ColumnData::I64(v) => Box::new(v.iter().copied()),
                    ColumnData::Date(v) => Box::new(v.iter().map(|&x| x as i64)),
                    other => return Err(bad("MIN/MAX(int)", other)),
                };
                for x in it {
                    *value = Some(match *value {
                        None => x,
                        Some(cur) => {
                            if *is_min {
                                cur.min(x)
                            } else {
                                cur.max(x)
                            }
                        }
                    });
                }
            }
            StateKind::ExtremeF { value, is_min } => match col {
                ColumnData::F64(v) => {
                    for &x in v {
                        *value = Some(match *value {
                            None => x,
                            Some(cur) => {
                                if *is_min {
                                    cur.min(x)
                                } else {
                                    cur.max(x)
                                }
                            }
                        });
                    }
                }
                other => return Err(bad("MIN/MAX(float)", other)),
            },
        }
        Ok(())
    }

    /// Fold `n` rows into a count-style accumulator (`COUNT(*)`).
    pub fn update_count(&mut self, n: usize) {
        if let StateKind::Count(c) = &mut self.kind {
            *c += n as u64;
        } else {
            debug_assert!(false, "update_count on non-count state");
        }
    }

    /// Merge another accumulator of the same shape (parallel partials).
    pub fn merge(&mut self, other: &AggState) {
        match (&mut self.kind, &other.kind) {
            (StateKind::Count(a), StateKind::Count(b)) => *a += b,
            (StateKind::SumI(a), StateKind::SumI(b)) => *a += b,
            (StateKind::SumF(a), StateKind::SumF(b)) => a.merge(b),
            (StateKind::Avg { sum: s1, count: c1 }, StateKind::Avg { sum: s2, count: c2 }) => {
                s1.merge(s2);
                *c1 += c2;
            }
            (StateKind::ExtremeI { value: a, is_min }, StateKind::ExtremeI { value: b, .. }) => {
                if let Some(y) = b {
                    *a = Some(match a {
                        None => *y,
                        Some(x) => {
                            if *is_min {
                                (*x).min(*y)
                            } else {
                                (*x).max(*y)
                            }
                        }
                    });
                }
            }
            (StateKind::ExtremeF { value: a, is_min }, StateKind::ExtremeF { value: b, .. }) => {
                if let Some(y) = b {
                    *a = Some(match a {
                        None => *y,
                        Some(x) => {
                            if *is_min {
                                x.min(*y)
                            } else {
                                x.max(*y)
                            }
                        }
                    });
                }
            }
            _ => debug_assert!(false, "merging incompatible aggregate states"),
        }
    }

    /// Final value. Empty-input conventions: `SUM` → 0, `COUNT` → 0,
    /// `AVG` → 0.0, `MIN`/`MAX` → the type's zero (engine-level queries guard
    /// against empty groups; groups only exist once a row mapped to them).
    pub fn finalize(&self) -> Value {
        match &self.kind {
            StateKind::Count(c) => Value::I64(*c as i64),
            StateKind::SumI(s) => Value::I64(*s),
            StateKind::SumF(s) => Value::F64(s.value()),
            StateKind::Avg { sum, count } => {
                if *count == 0 {
                    Value::F64(0.0)
                } else {
                    Value::F64(sum.value() / *count as f64)
                }
            }
            StateKind::ExtremeI { value, .. } => {
                let v = value.unwrap_or(0);
                match self.out_type {
                    DataType::Int32 => Value::I32(v as i32),
                    DataType::Date => Value::Date(v as i32),
                    _ => Value::I64(v),
                }
            }
            StateKind::ExtremeF { value, .. } => Value::F64(value.unwrap_or(0.0)),
        }
    }
}

fn bad(context: &'static str, col: &ColumnData) -> ExprError {
    let found = match col {
        ColumnData::I32(_) => "Int32",
        ColumnData::I64(_) => "Int64",
        ColumnData::F64(_) => "Float64",
        ColumnData::Date(_) => "Date",
        ColumnData::Char { .. } => "Char",
    };
    ExprError::InvalidType {
        context,
        found: found.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{col, lit};
    use uot_storage::Schema;

    fn schema() -> std::sync::Arc<Schema> {
        Schema::from_pairs(&[
            ("qty", DataType::Int32),
            ("price", DataType::Float64),
            ("d", DataType::Date),
            ("tag", DataType::Char(2)),
        ])
    }

    #[test]
    fn output_types() {
        let s = schema();
        assert_eq!(
            AggSpec::count_star().output_type(&s).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggSpec::sum(col(0)).output_type(&s).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggSpec::sum(col(1)).output_type(&s).unwrap(),
            DataType::Float64
        );
        assert_eq!(
            AggSpec::avg(col(0)).output_type(&s).unwrap(),
            DataType::Float64
        );
        assert_eq!(
            AggSpec::min(col(2)).output_type(&s).unwrap(),
            DataType::Date
        );
        assert_eq!(
            AggSpec::max(col(0)).output_type(&s).unwrap(),
            DataType::Int32
        );
        assert!(AggSpec::sum(col(3)).output_type(&s).is_err());
        assert!(AggSpec::min(col(3)).output_type(&s).is_err());
    }

    #[test]
    fn sum_int_and_float() {
        let s = schema();
        let mut st = AggSpec::sum(col(0)).init_state(&s).unwrap();
        st.update_column(&ColumnData::I32(vec![1, 2, 3])).unwrap();
        st.update_column(&ColumnData::I32(vec![10])).unwrap();
        assert_eq!(st.finalize(), Value::I64(16));

        let mut st = AggSpec::sum(col(1)).init_state(&s).unwrap();
        st.update_column(&ColumnData::F64(vec![1.5, 2.5])).unwrap();
        assert_eq!(st.finalize(), Value::F64(4.0));
    }

    #[test]
    fn count_and_avg() {
        let s = schema();
        let mut c = AggSpec::count_star().init_state(&s).unwrap();
        c.update_count(5);
        c.update_count(3);
        assert_eq!(c.finalize(), Value::I64(8));

        let mut a = AggSpec::avg(col(0)).init_state(&s).unwrap();
        a.update_column(&ColumnData::I32(vec![2, 4, 6])).unwrap();
        assert_eq!(a.finalize(), Value::F64(4.0));
        // empty avg finalizes to 0.0 rather than NaN
        let a = AggSpec::avg(col(0)).init_state(&s).unwrap();
        assert_eq!(a.finalize(), Value::F64(0.0));
    }

    #[test]
    fn min_max_int_float_date() {
        let s = schema();
        let mut mn = AggSpec::min(col(0)).init_state(&s).unwrap();
        mn.update_column(&ColumnData::I32(vec![5, 3, 9])).unwrap();
        assert_eq!(mn.finalize(), Value::I32(3));

        let mut mx = AggSpec::max(col(1)).init_state(&s).unwrap();
        mx.update_column(&ColumnData::F64(vec![1.5, 7.5, 2.0]))
            .unwrap();
        assert_eq!(mx.finalize(), Value::F64(7.5));

        let mut md = AggSpec::max(col(2)).init_state(&s).unwrap();
        md.update_column(&ColumnData::Date(vec![100, 300, 200]))
            .unwrap();
        assert_eq!(md.finalize(), Value::Date(300));
    }

    #[test]
    fn merge_combines_partials() {
        let s = schema();
        let spec = AggSpec::avg(col(1));
        let mut a = spec.init_state(&s).unwrap();
        a.update_column(&ColumnData::F64(vec![1.0, 2.0])).unwrap();
        let mut b = spec.init_state(&s).unwrap();
        b.update_column(&ColumnData::F64(vec![6.0])).unwrap();
        a.merge(&b);
        assert_eq!(a.finalize(), Value::F64(3.0));

        let spec = AggSpec::min(col(0));
        let mut a = spec.init_state(&s).unwrap();
        let mut b = spec.init_state(&s).unwrap();
        b.update_column(&ColumnData::I32(vec![4])).unwrap();
        a.merge(&b); // empty + non-empty
        assert_eq!(a.finalize(), Value::I32(4));
        let empty = spec.init_state(&s).unwrap();
        a.merge(&empty); // non-empty + empty keeps value
        assert_eq!(a.finalize(), Value::I32(4));
    }

    #[test]
    fn sum_count_merge() {
        let s = schema();
        let spec = AggSpec::sum(col(0));
        let mut a = spec.init_state(&s).unwrap();
        a.update_column(&ColumnData::I32(vec![1])).unwrap();
        let mut b = spec.init_state(&s).unwrap();
        b.update_column(&ColumnData::I32(vec![2, 3])).unwrap();
        a.merge(&b);
        assert_eq!(a.finalize(), Value::I64(6));

        let spec = AggSpec::count_star();
        let mut a = spec.init_state(&s).unwrap();
        a.update_count(2);
        let mut b = spec.init_state(&s).unwrap();
        b.update_count(5);
        a.merge(&b);
        assert_eq!(a.finalize(), Value::I64(7));
    }

    #[test]
    fn count_expr_counts_rows() {
        let s = schema();
        let mut c = AggSpec::count(col(0)).init_state(&s).unwrap();
        c.update_column(&ColumnData::I32(vec![9, 9, 9])).unwrap();
        assert_eq!(c.finalize(), Value::I64(3));
    }

    #[test]
    fn type_mismatch_on_update() {
        let s = schema();
        let mut st = AggSpec::sum(col(1)).init_state(&s).unwrap();
        assert!(st.update_column(&ColumnData::I32(vec![1])).is_err());
        let mut st = AggSpec::min(col(0)).init_state(&s).unwrap();
        assert!(st.update_column(&ColumnData::F64(vec![1.0])).is_err());
    }

    #[test]
    fn sum_of_expression() {
        // SUM(qty * 2 + 1) style state comes from the expression's type.
        let s = schema();
        let spec = AggSpec::sum(col(0).mul(lit(2i32)));
        let mut st = spec.init_state(&s).unwrap();
        st.update_column(&ColumnData::I64(vec![2, 4])).unwrap();
        assert_eq!(st.finalize(), Value::I64(6));
    }
}
