//! Schema check for exported query profiles: the Chrome `trace_event` JSON
//! must actually be JSON (a hand-rolled recursive-descent parser below — the
//! workspace deliberately has no serde), the trace must be non-empty for a
//! real query, and the Prometheus snapshot must follow the text exposition
//! format. CI runs this plus `examples/trace_profile.rs` and uploads the
//! emitted files as an artifact.

use std::collections::HashMap;

use uot::engine::obs::{chrome_trace_json, prometheus_snapshot};
use uot::engine::{Engine, EngineConfig, TraceConfig, Uot};
use uot::storage::BlockFormat;
use uot::tpch::{build_query, QueryId, TpchConfig, TpchDb};

// ---------------------------------------------------------------------------
// Minimal JSON parser (values, objects, arrays, strings, numbers, literals).
// Strict enough for schema validation: rejects trailing garbage, unterminated
// strings, bad escapes and malformed numbers.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(HashMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.i)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.i))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from a &str,
                    // so boundaries are valid).
                    let s = std::str::from_utf8(&self.b[self.i..]).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                other => return Err(format!("expected , or ] found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut m = HashMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            m.insert(k, self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                other => return Err(format!("expected , or }} found {other:?}")),
            }
        }
    }
}

// ---------------------------------------------------------------------------

fn traced_q3() -> uot::engine::QueryResult {
    let db = TpchDb::generate(
        TpchConfig::scale(0.003)
            .with_block_bytes(8 * 1024)
            .with_format(BlockFormat::Column),
    );
    let plan = build_query(QueryId::Q3, &db).expect("Q3 builds");
    Engine::new(
        EngineConfig::parallel(2)
            .with_block_bytes(8 * 1024)
            .with_uot(Uot::LOW)
            .tracing(TraceConfig::default()),
    )
    .execute(plan)
    .expect("Q3 runs")
}

#[test]
fn chrome_trace_is_valid_nonempty_json() {
    let result = traced_q3();
    let trace = result.trace.as_ref().expect("tracing was enabled");
    assert!(!trace.is_empty(), "a real query must produce events");

    let json = chrome_trace_json(trace);
    let doc = Parser::parse(&json).expect("chrome trace parses as JSON");

    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(events.len() > 10, "only {} trace events", events.len());

    let mut phases: HashMap<String, usize> = HashMap::new();
    for e in events {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .expect("every event has a phase");
        *phases.entry(ph.to_string()).or_insert(0) += 1;
        assert!(e.get("name").is_some(), "every event has a name");
        assert!(e.get("pid").is_some(), "every event has a pid");
        match ph {
            // Complete events carry a start and a duration in microseconds.
            "X" => {
                assert!(e.get("ts").and_then(Json::as_num).is_some_and(|t| t >= 0.0));
                assert!(e
                    .get("dur")
                    .and_then(Json::as_num)
                    .is_some_and(|d| d >= 0.0));
                assert!(e.get("tid").is_some());
            }
            "C" => assert!(e.get("args").is_some(), "counters carry args"),
            "M" | "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    // A traced query yields all four phases: metadata, slices (work orders),
    // instants (dispatches, transfers) and counters (pool occupancy).
    for ph in ["M", "X", "i", "C"] {
        assert!(phases.contains_key(ph), "no {ph:?} events: {phases:?}");
    }
}

#[test]
fn prometheus_snapshot_follows_exposition_format() {
    let result = traced_q3();
    let text = prometheus_snapshot(result.trace.as_ref().unwrap());
    assert!(text.contains("# TYPE uot_work_orders_total counter"));
    assert!(text.contains("uot_trace_events_total"));
    let mut typed: Option<String> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            typed = parts.next().map(str::to_string);
            assert!(
                matches!(parts.next(), Some("counter" | "gauge")),
                "bad TYPE line: {line}"
            );
        } else if !line.starts_with('#') && !line.is_empty() {
            // Sample lines belong to the family most recently declared and
            // end in a finite number.
            let name = typed.as_deref().expect("sample before any # TYPE");
            assert!(line.starts_with(name), "stray sample {line:?}");
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<f64>().is_ok_and(f64::is_finite),
                "bad value in {line:?}"
            );
        }
    }
}

#[test]
fn parser_rejects_malformed_json() {
    for bad in [
        "",
        "{",
        "[1,]",
        "{\"a\" 1}",
        "\"unterminated",
        "{\"a\":1} trailing",
        "nul",
        "1e",
    ] {
        assert!(Parser::parse(bad).is_err(), "accepted {bad:?}");
    }
    let ok = Parser::parse(r#"{"a":[1,-2.5e3,true,null,"x\nA"]}"#).unwrap();
    assert_eq!(
        ok.get("a").and_then(Json::as_arr).map(<[Json]>::len),
        Some(5)
    );
}
