//! Workspace-level integration tests: the full stack (generator → plans →
//! UoT engine → metrics) cross-checked against the operator-at-a-time
//! baseline and the analytical model.

use uot::baseline::BaselineEngine;
use uot::engine::{Engine, EngineConfig, ExecMode, Uot};
use uot::model::{CostParams, HardwareProfile};
use uot::storage::{BlockFormat, Value};
use uot::tpch::{all_queries, build_query, chain_specs, QueryId, TpchConfig, TpchDb};

fn db() -> TpchDb {
    TpchDb::generate(
        TpchConfig::scale(0.003)
            .with_block_bytes(8 * 1024)
            .with_format(BlockFormat::Column),
    )
}

/// Row comparison with float tolerance (aggregation order differs between
/// engines).
fn rows_match(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(x, y)| match (x, y) {
                    (Value::F64(p), Value::F64(q)) => {
                        (p - q).abs() <= 1e-9 * p.abs().max(q.abs()).max(1.0)
                    }
                    _ => x == y,
                })
        })
}

#[test]
fn uot_engine_and_baseline_agree_on_every_query() {
    let db = db();
    let engine = Engine::new(
        EngineConfig::parallel(3)
            .with_block_bytes(8 * 1024)
            .with_uot(Uot::LOW),
    );
    let baseline = BaselineEngine::new();
    for q in all_queries() {
        let plan = build_query(q, &db).expect("plan builds");
        let a = engine.execute(plan.clone()).expect("uot engine runs");
        let b = baseline.execute(&plan).expect("baseline runs");
        assert!(
            rows_match(&a.sorted_rows(), &b.sorted_rows()),
            "{} diverges between execution models",
            q.label()
        );
    }
}

#[test]
fn chains_are_uot_invariant_through_the_facade() {
    let db = db();
    for spec in chain_specs(&db).expect("chains build") {
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for uot in [Uot::Blocks(1), Uot::Blocks(3), Uot::Table] {
            let engine = Engine::new(
                EngineConfig::parallel(2)
                    .with_block_bytes(8 * 1024)
                    .with_uot(uot),
            );
            let rows = engine
                .execute(spec.plan.clone().with_uniform_uot(uot))
                .expect("chain runs")
                .sorted_rows();
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert!(rows_match(&rows, r), "chain {} differs at {uot}", spec.name),
            }
        }
    }
}

#[test]
fn schedules_shape_matches_uot() {
    // Low UoT: probe tasks interleave with select tasks.
    // High UoT: all probe tasks come after all select tasks.
    let db = db();
    let chains = chain_specs(&db).expect("chains build");
    let spec = chains.iter().find(|c| c.name == "Q10").expect("Q10 chain");
    let run = |uot: Uot| {
        Engine::new(EngineConfig {
            mode: ExecMode::Serial,
            block_bytes: 2 * 1024,
            default_uot: uot,
            ..Default::default()
        })
        .execute(spec.plan.clone().with_uniform_uot(uot))
        .expect("chain runs")
        .metrics
    };
    let high = run(Uot::HIGH);
    let order: Vec<usize> = high.tasks.iter().map(|t| t.op).collect();
    let last_select = order.iter().rposition(|&o| o == spec.select_op);
    let first_probe = order.iter().position(|&o| o == spec.probe_op);
    if let (Some(ls), Some(fp)) = (last_select, first_probe) {
        assert!(ls < fp, "high UoT must not interleave: {order:?}");
    }
    let low = run(Uot::LOW);
    let order: Vec<usize> = low.tasks.iter().map(|t| t.op).collect();
    let last_select = order.iter().rposition(|&o| o == spec.select_op);
    let first_probe = order.iter().position(|&o| o == spec.probe_op);
    if let (Some(ls), Some(fp)) = (last_select, first_probe) {
        assert!(fp < ls, "low UoT must interleave: {order:?}");
    }
}

#[test]
fn measured_uot_gap_is_narrow_like_the_model_says() {
    // The model predicts a narrow gap between the extremes under
    // parallelism; the engine should deliver one too (within 3x either way
    // even on noisy CI machines — the paper's figures show ~1x).
    let db = TpchDb::generate(
        TpchConfig::scale(0.005)
            .with_block_bytes(16 * 1024)
            .with_format(BlockFormat::Column),
    );
    let plan = build_query(QueryId::Q3, &db).expect("Q3 builds");
    let time = |uot: Uot| {
        let engine = Engine::new(
            EngineConfig::parallel(2)
                .with_block_bytes(16 * 1024)
                .with_uot(uot),
        );
        let mut best = f64::MAX;
        for _ in 0..3 {
            let r = engine
                .execute(plan.clone().with_uniform_uot(uot))
                .expect("runs");
            best = best.min(r.metrics.wall_time.as_secs_f64());
        }
        best
    };
    let low = time(Uot::LOW);
    let high = time(Uot::HIGH);
    let ratio = low / high;
    assert!(
        (0.33..3.0).contains(&ratio),
        "low/high wall-time ratio {ratio} is outside any plausible band"
    );
    // And the model agrees the gap is narrow at this geometry.
    let p = CostParams::derive(HardwareProfile::haswell(), 16.0 * 1024.0, 2, 100);
    assert!((0.4..2.5).contains(&p.cost_ratio_eq1()));
}

#[test]
fn metrics_expose_everything_the_figures_need() {
    let db = db();
    let plan = build_query(QueryId::Q7, &db).expect("Q7 builds");
    let r = Engine::new(EngineConfig::serial().with_block_bytes(8 * 1024))
        .execute(plan)
        .expect("Q7 runs");
    let m = &r.metrics;
    // Fig 3: per-operator shares
    assert!(!m.dominant_operators().is_empty());
    // Fig 5: per-task times for the probes
    assert!(m.ops.iter().any(|o| o.kind == "probe" && o.work_orders > 0));
    // Fig 9: DOP inspection
    assert!(m.max_dop(0) >= 1);
    // Table II: memory + hash table sizes
    assert!(m.peak_temp_bytes > 0);
    assert!(m.hash_table_bytes.len() >= 4); // Q7 builds 4 hash tables
                                            // Fig 2: schedule text renders
    assert!(!m.schedule_text(40).is_empty());
}
