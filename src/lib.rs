//! # uot — Unit-of-Transfer query processing
//!
//! Facade crate for the reproduction of *"On inter-operator data transfers in
//! query processing"* (Deshmukh, Sundarmurthy, Patel; ICDE 2022). It
//! re-exports the workspace crates under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`storage`] | `uot-storage` | blocks (row/column), block pool, catalog |
//! | [`expr`] | `uot-expr` | scalar expressions, predicates, aggregates |
//! | [`sql`] | `uot-sql` | SQL lexer/parser/binder, logical plan, plan cache |
//! | [`engine`] | `uot-core` | UoT abstraction, work orders, operators, scheduler |
//! | [`model`] | `uot-model` | the paper's analytical cost & memory models |
//! | [`cachesim`] | `uot-cachesim` | cache-hierarchy simulator with prefetcher |
//! | [`tpch`] | `uot-tpch` | TPC-H generator, query plans, chain extraction |
//! | [`baseline`] | `uot-baseline` | MonetDB-style operator-at-a-time engine |
//!
//! See `README.md` for a tour and `examples/quickstart.rs` for a first query.

pub use uot_baseline as baseline;
pub use uot_cachesim as cachesim;
pub use uot_core as engine;
pub use uot_expr as expr;
pub use uot_model as model;
pub use uot_sql as sql;
pub use uot_storage as storage;
pub use uot_tpch as tpch;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use uot_core::{
        CacheStats, CancellationToken, DegradePolicy, Engine, EngineConfig, EngineError, ExecMode,
        ExecOptions, ExplainAnalyze, FaultKind, FaultPlan, FaultSite, FusionPolicy, HubCounter,
        HubHistogram, HubSnapshot, Injection, MetricsHub, PlanCacheOutcome, PlanError, QueryHandle,
        QueryId, QueryPlan, QueryResult, QueryService, ServiceConfig, Trace, TraceConfig, Uot,
        WatchdogConfig,
    };
    pub use uot_storage::{
        date_from_ymd, BlockFormat, Catalog, DataType, Schema, Table, TableBuilder, Value,
    };
}
