//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of `crossbeam` it uses: [`channel::unbounded`] MPMC channels
//! with cloneable senders *and receivers* and disconnect semantics (receive
//! fails once all senders are gone and the queue is drained; send fails once
//! all receivers are gone). Backed by a `Mutex<VecDeque>` plus a `Condvar` —
//! not lock-free, but correct, and plenty for a scheduler handing out
//! work orders far less often than workers execute them.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded channel. Clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel. Clone freely (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// The channel is disconnected: every receiver is gone. Returns the
    /// unsent value, like crossbeam's `SendError`.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is disconnected and drained: every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// A timed receive failed: either the wait expired with the channel still
    /// empty, or the channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed before a value arrived.
        Timeout,
        /// The channel is empty and all senders have been dropped.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl<T: Send + fmt::Debug> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, failing only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a value, blocking while the channel is empty. Fails once
        /// the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue a value, blocking at most `timeout` while the channel is
        /// empty. Distinguishes an expired wait from a disconnect so callers
        /// can use the timeout as a periodic wake-up (e.g. deadline checks).
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(st, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Dequeue without blocking; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .pop_front()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<i32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx) = channel::unbounded();
        let rx2 = rx.clone();
        let consumers: Vec<_> = [rx, rx2]
            .into_iter()
            .map(|r| std::thread::spawn(move || std::iter::from_fn(|| r.recv().ok()).count()))
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = channel::unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = channel::unbounded();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(42).unwrap();
        assert_eq!(h.join().unwrap(), Ok(42));
    }
}
