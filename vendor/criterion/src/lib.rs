//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of criterion's API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! calibrated loop (median of several samples) printed as `ns/iter` — no
//! statistical analysis, plots, or saved baselines.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver handed to every target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Accepted for call-site compatibility; CLI arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Print a closing line (called by `criterion_main!`).
    pub fn final_summary(&self) {}
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, name.into()),
            self.sample_size,
            f,
        );
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` `self.iters` times, recording the total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibrate: find an iteration count that takes ~5 ms per sample.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "{name:<50} {:>12}/iter (min {}, max {}, {} samples x {} iters)",
        fmt_ns(median),
        fmt_ns(lo),
        fmt_ns(hi),
        samples,
        iters
    );
}

fn fmt_ns(secs: f64) -> String {
    let ns = secs * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_chains() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)))
            .bench_function("count", |b| {
                b.iter(|| {
                    count += 1;
                    count
                })
            });
        assert!(count > 0);
    }

    #[test]
    fn groups_run_with_small_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(5e-9).contains("ns"));
        assert!(fmt_ns(5e-6).contains("µs"));
        assert!(fmt_ns(5e-3).contains("ms"));
        assert!(fmt_ns(5.0).contains('s'));
    }
}
