//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of proptest's API its tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_recursive` / `boxed`, range and tuple
//! strategies, [`strategy::Just`], `any::<T>()`, `prop_oneof!`, collection
//! strategies, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros.
//!
//! Differences from the real crate, chosen for simplicity:
//!
//! * **No shrinking** — a failing case reports the case number and message;
//!   inputs are reproducible because generation is fully deterministic.
//! * **Deterministic seeds** — case `i` of every test derives its RNG from
//!   `i`, so runs are stable across machines and CI.
//! * Only the configuration field actually used ([`ProptestConfig::cases`])
//!   exists.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)` block
/// runs `cases` times with fresh deterministically-generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case as u64);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a property test; failure aborts only the current case's
/// closure with a [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}: `left == right` failed\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps(
            x in 0i32..10,
            y in (0i64..5).prop_map(|v| v * 2),
            b in any::<bool>(),
            choice in prop_oneof![Just(1u8), Just(2u8)],
            v in crate::collection::vec(0usize..4, 0..6),
        ) {
            prop_assert!((0..10).contains(&x));
            prop_assert_eq!(y % 2, 0);
            prop_assert!(u8::from(b) <= 1);
            prop_assert!(choice == 1 || choice == 2);
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn flat_map_dependent_values((n, k) in (1usize..8).prop_flat_map(|n| (Just(n), 0usize..n))) {
            prop_assert!(k < n);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0i32..1000, 3..=3);
        let mut r1 = crate::test_runner::TestRng::for_case(5);
        let mut r2 = crate::test_runner::TestRng::for_case(5);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn recursive_strategies_terminate() {
        use crate::strategy::{any, Strategy};
        let depth_counter = any::<bool>()
            .prop_map(|_| 0usize)
            .prop_recursive(3, 16, 2, |inner| inner.prop_map(|d| d + 1));
        let mut rng = crate::test_runner::TestRng::for_case(0);
        for _ in 0..64 {
            assert!(depth_counter.generate(&mut rng) <= 3);
        }
    }
}
