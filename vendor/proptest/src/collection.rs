//! Collection strategies: random-length `Vec`s and `HashSet`s.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.0.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` targeting a size drawn from `size`.
/// If the element domain is too small to reach the target, the set is as
/// large as repeated sampling achieves (bounded attempts — never hangs).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 10 + 100 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    fn rng() -> TestRng {
        TestRng::for_case(3)
    }

    #[test]
    fn vec_respects_size_range() {
        let s = vec(0i32..100, 2..5);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn vec_exact_size() {
        let s = vec(Just(7u8), 4usize);
        assert_eq!(s.generate(&mut rng()), vec![7, 7, 7, 7]);
    }

    #[test]
    fn hash_set_distinct_and_bounded() {
        let s = hash_set(0i64..1_000_000, 10..=20);
        let out = s.generate(&mut rng());
        assert!((10..=20).contains(&out.len()));
    }

    #[test]
    fn hash_set_small_domain_terminates() {
        // Domain of 3 values can never reach 50 elements; must not hang.
        let s = hash_set(0i32..3, 50..=50);
        let out = s.generate(&mut rng());
        assert!(out.len() <= 3);
    }
}
