//! Test-runner plumbing: configuration, per-case RNG, failure type.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case (no shrinking: the message carries the values).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case RNG. Case `i` of every test always sees the same
/// stream, so failures reproduce without recording seeds.
#[derive(Debug, Clone)]
pub struct TestRng(pub(crate) StdRng);

impl TestRng {
    /// RNG for case number `case`.
    pub fn for_case(case: u64) -> Self {
        // Golden-ratio stride decorrelates consecutive case seeds.
        TestRng(StdRng::seed_from_u64(
            case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5052_4f50_5445_5354,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn config_constructors() {
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
        assert!(ProptestConfig::default().cases > 0);
    }

    #[test]
    fn per_case_rngs_differ() {
        let a: u64 = TestRng::for_case(0).0.gen_range(0..u64::MAX);
        let b: u64 = TestRng::for_case(1).0.gen_range(0..u64::MAX);
        assert_ne!(a, b);
    }

    #[test]
    fn error_displays_message() {
        let e = TestCaseError::fail("boom");
        assert_eq!(e.to_string(), "boom");
    }
}
