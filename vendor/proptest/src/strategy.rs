//! The [`Strategy`] trait and the combinators the workspace's tests use.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: `generate`
/// directly produces a value from the RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it
    /// (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Recursive strategy: `self` is the leaf; `recurse` wraps an inner
    /// strategy into a deeper one. Nesting depth is uniform in `0..=depth`.
    /// `desired_size` and `expected_branch_size` are accepted for call-site
    /// compatibility but unused.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        desired_size: u32,
        expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        let _ = (desired_size, expected_branch_size);
        Recursive {
            base: self.boxed(),
            recurse: Arc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Type-erase into a cloneable [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    #[allow(clippy::type_complexity)]
    recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            recurse: self.recurse.clone(),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.0.gen_range(0..=self.depth);
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.recurse)(strat);
        }
        strat.generate(rng)
    }
}

/// Uniform choice between same-typed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.0.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.0.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.gen_bool(0.5)
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> (A, B) {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

impl<A: Arbitrary, B: Arbitrary, C: Arbitrary> Arbitrary for (A, B, C) {
    fn arbitrary(rng: &mut TestRng) -> (A, B, C) {
        (A::arbitrary(rng), B::arbitrary(rng), C::arbitrary(rng))
    }
}

macro_rules! strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.0.gen_range(self.clone())
    }
}

/// A `Vec` of strategies generates one value per element (real proptest
/// implements this for fixed per-position element strategies).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

strategy_for_tuples! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(17)
    }

    #[test]
    fn just_clones() {
        assert_eq!(Just(vec![1, 2]).generate(&mut rng()), vec![1, 2]);
    }

    #[test]
    fn map_and_flat_map() {
        let m = (0i32..5).prop_map(|v| v * 10);
        let v = m.generate(&mut rng());
        assert!(v % 10 == 0 && v < 50);
        let fm = (1usize..4).prop_flat_map(|n| crate::collection::vec(Just(0u8), n..=n));
        let out = fm.generate(&mut rng());
        assert!((1..4).contains(&out.len()));
    }

    #[test]
    fn union_picks_every_arm_eventually() {
        let u = Union::new(vec![Just(1).boxed(), Just(2).boxed(), Just(3).boxed()]);
        let mut seen = [false; 3];
        let mut r = rng();
        for _ in 0..200 {
            seen[u.generate(&mut r) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn arbitrary_tuples_and_ints() {
        let mut r = rng();
        let (_a, _b): (i32, i64) = <(i32, i64)>::arbitrary(&mut r);
        let _ = any::<(bool, bool)>().generate(&mut r);
        let _ = any::<u8>().generate(&mut r);
    }

    #[test]
    fn boxed_strategy_is_cloneable() {
        let b = (0i32..3).boxed();
        let b2 = b.clone();
        let mut r1 = rng();
        let mut r2 = rng();
        assert_eq!(b.generate(&mut r1), b2.generate(&mut r2));
    }
}
