//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny slice of `parking_lot`'s API it actually uses: [`Mutex`] and
//! [`RwLock`] with panic-transparent (non-poisoning) guards. Locks are backed
//! by `std::sync`; a poisoned lock is recovered instead of propagating the
//! poison, which matches `parking_lot`'s no-poisoning semantics closely
//! enough for this workspace.

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A parking_lot-style lock stays usable after a panicking holder.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
