//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of `rand` 0.8 it uses: a deterministic, seedable [`rngs::StdRng`]
//! plus the [`Rng`] methods `gen_range` (integer and float ranges, half-open
//! and inclusive) and `gen_bool`. The generator is xoshiro256++ seeded via
//! SplitMix64 — not the real `StdRng`'s ChaCha12, but deterministic and
//! statistically fine for data generation and tests. Streams differ from the
//! real crate, so regenerated datasets differ in content (never in shape).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing generator methods (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// `u64` → uniform f64 in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = widened(rng) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = widened(rng) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

/// Two generator words as a `u128`, so modulo bias is negligible for any
/// span that fits in 64 bits.
#[inline]
fn widened<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1000)).collect();
        let vc: Vec<u32> = (0..8).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let v = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&v));
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let b = rng.gen_range(b'a'..=b'z');
            assert!(b.is_ascii_lowercase());
        }
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.gen_range(4i32..=4), 4);
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "heads: {heads}");
    }

    #[test]
    fn int_sampling_covers_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
