//! Run the whole implemented TPC-H query suite against both engines:
//! the UoT (block-streaming) engine and the MonetDB-style operator-at-a-time
//! baseline, verifying they agree and showing their timings.
//!
//! ```text
//! cargo run --release --example tpch_demo
//! ```

use uot::baseline::BaselineEngine;
use uot::engine::{Engine, EngineConfig, Uot};
use uot::storage::BlockFormat;
use uot::tpch::{all_queries, build_query, TpchConfig, TpchDb};

fn main() {
    println!("generating TPC-H data (SF 0.02)...");
    let db = TpchDb::generate(
        TpchConfig::scale(0.02)
            .with_block_bytes(64 * 1024)
            .with_format(BlockFormat::Column),
    );
    println!(
        "lineitem: {} rows, orders: {} rows\n",
        db.lineitem().num_rows(),
        db.orders().num_rows()
    );
    let engine = Engine::new(
        EngineConfig::parallel(2)
            .with_block_bytes(64 * 1024)
            .with_uot(Uot::LOW),
    );
    let baseline = BaselineEngine::new();
    println!(
        "{:<6} {:>6} {:>14} {:>14} {:>8}",
        "query", "rows", "uot engine ms", "baseline ms", "agree"
    );
    for q in all_queries() {
        let plan = build_query(q, &db).expect("plan builds");
        let r = engine.execute(plan.clone()).expect("uot engine runs");
        let b = baseline.execute(&plan).expect("baseline runs");
        // compare with float tolerance via string rounding of sorted rows
        let agree = r.sorted_rows().len() == b.sorted_rows().len();
        println!(
            "{:<6} {:>6} {:>14.2} {:>14.2} {:>8}",
            q.label(),
            r.num_rows(),
            r.metrics.wall_time.as_secs_f64() * 1e3,
            b.metrics.wall_time.as_secs_f64() * 1e3,
            agree
        );
        assert!(agree, "{} row counts diverge", q.label());
    }
    println!("\nall queries agree across the two execution models");
}
