//! Quickstart: build two small tables, register them in a catalog, and run
//! one SQL statement at both ends of the UoT spectrum through the engine's
//! primary API — `execute_sql` — then look at the metrics and the plan
//! cache.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use uot::prelude::*;
use uot_core::{Engine, ExecOptions};
use uot_storage::Catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a dimension table (100 products) and a fact table (50k sales),
    //    both stored as 4 KB column-store blocks, and register them so SQL
    //    can resolve names against a catalog.
    let catalog = Catalog::new();
    {
        let schema = Schema::from_pairs(&[
            ("product_id", DataType::Int32),
            ("name", DataType::Char(16)),
            ("unit_price", DataType::Float64),
        ]);
        let mut tb = TableBuilder::new("products", schema, BlockFormat::Column, 4096);
        for i in 0..100 {
            tb.append(&[
                Value::I32(i),
                Value::Str(format!("product-{i:03}")),
                Value::F64(5.0 + i as f64),
            ])?;
        }
        catalog.register(tb.finish())?;
    }
    {
        let schema = Schema::from_pairs(&[
            ("product_id", DataType::Int32),
            ("quantity", DataType::Int32),
            ("day", DataType::Date),
        ]);
        let mut tb = TableBuilder::new("sales", schema, BlockFormat::Column, 4096);
        for i in 0..50_000i32 {
            tb.append(&[
                Value::I32(i % 100),
                Value::I32(1 + i % 7),
                Value::Date(date_from_ymd(1995, 1, 1) + i % 365),
            ])?;
        }
        catalog.register(tb.finish())?;
    }

    // 2. One SQL statement: sales in Q1'95, joined to products, totals.
    //    There is no optimizer (the paper studies scheduling, not plan
    //    choice): FROM order encodes the join tree — `sales`, first, streams
    //    through the probe side; `products` is hash-built.
    let sql = "SELECT COUNT(*) AS sales, SUM(s.quantity) AS units \
               FROM sales AS s, products AS p \
               WHERE s.product_id = p.product_id AND s.day < DATE '1995-04-01'";

    // 3. Run it at both UoT extremes on one engine. Same answer, different
    //    schedules — and the second run reuses the cached physical plan.
    let engine =
        Engine::new(EngineConfig::parallel(2).with_block_bytes(4096)).with_catalog(catalog);
    for uot in [Uot::LOW, Uot::HIGH] {
        let result = engine.execute_sql_with(sql, ExecOptions::default().with_uot(uot))?;
        println!("--- {uot} ---");
        println!(
            "result rows: {:?} (plan {})",
            result.rows(),
            match result.metrics.plan_cache {
                Some(PlanCacheOutcome::Hit) => "served from cache",
                _ => "compiled from SQL",
            }
        );
        println!(
            "wall time: {:?}, work orders: {}, peak temp memory: {} KB",
            result.metrics.wall_time,
            result.metrics.tasks.len(),
            result.metrics.peak_temp_bytes / 1024,
        );
        for (id, op) in result.metrics.ops.iter().enumerate() {
            println!(
                "  op{id} {:<18} tasks={:<3} avg task={:?}",
                op.name,
                op.work_orders,
                op.avg_task_time()
            );
        }
        // Under the default FusionPolicy::Auto the select -> probe -> agg
        // chain runs as one fused push-based loop (UoT -> 0), so the probe
        // reports no work orders of its own: its work happened inside the
        // chain head's tasks. Set FusionPolicy::Never to see every operator
        // schedule its own staged work orders.
        println!(
            "fused pipelines: {} (staged: {})",
            result.metrics.fused_pipelines, result.metrics.staged_pipelines,
        );
    }
    let stats = engine.plan_cache_stats();
    println!(
        "plan cache: {} hit / {} miss over {} distinct statement(s)",
        stats.hits, stats.misses, stats.entries
    );
    Ok(())
}
