//! Quickstart: build two small tables, run a select → probe → aggregate
//! query at both ends of the UoT spectrum, and look at the metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use uot::prelude::*;
use uot_core::{JoinType, PlanBuilder, Source};
use uot_expr::{cmp, col, lit, AggSpec, CmpOp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a dimension table (100 products) and a fact table (50k sales),
    //    both stored as 4 KB column-store blocks.
    let products = {
        let schema = Schema::from_pairs(&[
            ("product_id", DataType::Int32),
            ("name", DataType::Char(16)),
            ("unit_price", DataType::Float64),
        ]);
        let mut tb = TableBuilder::new("products", schema, BlockFormat::Column, 4096);
        for i in 0..100 {
            tb.append(&[
                Value::I32(i),
                Value::Str(format!("product-{i:03}")),
                Value::F64(5.0 + i as f64),
            ])?;
        }
        Arc::new(tb.finish())
    };
    let sales = {
        let schema = Schema::from_pairs(&[
            ("product_id", DataType::Int32),
            ("quantity", DataType::Int32),
            ("day", DataType::Date),
        ]);
        let mut tb = TableBuilder::new("sales", schema, BlockFormat::Column, 4096);
        for i in 0..50_000i32 {
            tb.append(&[
                Value::I32(i % 100),
                Value::I32(1 + i % 7),
                Value::Date(date_from_ymd(1995, 1, 1) + i % 365),
            ])?;
        }
        Arc::new(tb.finish())
    };

    // 2. A plan: sales in Q1'95, joined to products, total quantity per join.
    //    The builder validates schemas and wiring eagerly.
    let plan = {
        let mut pb = PlanBuilder::new();
        let build = pb.build_hash(Source::Table(products), vec![0], vec![2])?;
        let filtered = pb.select(
            Source::Table(sales),
            cmp(
                col(2),
                CmpOp::Lt,
                lit(Value::Date(date_from_ymd(1995, 4, 1))),
            ),
            vec![col(0), col(1)],
            &["product_id", "quantity"],
        )?;
        let joined = pb.probe(
            Source::Op(filtered),
            build,
            vec![0],
            vec![0, 1],
            vec![0],
            JoinType::Inner,
        )?;
        let agg = pb.aggregate(
            Source::Op(joined),
            vec![],
            vec![AggSpec::count_star(), AggSpec::sum(col(1))],
            &["sales", "units"],
        )?;
        pb.build(agg)?
    };

    // 3. Run it at both UoT extremes. Same answer, different schedules.
    for uot in [Uot::LOW, Uot::HIGH] {
        let engine = uot_core::Engine::new(
            EngineConfig::parallel(2)
                .with_block_bytes(4096)
                .with_uot(uot),
        );
        let result = engine.execute(plan.clone().with_uniform_uot(uot))?;
        println!("--- {uot} ---");
        println!("result rows: {:?}", result.rows());
        println!(
            "wall time: {:?}, work orders: {}, peak temp memory: {} KB",
            result.metrics.wall_time,
            result.metrics.tasks.len(),
            result.metrics.peak_temp_bytes / 1024,
        );
        for (id, op) in result.metrics.ops.iter().enumerate() {
            println!(
                "  op{id} {:<18} tasks={:<3} avg task={:?}",
                op.name,
                op.work_orders,
                op.avg_task_time()
            );
        }
    }
    Ok(())
}
