//! Multi-query service demo: several clients firing mixed TPC-H queries at
//! one [`QueryService`] — a shared worker pool and a shared memory budget —
//! with per-query latency readouts and a merged Chrome trace showing the
//! interleaved work orders of distinct query ids.
//!
//! ```text
//! cargo run --release --example multi_query
//! ```
//!
//! Writes `target/multi_query/trace.json`; open it in `chrome://tracing` or
//! <https://ui.perfetto.dev> — each query renders as its own process
//! (`pid` = query id), aligned on one wall-clock timeline.

use std::time::Instant;
use uot::engine::obs::merged_chrome_trace_json;
use uot::engine::{ExecOptions, QueryService, ServiceConfig, Uot};
use uot::storage::BlockFormat;
use uot::tpch::{build_query, QueryId as TpchQuery, TpchConfig, TpchDb};

fn main() {
    let out_dir = std::path::Path::new("target/multi_query");
    std::fs::create_dir_all(out_dir).expect("create output directory");

    println!("generating TPC-H data (SF 0.02)...");
    let block_bytes = 32 * 1024;
    let db = TpchDb::generate(
        TpchConfig::scale(0.02)
            .with_block_bytes(block_bytes)
            .with_format(BlockFormat::Column),
    );

    let service = QueryService::start(ServiceConfig {
        workers: 4,
        block_bytes,
        default_uot: Uot::LOW,
        memory_budget: 128 << 20,
        default_reservation: 16 << 20,
        ..Default::default()
    })
    .expect("service starts");

    // A mixed batch: every plan shape in flight at once, all traced. The
    // epoch anchors each query's trace on one shared wall-clock axis.
    let mix = [
        TpchQuery::Q1,
        TpchQuery::Q3,
        TpchQuery::Q6,
        TpchQuery::Q12,
        TpchQuery::Q14,
        TpchQuery::Q19,
    ];
    let epoch = Instant::now();
    let submitted: Vec<_> = mix
        .iter()
        .map(|&q| {
            let plan = build_query(q, &db).expect("plan builds");
            let offset = epoch.elapsed();
            let handle = service
                .submit_with(plan, ExecOptions::default().traced())
                .expect("service accepts");
            (q, handle, offset, Instant::now())
        })
        .collect();

    println!(
        "\n{:<6} {:<5} {:>8} {:>12} {:>12} {:>8}",
        "query", "id", "rows", "latency ms", "wall ms", "events"
    );
    let mut traces = Vec::new();
    for (q, handle, offset, t0) in submitted {
        let id = handle.id();
        let mut result = handle.wait().expect("query runs");
        let latency = t0.elapsed();
        let trace = result.trace.take().expect("tracing was requested");
        println!(
            "{:<6} {:<5} {:>8} {:>12.2} {:>12.2} {:>8}",
            q.label(),
            id.to_string(),
            result.num_rows(),
            latency.as_secs_f64() * 1e3,
            result.metrics.wall_time.as_secs_f64() * 1e3,
            trace.len(),
        );
        traces.push((trace, offset));
    }

    assert_eq!(
        service.memory_in_use(),
        0,
        "every query drained: the shared pool tracker is back at 0"
    );

    let pairs: Vec<_> = traces.iter().map(|(t, off)| (t, *off)).collect();
    let json = merged_chrome_trace_json(&pairs);
    let path = out_dir.join("trace.json");
    std::fs::write(&path, &json).expect("write merged trace");
    println!(
        "\nmerged Chrome trace for {} queries -> {} ({} bytes)",
        pairs.len(),
        path.display(),
        json.len()
    );
    println!("open in chrome://tracing or https://ui.perfetto.dev");
}
