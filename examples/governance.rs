//! Resource governance & failure handling: the execution-hardening layer in
//! action — memory budgets, automatic UoT degradation, cooperative
//! cancellation, deadlines, and contained injected panics.
//!
//! ```text
//! cargo run --release --example governance
//! ```

use std::sync::Arc;
use std::time::Duration;
use uot::prelude::*;
use uot_core::{PlanBuilder, Source};
use uot_expr::{AggSpec, Predicate};

/// A wide-then-narrow chain: a pass-through filter fans a table out into
/// many temporary blocks, then a count aggregate collapses them. Under
/// `Uot::Table` every filter output block stays staged at once; under
/// `Uot::Blocks(1)` only a handful are live at any moment.
fn wide_then_narrow(rows: i32) -> Result<QueryPlan, Box<dyn std::error::Error>> {
    let table = {
        let schema = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)]);
        let mut tb = TableBuilder::new("events", schema, BlockFormat::Column, 96);
        for i in 0..rows {
            tb.append(&[Value::I32(i % 50), Value::I64(i as i64)])?;
        }
        Arc::new(tb.finish())
    };
    let mut pb = PlanBuilder::new();
    let f = pb.filter(Source::Table(table), Predicate::True)?;
    let a = pb.aggregate(Source::Op(f), vec![], vec![AggSpec::count_star()], &["n"])?;
    Ok(pb.build(a)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A memory budget between the pipelined and blocking footprints: the
    //    blocking run trips it, and the error names the operator that asked.
    let budget = 600;
    // Staged execution: under the default FusionPolicy::Auto this
    // filter -> aggregate chain would run as one fused loop that never
    // stages a block, so the budget would never trip.
    let strict = Engine::new(
        EngineConfig::serial()
            .with_block_bytes(96)
            .with_uot(Uot::Table)
            .with_fusion(FusionPolicy::Never)
            .with_memory_budget(Some(budget)),
    );
    let err = strict.execute(wide_then_narrow(200)?).unwrap_err();
    println!("budget {budget} B at uot=table: {err}");

    // 2. Same budget with degradation enabled: the engine retries once at a
    //    halved-toward-Blocks(1) UoT and records the step in the metrics.
    let governed = Engine::new(
        EngineConfig::serial()
            .with_block_bytes(96)
            .with_uot(Uot::Table)
            .with_fusion(FusionPolicy::Never)
            .with_memory_budget(Some(budget))
            .with_degrade(DegradePolicy::LowerUot),
    );
    let result = governed.execute(wide_then_narrow(200)?)?;
    println!(
        "with DegradePolicy::LowerUot: rows={:?} degradations={:?}",
        result.rows(),
        result.metrics.degradations
    );

    // 3. Cooperative cancellation: a query on a background thread stops at
    //    its next cancellation point when the token fires.
    let engine = Engine::new(EngineConfig::parallel(2).with_block_bytes(96));
    let (token, handle) = engine.run_cancellable(wide_then_narrow(5_000)?);
    token.cancel();
    match handle.join().expect("query thread") {
        Err(e @ EngineError::Cancelled { .. }) => println!("cancelled: {e}"),
        other => println!("finished before the token was observed: {other:?}"),
    }

    // 4. Deadlines: the same mechanism, armed by the engine itself.
    let deadlined = Engine::new(
        EngineConfig::serial()
            .with_block_bytes(96)
            .with_deadline(Some(Duration::ZERO)),
    );
    let err = deadlined.execute(wide_then_narrow(200)?).unwrap_err();
    println!("deadline 0s: {err}");

    // 5. Panic containment via the deterministic fault harness: an injected
    //    panic in the 3rd work order becomes a typed error naming the
    //    operator, and the engine stays usable afterwards.
    let engine = Engine::new(EngineConfig::serial().with_block_bytes(96));
    let faults = Arc::new(FaultPlan::new(vec![Injection {
        site: FaultSite::WorkOrderExec,
        kind: FaultKind::Panic,
        nth: 3,
    }]));
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence the expected panic print
    let err = engine
        .execute_with_faults(wide_then_narrow(200)?, faults)
        .unwrap_err();
    std::panic::set_hook(prev);
    println!("injected panic: {err}");
    let ok = engine.execute(wide_then_narrow(200)?)?;
    println!("engine still healthy: rows={:?}", ok.rows());

    Ok(())
}
