//! Section VI hands-on: measure the memory trade-off between the UoT
//! extremes on TPC-H Q07's select → probe cascade, and compare the engine's
//! measured peaks with the paper's Table II model.
//!
//! ```text
//! cargo run --release --example memory_footprint
//! ```

use uot::engine::{Engine, EngineConfig, Uot};
use uot::model::{CascadeFootprint, SelectionProfile};
use uot::storage::BlockFormat;
use uot::tpch::analysis::{lineitem_cases, measure};
use uot::tpch::{build_query, QueryId, TpchConfig, TpchDb};

fn main() {
    let db = TpchDb::generate(
        TpchConfig::scale(0.02)
            .with_block_bytes(32 * 1024)
            .with_format(BlockFormat::Column),
    );
    let plan = build_query(QueryId::Q7, &db).expect("Q7 builds");

    // Engine-measured peak temporary memory at both extremes.
    let mut hash_tables = Vec::new();
    for uot in [Uot::LOW, Uot::HIGH] {
        let engine = Engine::new(
            EngineConfig::parallel(2)
                .with_block_bytes(32 * 1024)
                .with_uot(uot),
        );
        let r = engine
            .execute(plan.clone().with_uniform_uot(uot))
            .expect("Q7 runs");
        hash_tables = r
            .metrics
            .hash_table_bytes
            .iter()
            .map(|(_, b)| *b as f64)
            .collect();
        println!(
            "measured peak temporary memory at {uot}: {} KB",
            r.metrics.peak_temp_bytes / 1024
        );
    }

    // Table II, instantiated with measured ingredients.
    let case = lineitem_cases()
        .into_iter()
        .find(|c| c.query == "Q07")
        .expect("Q07 profile");
    let red = measure(&db, &case).expect("profile measures");
    let lineitem_bytes = (db.lineitem().num_rows() * db.lineitem().schema().tuple_width()) as f64;
    let profile = SelectionProfile::new(red.selectivity_pct / 100.0, red.projectivity_pct / 100.0);
    let fp = CascadeFootprint {
        hash_table_bytes: hash_tables,
        selection_output_bytes: profile.output_bytes(lineitem_bytes),
    };
    println!("\nTable II model for the same cascade:");
    println!(
        "  low-UoT overhead  Σ(i>=2)|H_i| = {:>8.0} KB  (all hash tables live at once)",
        fp.low_uot_overhead() / 1024.0
    );
    println!(
        "  high-UoT overhead |σ(R)|       = {:>8.0} KB  (materialized select output)",
        fp.high_uot_overhead() / 1024.0
    );
    println!(
        "  selection: selectivity {:.1}% x projectivity {:.1}% = {:.1}% of lineitem",
        red.selectivity_pct, red.projectivity_pct, red.total_pct
    );
    println!(
        "\n{}",
        if fp.low_uot_wins() {
            "here the pipelined strategy needs less extra memory"
        } else {
            "here the blocking strategy needs less extra memory — the paper's\n\
             counterintuitive Section VI-C case"
        }
    );
}
