//! Live telemetry demo: one [`QueryService`] with the always-on metrics hub,
//! the HTTP introspection endpoint and the watchdog enabled, fed a burst of
//! TPC-H SQL — then scraped like Prometheus would, queried for its live
//! query table, and asked for an `EXPLAIN ANALYZE` of one statement.
//!
//! ```text
//! cargo run --release --example live_telemetry
//! ```
//!
//! Everything here is plain std networking: the endpoint is a blocking
//! `TcpListener` thread inside the service, and this example talks to it
//! exactly the way `curl` would.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use uot::engine::{HubHistogram, QueryService, ServiceConfig, Uot};
use uot::storage::BlockFormat;
use uot::tpch::{sql_text, QueryId as TpchQuery, TpchConfig, TpchDb};

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to the endpoint");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: demo\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
        .split_once("\r\n\r\n")
        .expect("a full HTTP response")
        .1
        .to_string()
}

fn main() {
    println!("generating TPC-H data (SF 0.02)...");
    let block_bytes = 32 * 1024;
    let db = TpchDb::generate(
        TpchConfig::scale(0.02)
            .with_block_bytes(block_bytes)
            .with_format(BlockFormat::Column),
    );

    let service = QueryService::start(ServiceConfig {
        workers: 4,
        block_bytes,
        default_uot: Uot::LOW,
        catalog: db.catalog().clone(),
        http_port: Some(0), // ephemeral; pass Some(9184) for a fixed port
        ..Default::default()
    })
    .expect("service starts");
    let addr = service.http_addr().expect("endpoint bound");
    println!("introspection endpoint: http://{addr}");
    println!("  (try: curl -s {addr}/metrics | head)");

    // A burst of mixed traffic through the SQL front door.
    let mix = [
        TpchQuery::Q1,
        TpchQuery::Q3,
        TpchQuery::Q6,
        TpchQuery::Q12,
        TpchQuery::Q14,
        TpchQuery::Q19,
    ];
    println!("\nsubmitting {} queries...", 2 * mix.len());
    let handles: Vec<_> = (0..2)
        .flat_map(|_| mix.iter())
        .map(|&q| service.submit_sql(&sql_text(q)).expect("service accepts"))
        .collect();
    for h in handles {
        h.wait().expect("query runs");
    }

    // Scrape the hub the way Prometheus would.
    println!("\n--- GET /metrics (excerpt) ---");
    let metrics = http_get(addr, "/metrics");
    for line in metrics.lines().filter(|l| {
        l.starts_with("uot_hub_queries_")
            || l.starts_with("uot_hub_work_orders_total")
            || l.starts_with("uot_hub_transfer_blocks_total")
            || l.starts_with("uot_service_")
    }) {
        println!("{line}");
    }

    println!("\n--- GET /queries ---");
    print!("{}", http_get(addr, "/queries"));

    // The same numbers, in-process: fold the hub and read quantiles off the
    // log-bucketed latency histogram.
    let snapshot = service.hub_snapshot();
    let latency = snapshot.histogram(HubHistogram::QueryLatencyUs);
    println!(
        "hub: {} queries, latency p50 ~{} us, p99 ~{} us (log-bucketed)",
        latency.count,
        latency.quantile(0.5),
        latency.quantile(0.99),
    );

    // Per-query introspection: EXPLAIN ANALYZE really runs the statement and
    // returns the annotated operator tree as its rows.
    println!("\n--- EXPLAIN ANALYZE {} ---", TpchQuery::Q6.label());
    let explained = service
        .submit_sql(&format!("EXPLAIN ANALYZE {}", sql_text(TpchQuery::Q6)))
        .expect("service accepts")
        .wait()
        .expect("query runs");
    print!("{}", explained.explain.as_ref().expect("attached").render());

    service.shutdown();
    println!("\nservice shut down; endpoint closed.");
}
