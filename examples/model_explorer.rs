//! Explore the Section V analytical model interactively-ish: print the
//! Eq. 1 cost ratio across UoT sizes and thread counts for a hardware
//! profile, plus the persistent-store variant.
//!
//! ```text
//! cargo run --release --example model_explorer            # Haswell profile
//! cargo run --release --example model_explorer 50 30 200  # custom: GB/s, MB L3, miss ns
//! ```

use uot::model::{CostParams, HardwareProfile, PersistentStoreParams};

fn main() {
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let hw = if args.len() >= 3 {
        HardwareProfile {
            mem_bandwidth_bytes_per_ns: args[0],
            l3_bytes: args[1] * 1024.0 * 1024.0,
            l3_miss_ns: args[2],
            ..HardwareProfile::haswell()
        }
    } else {
        HardwareProfile::haswell()
    };
    println!(
        "hardware: {:.0} GB/s, {:.0} MB L3, {:.0} ns L3-miss, prefetch x{:.0}",
        hw.mem_bandwidth_bytes_per_ns,
        hw.l3_bytes / 1024.0 / 1024.0,
        hw.l3_miss_ns,
        hw.prefetch_factor
    );
    println!("\nEq. 1 ratio (non-pipelining / pipelining). >1 favors pipelining.\n");
    print!("{:>10}", "UoT");
    for t in [1, 2, 4, 8, 16, 20] {
        print!("{:>8}", format!("T={t}"));
    }
    println!("{:>10}", "p1'(T=20)");
    for kb in [8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0] {
        print!("{:>10}", format!("{}KB", kb as u64));
        for t in [1usize, 2, 4, 8, 16, 20] {
            let p = CostParams::derive(hw, kb * 1024.0, t, 1000);
            print!("{:>8.2}", p.cost_ratio_eq1());
        }
        let p = CostParams::derive(hw, kb * 1024.0, 20, 1000);
        println!("{:>10.2}", p.p1_prime());
    }

    println!("\nSection V-C: same pipeline against an SSD-backed buffer pool:");
    for kb in [128.0, 2048.0] {
        let p = PersistentStoreParams::ssd(kb * 1024.0, 1000);
        println!(
            "  {:>6}KB UoTs: non-pipelining pays {:>8.1} ms extra, pipelining {:>6.3} ms \
             ({}x)",
            kb as u64,
            p.high_uot_extra_cost() / 1e6,
            p.low_uot_extra_cost() / 1e6,
            (p.high_uot_extra_cost() / p.low_uot_extra_cost()) as u64
        );
    }
    println!("\ntakeaway: in-memory the two strategies are within ~2x of each other");
    println!("(usually much closer); on persistent storage pipelining wins by 1000x+.");
}
