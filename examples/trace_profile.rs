//! Structured-tracing demo: run a TPC-H-style join chain at two UoTs with
//! tracing enabled and export every profile format the `obs` module offers.
//!
//! ```text
//! cargo run --release --example trace_profile
//! ```
//!
//! Writes, per UoT, under `target/trace_profile/`:
//!
//! * `trace_<uot>.json` — Chrome `trace_event` JSON; open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>.
//! * `counters_<uot>.txt` — Prometheus text-exposition snapshot.
//! * `uot_timeline_<uot>.csv` — per-edge staged-block occupancy over time
//!   (the paper's Fig. 3/Fig. 5-shaped data come from this plus the task
//!   time distributions printed below).

use uot::engine::obs::{
    chrome_trace_json, operator_time_shares, prometheus_snapshot, uot_timelines,
};
use uot::engine::{Engine, EngineConfig, TraceConfig, Uot};
use uot::storage::BlockFormat;
use uot::tpch::{build_query, QueryId, TpchConfig, TpchDb};

fn main() {
    let out_dir = std::path::Path::new("target/trace_profile");
    std::fs::create_dir_all(out_dir).expect("create output directory");

    println!("generating TPC-H data (SF 0.02)...");
    let db = TpchDb::generate(
        TpchConfig::scale(0.02)
            .with_block_bytes(16 * 1024)
            .with_format(BlockFormat::Column),
    );

    for uot in [Uot::LOW, Uot::Table] {
        let slug = match uot {
            Uot::Table => "table".to_string(),
            Uot::Blocks(n) => format!("blocks{n}"),
        };
        // Q5: the deepest join chain in the suite — six tables, a fan of
        // build/probe edges, and an aggregation sink.
        let plan = build_query(QueryId::Q5, &db).expect("Q5 builds");
        let engine = Engine::new(
            EngineConfig::parallel(4)
                .with_block_bytes(16 * 1024)
                .with_uot(uot)
                .tracing(TraceConfig::default()),
        );
        let result = engine.execute(plan).expect("Q5 runs");
        let trace = result.trace.as_ref().expect("tracing was enabled");
        println!(
            "\n{uot}: {} rows, {:.2} ms wall, {} trace events ({} dropped)",
            result.num_rows(),
            result.metrics.wall_time.as_secs_f64() * 1e3,
            trace.len(),
            trace.dropped,
        );

        let chrome = chrome_trace_json(trace);
        let chrome_path = out_dir.join(format!("trace_{slug}.json"));
        std::fs::write(&chrome_path, &chrome).expect("write chrome trace");
        println!("  chrome trace  -> {}", chrome_path.display());

        let counters = prometheus_snapshot(trace);
        let counters_path = out_dir.join(format!("counters_{slug}.txt"));
        std::fs::write(&counters_path, &counters).expect("write counters");
        println!("  counters      -> {}", counters_path.display());

        let mut csv = String::new();
        for tl in uot_timelines(trace) {
            csv.push_str(&tl.to_csv(trace));
            csv.push('\n');
        }
        let csv_path = out_dir.join(format!("uot_timeline_{slug}.csv"));
        std::fs::write(&csv_path, &csv).expect("write timeline csv");
        println!("  uot timeline  -> {}", csv_path.display());

        println!("  operator time shares (Fig. 3 view):");
        for (op, name, frac) in operator_time_shares(trace).into_iter().take(5) {
            if frac > 0.0 {
                println!("    {frac:>6.1}%  op{op:<3} {name}", frac = frac * 100.0);
            }
        }
    }
    println!("\nopen the .json files in chrome://tracing or https://ui.perfetto.dev");
}
