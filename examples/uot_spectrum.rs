//! Sweep the whole UoT spectrum on a TPC-H query.
//!
//! The paper contrasts the two extremes; this example shows the full dial —
//! from `Blocks(1)` (pipelining) through intermediate groupings to `Table`
//! (blocking) — and how execution time, schedule shape and peak temporary
//! memory respond.
//!
//! ```text
//! cargo run --release --example uot_spectrum
//! ```

use uot::engine::{Engine, EngineConfig, Uot};
use uot::storage::BlockFormat;
use uot::tpch::{build_query, QueryId, TpchConfig, TpchDb};

fn main() {
    let block_bytes = 32 * 1024;
    println!("generating TPC-H data (SF 0.02)...");
    let db = TpchDb::generate(
        TpchConfig::scale(0.02)
            .with_block_bytes(block_bytes)
            .with_format(BlockFormat::Column),
    );
    let plan = build_query(QueryId::Q3, &db).expect("Q3 builds");

    println!(
        "{:<12} {:>10} {:>12} {:>14} {:>12}",
        "uot", "time (ms)", "work orders", "peak temp KB", "result rows"
    );
    for uot in [
        Uot::Blocks(1),
        Uot::Blocks(2),
        Uot::Blocks(4),
        Uot::Blocks(8),
        Uot::Blocks(32),
        Uot::Table,
    ] {
        let engine = Engine::new(
            EngineConfig::parallel(2)
                .with_block_bytes(block_bytes)
                .with_uot(uot),
        );
        // best-of-three, as in the paper
        let mut best = None;
        let mut last = None;
        for _ in 0..3 {
            let r = engine
                .execute(plan.clone().with_uniform_uot(uot))
                .expect("query runs");
            let t = r.metrics.wall_time;
            best = Some(best.map_or(t, |b: std::time::Duration| b.min(t)));
            last = Some(r);
        }
        let r = last.expect("ran");
        println!(
            "{:<12} {:>10.2} {:>12} {:>14} {:>12}",
            uot.label(),
            best.expect("ran").as_secs_f64() * 1e3,
            r.metrics.tasks.len(),
            r.metrics.peak_temp_bytes / 1024,
            r.num_rows(),
        );
    }
    println!("\nSame results, different schedules — the UoT is a performance/memory");
    println!("knob, not a semantics knob. Note how little the time moves: that is");
    println!("the paper's headline finding.");
}
