/root/repo/target/release/examples/uot_spectrum-153da0c3cf804620.d: examples/uot_spectrum.rs

/root/repo/target/release/examples/uot_spectrum-153da0c3cf804620: examples/uot_spectrum.rs

examples/uot_spectrum.rs:
