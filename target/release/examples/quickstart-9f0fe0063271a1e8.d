/root/repo/target/release/examples/quickstart-9f0fe0063271a1e8.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9f0fe0063271a1e8: examples/quickstart.rs

examples/quickstart.rs:
