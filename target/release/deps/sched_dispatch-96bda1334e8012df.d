/root/repo/target/release/deps/sched_dispatch-96bda1334e8012df.d: crates/bench/src/bin/sched_dispatch.rs

/root/repo/target/release/deps/sched_dispatch-96bda1334e8012df: crates/bench/src/bin/sched_dispatch.rs

crates/bench/src/bin/sched_dispatch.rs:
