/root/repo/target/release/deps/fig3_time_distribution-d43fe0d984597075.d: crates/bench/src/bin/fig3_time_distribution.rs

/root/repo/target/release/deps/fig3_time_distribution-d43fe0d984597075: crates/bench/src/bin/fig3_time_distribution.rs

crates/bench/src/bin/fig3_time_distribution.rs:
