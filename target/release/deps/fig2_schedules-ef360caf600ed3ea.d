/root/repo/target/release/deps/fig2_schedules-ef360caf600ed3ea.d: crates/bench/src/bin/fig2_schedules.rs

/root/repo/target/release/deps/fig2_schedules-ef360caf600ed3ea: crates/bench/src/bin/fig2_schedules.rs

crates/bench/src/bin/fig2_schedules.rs:
