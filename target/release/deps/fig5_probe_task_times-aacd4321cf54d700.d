/root/repo/target/release/deps/fig5_probe_task_times-aacd4321cf54d700.d: crates/bench/src/bin/fig5_probe_task_times.rs

/root/repo/target/release/deps/fig5_probe_task_times-aacd4321cf54d700: crates/bench/src/bin/fig5_probe_task_times.rs

crates/bench/src/bin/fig5_probe_task_times.rs:
