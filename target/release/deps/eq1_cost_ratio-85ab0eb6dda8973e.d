/root/repo/target/release/deps/eq1_cost_ratio-85ab0eb6dda8973e.d: crates/bench/src/bin/eq1_cost_ratio.rs

/root/repo/target/release/deps/eq1_cost_ratio-85ab0eb6dda8973e: crates/bench/src/bin/eq1_cost_ratio.rs

crates/bench/src/bin/eq1_cost_ratio.rs:
