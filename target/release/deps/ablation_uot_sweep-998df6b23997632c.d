/root/repo/target/release/deps/ablation_uot_sweep-998df6b23997632c.d: crates/bench/src/bin/ablation_uot_sweep.rs

/root/repo/target/release/deps/ablation_uot_sweep-998df6b23997632c: crates/bench/src/bin/ablation_uot_sweep.rs

crates/bench/src/bin/ablation_uot_sweep.rs:
