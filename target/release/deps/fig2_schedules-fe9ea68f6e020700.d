/root/repo/target/release/deps/fig2_schedules-fe9ea68f6e020700.d: crates/bench/src/bin/fig2_schedules.rs

/root/repo/target/release/deps/fig2_schedules-fe9ea68f6e020700: crates/bench/src/bin/fig2_schedules.rs

crates/bench/src/bin/fig2_schedules.rs:
