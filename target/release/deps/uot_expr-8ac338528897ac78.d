/root/repo/target/release/deps/uot_expr-8ac338528897ac78.d: crates/expr/src/lib.rs crates/expr/src/aggregate.rs crates/expr/src/error.rs crates/expr/src/predicate.rs crates/expr/src/scalar.rs

/root/repo/target/release/deps/uot_expr-8ac338528897ac78: crates/expr/src/lib.rs crates/expr/src/aggregate.rs crates/expr/src/error.rs crates/expr/src/predicate.rs crates/expr/src/scalar.rs

crates/expr/src/lib.rs:
crates/expr/src/aggregate.rs:
crates/expr/src/error.rs:
crates/expr/src/predicate.rs:
crates/expr/src/scalar.rs:
