/root/repo/target/release/deps/uot-36a069182c789057.d: src/lib.rs

/root/repo/target/release/deps/uot-36a069182c789057: src/lib.rs

src/lib.rs:
