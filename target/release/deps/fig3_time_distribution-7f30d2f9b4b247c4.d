/root/repo/target/release/deps/fig3_time_distribution-7f30d2f9b4b247c4.d: crates/bench/src/bin/fig3_time_distribution.rs

/root/repo/target/release/deps/fig3_time_distribution-7f30d2f9b4b247c4: crates/bench/src/bin/fig3_time_distribution.rs

crates/bench/src/bin/fig3_time_distribution.rs:
