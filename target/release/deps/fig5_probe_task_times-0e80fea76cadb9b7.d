/root/repo/target/release/deps/fig5_probe_task_times-0e80fea76cadb9b7.d: crates/bench/src/bin/fig5_probe_task_times.rs

/root/repo/target/release/deps/fig5_probe_task_times-0e80fea76cadb9b7: crates/bench/src/bin/fig5_probe_task_times.rs

crates/bench/src/bin/fig5_probe_task_times.rs:
