/root/repo/target/release/deps/eq1_cost_ratio-cb6a59c5f1bee155.d: crates/bench/src/bin/eq1_cost_ratio.rs

/root/repo/target/release/deps/eq1_cost_ratio-cb6a59c5f1bee155: crates/bench/src/bin/eq1_cost_ratio.rs

crates/bench/src/bin/eq1_cost_ratio.rs:
