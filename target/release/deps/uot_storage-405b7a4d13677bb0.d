/root/repo/target/release/deps/uot_storage-405b7a4d13677bb0.d: crates/storage/src/lib.rs crates/storage/src/bitmap.rs crates/storage/src/block.rs crates/storage/src/catalog.rs crates/storage/src/column_block.rs crates/storage/src/error.rs crates/storage/src/hash_key.rs crates/storage/src/key_batch.rs crates/storage/src/pool.rs crates/storage/src/row_block.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/types.rs crates/storage/src/value.rs

/root/repo/target/release/deps/uot_storage-405b7a4d13677bb0: crates/storage/src/lib.rs crates/storage/src/bitmap.rs crates/storage/src/block.rs crates/storage/src/catalog.rs crates/storage/src/column_block.rs crates/storage/src/error.rs crates/storage/src/hash_key.rs crates/storage/src/key_batch.rs crates/storage/src/pool.rs crates/storage/src/row_block.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/types.rs crates/storage/src/value.rs

crates/storage/src/lib.rs:
crates/storage/src/bitmap.rs:
crates/storage/src/block.rs:
crates/storage/src/catalog.rs:
crates/storage/src/column_block.rs:
crates/storage/src/error.rs:
crates/storage/src/hash_key.rs:
crates/storage/src/key_batch.rs:
crates/storage/src/pool.rs:
crates/storage/src/row_block.rs:
crates/storage/src/schema.rs:
crates/storage/src/table.rs:
crates/storage/src/types.rs:
crates/storage/src/value.rs:
