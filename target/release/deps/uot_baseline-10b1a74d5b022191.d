/root/repo/target/release/deps/uot_baseline-10b1a74d5b022191.d: crates/baseline/src/lib.rs crates/baseline/src/engine.rs

/root/repo/target/release/deps/uot_baseline-10b1a74d5b022191: crates/baseline/src/lib.rs crates/baseline/src/engine.rs

crates/baseline/src/lib.rs:
crates/baseline/src/engine.rs:
