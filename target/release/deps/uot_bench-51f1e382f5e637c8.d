/root/repo/target/release/deps/uot_bench-51f1e382f5e637c8.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/uot_bench-51f1e382f5e637c8: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
