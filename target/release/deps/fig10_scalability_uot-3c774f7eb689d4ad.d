/root/repo/target/release/deps/fig10_scalability_uot-3c774f7eb689d4ad.d: crates/bench/src/bin/fig10_scalability_uot.rs

/root/repo/target/release/deps/fig10_scalability_uot-3c774f7eb689d4ad: crates/bench/src/bin/fig10_scalability_uot.rs

crates/bench/src/bin/fig10_scalability_uot.rs:
