/root/repo/target/release/deps/fig7_query_times-0e320f00cf56cc86.d: crates/bench/src/bin/fig7_query_times.rs

/root/repo/target/release/deps/fig7_query_times-0e320f00cf56cc86: crates/bench/src/bin/fig7_query_times.rs

crates/bench/src/bin/fig7_query_times.rs:
