/root/repo/target/release/deps/probe_batch-83d58fb8c5b6b28a.d: crates/bench/benches/probe_batch.rs

/root/repo/target/release/deps/probe_batch-83d58fb8c5b6b28a: crates/bench/benches/probe_batch.rs

crates/bench/benches/probe_batch.rs:
