/root/repo/target/release/deps/uot_model-665f9b164e29ddaa.d: crates/model/src/lib.rs crates/model/src/cost.rs crates/model/src/memory.rs

/root/repo/target/release/deps/libuot_model-665f9b164e29ddaa.rlib: crates/model/src/lib.rs crates/model/src/cost.rs crates/model/src/memory.rs

/root/repo/target/release/deps/libuot_model-665f9b164e29ddaa.rmeta: crates/model/src/lib.rs crates/model/src/cost.rs crates/model/src/memory.rs

crates/model/src/lib.rs:
crates/model/src/cost.rs:
crates/model/src/memory.rs:
