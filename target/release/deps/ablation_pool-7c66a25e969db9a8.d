/root/repo/target/release/deps/ablation_pool-7c66a25e969db9a8.d: crates/bench/src/bin/ablation_pool.rs

/root/repo/target/release/deps/ablation_pool-7c66a25e969db9a8: crates/bench/src/bin/ablation_pool.rs

crates/bench/src/bin/ablation_pool.rs:
