/root/repo/target/release/deps/fig8_row_store-f4fa7bfca2494288.d: crates/bench/src/bin/fig8_row_store.rs

/root/repo/target/release/deps/fig8_row_store-f4fa7bfca2494288: crates/bench/src/bin/fig8_row_store.rs

crates/bench/src/bin/fig8_row_store.rs:
