/root/repo/target/release/deps/proptest-a495c3aace9109c1.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/proptest-a495c3aace9109c1: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
