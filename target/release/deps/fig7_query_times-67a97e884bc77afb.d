/root/repo/target/release/deps/fig7_query_times-67a97e884bc77afb.d: crates/bench/src/bin/fig7_query_times.rs

/root/repo/target/release/deps/fig7_query_times-67a97e884bc77afb: crates/bench/src/bin/fig7_query_times.rs

crates/bench/src/bin/fig7_query_times.rs:
