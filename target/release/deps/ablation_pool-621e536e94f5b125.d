/root/repo/target/release/deps/ablation_pool-621e536e94f5b125.d: crates/bench/src/bin/ablation_pool.rs

/root/repo/target/release/deps/ablation_pool-621e536e94f5b125: crates/bench/src/bin/ablation_pool.rs

crates/bench/src/bin/ablation_pool.rs:
