/root/repo/target/release/deps/table3_4_sel_proj-f540711d85308fbe.d: crates/bench/src/bin/table3_4_sel_proj.rs

/root/repo/target/release/deps/table3_4_sel_proj-f540711d85308fbe: crates/bench/src/bin/table3_4_sel_proj.rs

crates/bench/src/bin/table3_4_sel_proj.rs:
