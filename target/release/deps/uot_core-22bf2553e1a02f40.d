/root/repo/target/release/deps/uot_core-22bf2553e1a02f40.d: crates/core/src/lib.rs crates/core/src/bloom.rs crates/core/src/edge.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/hash_table.rs crates/core/src/metrics.rs crates/core/src/ops/mod.rs crates/core/src/ops/aggregate.rs crates/core/src/ops/build.rs crates/core/src/ops/builders.rs crates/core/src/ops/limit.rs crates/core/src/ops/nlj.rs crates/core/src/ops/probe.rs crates/core/src/ops/select.rs crates/core/src/ops/sort.rs crates/core/src/output.rs crates/core/src/plan.rs crates/core/src/scheduler.rs crates/core/src/state.rs crates/core/src/topology.rs crates/core/src/uot.rs crates/core/src/work_order.rs

/root/repo/target/release/deps/uot_core-22bf2553e1a02f40: crates/core/src/lib.rs crates/core/src/bloom.rs crates/core/src/edge.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/hash_table.rs crates/core/src/metrics.rs crates/core/src/ops/mod.rs crates/core/src/ops/aggregate.rs crates/core/src/ops/build.rs crates/core/src/ops/builders.rs crates/core/src/ops/limit.rs crates/core/src/ops/nlj.rs crates/core/src/ops/probe.rs crates/core/src/ops/select.rs crates/core/src/ops/sort.rs crates/core/src/output.rs crates/core/src/plan.rs crates/core/src/scheduler.rs crates/core/src/state.rs crates/core/src/topology.rs crates/core/src/uot.rs crates/core/src/work_order.rs

crates/core/src/lib.rs:
crates/core/src/bloom.rs:
crates/core/src/edge.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/hash_table.rs:
crates/core/src/metrics.rs:
crates/core/src/ops/mod.rs:
crates/core/src/ops/aggregate.rs:
crates/core/src/ops/build.rs:
crates/core/src/ops/builders.rs:
crates/core/src/ops/limit.rs:
crates/core/src/ops/nlj.rs:
crates/core/src/ops/probe.rs:
crates/core/src/ops/select.rs:
crates/core/src/ops/sort.rs:
crates/core/src/output.rs:
crates/core/src/plan.rs:
crates/core/src/scheduler.rs:
crates/core/src/state.rs:
crates/core/src/topology.rs:
crates/core/src/uot.rs:
crates/core/src/work_order.rs:
