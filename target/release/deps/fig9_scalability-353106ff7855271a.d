/root/repo/target/release/deps/fig9_scalability-353106ff7855271a.d: crates/bench/src/bin/fig9_scalability.rs

/root/repo/target/release/deps/fig9_scalability-353106ff7855271a: crates/bench/src/bin/fig9_scalability.rs

crates/bench/src/bin/fig9_scalability.rs:
