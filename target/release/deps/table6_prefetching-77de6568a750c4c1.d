/root/repo/target/release/deps/table6_prefetching-77de6568a750c4c1.d: crates/bench/src/bin/table6_prefetching.rs

/root/repo/target/release/deps/table6_prefetching-77de6568a750c4c1: crates/bench/src/bin/table6_prefetching.rs

crates/bench/src/bin/table6_prefetching.rs:
