/root/repo/target/release/deps/uot_cachesim-40f1da2b492e891b.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/trace.rs

/root/repo/target/release/deps/libuot_cachesim-40f1da2b492e891b.rlib: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/trace.rs

/root/repo/target/release/deps/libuot_cachesim-40f1da2b492e891b.rmeta: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/trace.rs

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/prefetch.rs:
crates/cachesim/src/trace.rs:
