/root/repo/target/release/deps/storage_primitives-2a2998f848a9ecc7.d: crates/bench/benches/storage_primitives.rs

/root/repo/target/release/deps/storage_primitives-2a2998f848a9ecc7: crates/bench/benches/storage_primitives.rs

crates/bench/benches/storage_primitives.rs:
