/root/repo/target/release/deps/fig6_chain_times-82e4dc9d3ec2cfb9.d: crates/bench/src/bin/fig6_chain_times.rs

/root/repo/target/release/deps/fig6_chain_times-82e4dc9d3ec2cfb9: crates/bench/src/bin/fig6_chain_times.rs

crates/bench/src/bin/fig6_chain_times.rs:
