/root/repo/target/release/deps/platform_info-9df34b699befd4a9.d: crates/bench/src/bin/platform_info.rs

/root/repo/target/release/deps/platform_info-9df34b699befd4a9: crates/bench/src/bin/platform_info.rs

crates/bench/src/bin/platform_info.rs:
