/root/repo/target/release/deps/uot_pipeline-823eceff090a6f83.d: crates/bench/benches/uot_pipeline.rs

/root/repo/target/release/deps/uot_pipeline-823eceff090a6f83: crates/bench/benches/uot_pipeline.rs

crates/bench/benches/uot_pipeline.rs:
