/root/repo/target/release/deps/ablation_lip-4c29f26d3656a074.d: crates/bench/src/bin/ablation_lip.rs

/root/repo/target/release/deps/ablation_lip-4c29f26d3656a074: crates/bench/src/bin/ablation_lip.rs

crates/bench/src/bin/ablation_lip.rs:
