/root/repo/target/release/deps/uot_tpch-0c43ca797db3f5b3.d: crates/tpch/src/lib.rs crates/tpch/src/analysis.rs crates/tpch/src/chains.rs crates/tpch/src/dbgen.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/q01.rs crates/tpch/src/queries/q03.rs crates/tpch/src/queries/q04.rs crates/tpch/src/queries/q05.rs crates/tpch/src/queries/q06.rs crates/tpch/src/queries/q07.rs crates/tpch/src/queries/q08.rs crates/tpch/src/queries/q09.rs crates/tpch/src/queries/q10.rs crates/tpch/src/queries/q12.rs crates/tpch/src/queries/q14.rs crates/tpch/src/queries/q17.rs crates/tpch/src/queries/q18.rs crates/tpch/src/queries/q19.rs crates/tpch/src/queries/util.rs crates/tpch/src/schema.rs

/root/repo/target/release/deps/uot_tpch-0c43ca797db3f5b3: crates/tpch/src/lib.rs crates/tpch/src/analysis.rs crates/tpch/src/chains.rs crates/tpch/src/dbgen.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/q01.rs crates/tpch/src/queries/q03.rs crates/tpch/src/queries/q04.rs crates/tpch/src/queries/q05.rs crates/tpch/src/queries/q06.rs crates/tpch/src/queries/q07.rs crates/tpch/src/queries/q08.rs crates/tpch/src/queries/q09.rs crates/tpch/src/queries/q10.rs crates/tpch/src/queries/q12.rs crates/tpch/src/queries/q14.rs crates/tpch/src/queries/q17.rs crates/tpch/src/queries/q18.rs crates/tpch/src/queries/q19.rs crates/tpch/src/queries/util.rs crates/tpch/src/schema.rs

crates/tpch/src/lib.rs:
crates/tpch/src/analysis.rs:
crates/tpch/src/chains.rs:
crates/tpch/src/dbgen.rs:
crates/tpch/src/queries/mod.rs:
crates/tpch/src/queries/q01.rs:
crates/tpch/src/queries/q03.rs:
crates/tpch/src/queries/q04.rs:
crates/tpch/src/queries/q05.rs:
crates/tpch/src/queries/q06.rs:
crates/tpch/src/queries/q07.rs:
crates/tpch/src/queries/q08.rs:
crates/tpch/src/queries/q09.rs:
crates/tpch/src/queries/q10.rs:
crates/tpch/src/queries/q12.rs:
crates/tpch/src/queries/q14.rs:
crates/tpch/src/queries/q17.rs:
crates/tpch/src/queries/q18.rs:
crates/tpch/src/queries/q19.rs:
crates/tpch/src/queries/util.rs:
crates/tpch/src/schema.rs:
