/root/repo/target/release/deps/table3_4_sel_proj-a0a71db7e35389a4.d: crates/bench/src/bin/table3_4_sel_proj.rs

/root/repo/target/release/deps/table3_4_sel_proj-a0a71db7e35389a4: crates/bench/src/bin/table3_4_sel_proj.rs

crates/bench/src/bin/table3_4_sel_proj.rs:
