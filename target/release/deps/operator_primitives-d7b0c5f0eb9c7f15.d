/root/repo/target/release/deps/operator_primitives-d7b0c5f0eb9c7f15.d: crates/bench/benches/operator_primitives.rs

/root/repo/target/release/deps/operator_primitives-d7b0c5f0eb9c7f15: crates/bench/benches/operator_primitives.rs

crates/bench/benches/operator_primitives.rs:
