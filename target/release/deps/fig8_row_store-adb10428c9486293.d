/root/repo/target/release/deps/fig8_row_store-adb10428c9486293.d: crates/bench/src/bin/fig8_row_store.rs

/root/repo/target/release/deps/fig8_row_store-adb10428c9486293: crates/bench/src/bin/fig8_row_store.rs

crates/bench/src/bin/fig8_row_store.rs:
