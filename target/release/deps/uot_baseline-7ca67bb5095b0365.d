/root/repo/target/release/deps/uot_baseline-7ca67bb5095b0365.d: crates/baseline/src/lib.rs crates/baseline/src/engine.rs

/root/repo/target/release/deps/libuot_baseline-7ca67bb5095b0365.rlib: crates/baseline/src/lib.rs crates/baseline/src/engine.rs

/root/repo/target/release/deps/libuot_baseline-7ca67bb5095b0365.rmeta: crates/baseline/src/lib.rs crates/baseline/src/engine.rs

crates/baseline/src/lib.rs:
crates/baseline/src/engine.rs:
