/root/repo/target/release/deps/fig11_baseline-48c023ce33cacf1a.d: crates/bench/src/bin/fig11_baseline.rs

/root/repo/target/release/deps/fig11_baseline-48c023ce33cacf1a: crates/bench/src/bin/fig11_baseline.rs

crates/bench/src/bin/fig11_baseline.rs:
