/root/repo/target/release/deps/fig6_chain_times-500b04c6fa0205ca.d: crates/bench/src/bin/fig6_chain_times.rs

/root/repo/target/release/deps/fig6_chain_times-500b04c6fa0205ca: crates/bench/src/bin/fig6_chain_times.rs

crates/bench/src/bin/fig6_chain_times.rs:
