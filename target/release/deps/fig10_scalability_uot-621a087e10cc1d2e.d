/root/repo/target/release/deps/fig10_scalability_uot-621a087e10cc1d2e.d: crates/bench/src/bin/fig10_scalability_uot.rs

/root/repo/target/release/deps/fig10_scalability_uot-621a087e10cc1d2e: crates/bench/src/bin/fig10_scalability_uot.rs

crates/bench/src/bin/fig10_scalability_uot.rs:
