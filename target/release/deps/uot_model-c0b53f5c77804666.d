/root/repo/target/release/deps/uot_model-c0b53f5c77804666.d: crates/model/src/lib.rs crates/model/src/cost.rs crates/model/src/memory.rs

/root/repo/target/release/deps/uot_model-c0b53f5c77804666: crates/model/src/lib.rs crates/model/src/cost.rs crates/model/src/memory.rs

crates/model/src/lib.rs:
crates/model/src/cost.rs:
crates/model/src/memory.rs:
