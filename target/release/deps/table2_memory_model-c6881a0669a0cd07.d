/root/repo/target/release/deps/table2_memory_model-c6881a0669a0cd07.d: crates/bench/src/bin/table2_memory_model.rs

/root/repo/target/release/deps/table2_memory_model-c6881a0669a0cd07: crates/bench/src/bin/table2_memory_model.rs

crates/bench/src/bin/table2_memory_model.rs:
