/root/repo/target/release/deps/fig11_baseline-cf6ab3b1d2a20483.d: crates/bench/src/bin/fig11_baseline.rs

/root/repo/target/release/deps/fig11_baseline-cf6ab3b1d2a20483: crates/bench/src/bin/fig11_baseline.rs

crates/bench/src/bin/fig11_baseline.rs:
