/root/repo/target/release/deps/ablation_uot_sweep-92926bd52a994336.d: crates/bench/src/bin/ablation_uot_sweep.rs

/root/repo/target/release/deps/ablation_uot_sweep-92926bd52a994336: crates/bench/src/bin/ablation_uot_sweep.rs

crates/bench/src/bin/ablation_uot_sweep.rs:
