/root/repo/target/release/deps/ablation_lip-4ac77a8c484655d4.d: crates/bench/src/bin/ablation_lip.rs

/root/repo/target/release/deps/ablation_lip-4ac77a8c484655d4: crates/bench/src/bin/ablation_lip.rs

crates/bench/src/bin/ablation_lip.rs:
