/root/repo/target/release/deps/uot_cachesim-78abe51ed62c80f2.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/trace.rs

/root/repo/target/release/deps/uot_cachesim-78abe51ed62c80f2: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/trace.rs

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/prefetch.rs:
crates/cachesim/src/trace.rs:
