/root/repo/target/release/deps/platform_info-59eefc3ecd187ceb.d: crates/bench/src/bin/platform_info.rs

/root/repo/target/release/deps/platform_info-59eefc3ecd187ceb: crates/bench/src/bin/platform_info.rs

crates/bench/src/bin/platform_info.rs:
