/root/repo/target/release/deps/uot_bench-3fa75df538b93cd3.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libuot_bench-3fa75df538b93cd3.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libuot_bench-3fa75df538b93cd3.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
