/root/repo/target/release/deps/table2_memory_model-49404302b1557ee5.d: crates/bench/src/bin/table2_memory_model.rs

/root/repo/target/release/deps/table2_memory_model-49404302b1557ee5: crates/bench/src/bin/table2_memory_model.rs

crates/bench/src/bin/table2_memory_model.rs:
