/root/repo/target/release/deps/cachesim_replay-e5ceecd048c1a01c.d: crates/bench/benches/cachesim_replay.rs

/root/repo/target/release/deps/cachesim_replay-e5ceecd048c1a01c: crates/bench/benches/cachesim_replay.rs

crates/bench/benches/cachesim_replay.rs:
