/root/repo/target/release/deps/sched_dispatch-f03befac9d6e6748.d: crates/bench/src/bin/sched_dispatch.rs

/root/repo/target/release/deps/sched_dispatch-f03befac9d6e6748: crates/bench/src/bin/sched_dispatch.rs

crates/bench/src/bin/sched_dispatch.rs:
