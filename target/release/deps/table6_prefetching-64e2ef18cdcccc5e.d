/root/repo/target/release/deps/table6_prefetching-64e2ef18cdcccc5e.d: crates/bench/src/bin/table6_prefetching.rs

/root/repo/target/release/deps/table6_prefetching-64e2ef18cdcccc5e: crates/bench/src/bin/table6_prefetching.rs

crates/bench/src/bin/table6_prefetching.rs:
