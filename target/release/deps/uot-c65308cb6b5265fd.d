/root/repo/target/release/deps/uot-c65308cb6b5265fd.d: src/lib.rs

/root/repo/target/release/deps/libuot-c65308cb6b5265fd.rlib: src/lib.rs

/root/repo/target/release/deps/libuot-c65308cb6b5265fd.rmeta: src/lib.rs

src/lib.rs:
