/root/repo/target/release/deps/fig9_scalability-d875414329440b7c.d: crates/bench/src/bin/fig9_scalability.rs

/root/repo/target/release/deps/fig9_scalability-d875414329440b7c: crates/bench/src/bin/fig9_scalability.rs

crates/bench/src/bin/fig9_scalability.rs:
