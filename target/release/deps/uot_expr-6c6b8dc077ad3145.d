/root/repo/target/release/deps/uot_expr-6c6b8dc077ad3145.d: crates/expr/src/lib.rs crates/expr/src/aggregate.rs crates/expr/src/error.rs crates/expr/src/predicate.rs crates/expr/src/scalar.rs

/root/repo/target/release/deps/libuot_expr-6c6b8dc077ad3145.rlib: crates/expr/src/lib.rs crates/expr/src/aggregate.rs crates/expr/src/error.rs crates/expr/src/predicate.rs crates/expr/src/scalar.rs

/root/repo/target/release/deps/libuot_expr-6c6b8dc077ad3145.rmeta: crates/expr/src/lib.rs crates/expr/src/aggregate.rs crates/expr/src/error.rs crates/expr/src/predicate.rs crates/expr/src/scalar.rs

crates/expr/src/lib.rs:
crates/expr/src/aggregate.rs:
crates/expr/src/error.rs:
crates/expr/src/predicate.rs:
crates/expr/src/scalar.rs:
