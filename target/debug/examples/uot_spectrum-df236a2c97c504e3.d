/root/repo/target/debug/examples/uot_spectrum-df236a2c97c504e3.d: examples/uot_spectrum.rs

/root/repo/target/debug/examples/uot_spectrum-df236a2c97c504e3: examples/uot_spectrum.rs

examples/uot_spectrum.rs:
