/root/repo/target/debug/examples/model_explorer-80950c295cb3f1ff.d: examples/model_explorer.rs

/root/repo/target/debug/examples/model_explorer-80950c295cb3f1ff: examples/model_explorer.rs

examples/model_explorer.rs:
