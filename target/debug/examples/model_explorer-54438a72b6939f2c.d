/root/repo/target/debug/examples/model_explorer-54438a72b6939f2c.d: examples/model_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libmodel_explorer-54438a72b6939f2c.rmeta: examples/model_explorer.rs Cargo.toml

examples/model_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
