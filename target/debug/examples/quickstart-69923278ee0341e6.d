/root/repo/target/debug/examples/quickstart-69923278ee0341e6.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-69923278ee0341e6.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
