/root/repo/target/debug/examples/memory_footprint-721da1113ab0ffd5.d: examples/memory_footprint.rs Cargo.toml

/root/repo/target/debug/examples/libmemory_footprint-721da1113ab0ffd5.rmeta: examples/memory_footprint.rs Cargo.toml

examples/memory_footprint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
