/root/repo/target/debug/examples/memory_footprint-250a6238e86eb4b4.d: examples/memory_footprint.rs

/root/repo/target/debug/examples/memory_footprint-250a6238e86eb4b4: examples/memory_footprint.rs

examples/memory_footprint.rs:
