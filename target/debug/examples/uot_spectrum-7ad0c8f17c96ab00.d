/root/repo/target/debug/examples/uot_spectrum-7ad0c8f17c96ab00.d: examples/uot_spectrum.rs Cargo.toml

/root/repo/target/debug/examples/libuot_spectrum-7ad0c8f17c96ab00.rmeta: examples/uot_spectrum.rs Cargo.toml

examples/uot_spectrum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
