/root/repo/target/debug/examples/tpch_demo-1bd642583d5da98d.d: examples/tpch_demo.rs Cargo.toml

/root/repo/target/debug/examples/libtpch_demo-1bd642583d5da98d.rmeta: examples/tpch_demo.rs Cargo.toml

examples/tpch_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
