/root/repo/target/debug/examples/quickstart-cf7efd54c65ad183.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cf7efd54c65ad183: examples/quickstart.rs

examples/quickstart.rs:
