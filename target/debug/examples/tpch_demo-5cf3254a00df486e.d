/root/repo/target/debug/examples/tpch_demo-5cf3254a00df486e.d: examples/tpch_demo.rs

/root/repo/target/debug/examples/tpch_demo-5cf3254a00df486e: examples/tpch_demo.rs

examples/tpch_demo.rs:
