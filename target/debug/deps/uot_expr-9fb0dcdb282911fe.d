/root/repo/target/debug/deps/uot_expr-9fb0dcdb282911fe.d: crates/expr/src/lib.rs crates/expr/src/aggregate.rs crates/expr/src/error.rs crates/expr/src/predicate.rs crates/expr/src/scalar.rs

/root/repo/target/debug/deps/libuot_expr-9fb0dcdb282911fe.rlib: crates/expr/src/lib.rs crates/expr/src/aggregate.rs crates/expr/src/error.rs crates/expr/src/predicate.rs crates/expr/src/scalar.rs

/root/repo/target/debug/deps/libuot_expr-9fb0dcdb282911fe.rmeta: crates/expr/src/lib.rs crates/expr/src/aggregate.rs crates/expr/src/error.rs crates/expr/src/predicate.rs crates/expr/src/scalar.rs

crates/expr/src/lib.rs:
crates/expr/src/aggregate.rs:
crates/expr/src/error.rs:
crates/expr/src/predicate.rs:
crates/expr/src/scalar.rs:
