/root/repo/target/debug/deps/query_correctness-6a541be3a656cd5c.d: crates/tpch/tests/query_correctness.rs

/root/repo/target/debug/deps/query_correctness-6a541be3a656cd5c: crates/tpch/tests/query_correctness.rs

crates/tpch/tests/query_correctness.rs:
