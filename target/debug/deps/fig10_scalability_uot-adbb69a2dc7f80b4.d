/root/repo/target/debug/deps/fig10_scalability_uot-adbb69a2dc7f80b4.d: crates/bench/src/bin/fig10_scalability_uot.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_scalability_uot-adbb69a2dc7f80b4.rmeta: crates/bench/src/bin/fig10_scalability_uot.rs Cargo.toml

crates/bench/src/bin/fig10_scalability_uot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
