/root/repo/target/debug/deps/fig5_probe_task_times-14715fc911881089.d: crates/bench/src/bin/fig5_probe_task_times.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_probe_task_times-14715fc911881089.rmeta: crates/bench/src/bin/fig5_probe_task_times.rs Cargo.toml

crates/bench/src/bin/fig5_probe_task_times.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
