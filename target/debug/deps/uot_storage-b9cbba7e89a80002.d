/root/repo/target/debug/deps/uot_storage-b9cbba7e89a80002.d: crates/storage/src/lib.rs crates/storage/src/bitmap.rs crates/storage/src/block.rs crates/storage/src/catalog.rs crates/storage/src/column_block.rs crates/storage/src/error.rs crates/storage/src/hash_key.rs crates/storage/src/key_batch.rs crates/storage/src/pool.rs crates/storage/src/row_block.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/types.rs crates/storage/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libuot_storage-b9cbba7e89a80002.rmeta: crates/storage/src/lib.rs crates/storage/src/bitmap.rs crates/storage/src/block.rs crates/storage/src/catalog.rs crates/storage/src/column_block.rs crates/storage/src/error.rs crates/storage/src/hash_key.rs crates/storage/src/key_batch.rs crates/storage/src/pool.rs crates/storage/src/row_block.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/types.rs crates/storage/src/value.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/bitmap.rs:
crates/storage/src/block.rs:
crates/storage/src/catalog.rs:
crates/storage/src/column_block.rs:
crates/storage/src/error.rs:
crates/storage/src/hash_key.rs:
crates/storage/src/key_batch.rs:
crates/storage/src/pool.rs:
crates/storage/src/row_block.rs:
crates/storage/src/schema.rs:
crates/storage/src/table.rs:
crates/storage/src/types.rs:
crates/storage/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
