/root/repo/target/debug/deps/uot_expr-8dc1a5192f297e81.d: crates/expr/src/lib.rs crates/expr/src/aggregate.rs crates/expr/src/error.rs crates/expr/src/predicate.rs crates/expr/src/scalar.rs Cargo.toml

/root/repo/target/debug/deps/libuot_expr-8dc1a5192f297e81.rmeta: crates/expr/src/lib.rs crates/expr/src/aggregate.rs crates/expr/src/error.rs crates/expr/src/predicate.rs crates/expr/src/scalar.rs Cargo.toml

crates/expr/src/lib.rs:
crates/expr/src/aggregate.rs:
crates/expr/src/error.rs:
crates/expr/src/predicate.rs:
crates/expr/src/scalar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
