/root/repo/target/debug/deps/table6_prefetching-1d8e545b89f2b83a.d: crates/bench/src/bin/table6_prefetching.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_prefetching-1d8e545b89f2b83a.rmeta: crates/bench/src/bin/table6_prefetching.rs Cargo.toml

crates/bench/src/bin/table6_prefetching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
