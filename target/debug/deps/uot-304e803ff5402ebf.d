/root/repo/target/debug/deps/uot-304e803ff5402ebf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libuot-304e803ff5402ebf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
