/root/repo/target/debug/deps/fig8_row_store-19df5f0f2b8d10eb.d: crates/bench/src/bin/fig8_row_store.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_row_store-19df5f0f2b8d10eb.rmeta: crates/bench/src/bin/fig8_row_store.rs Cargo.toml

crates/bench/src/bin/fig8_row_store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
