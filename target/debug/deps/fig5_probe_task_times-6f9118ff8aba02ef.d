/root/repo/target/debug/deps/fig5_probe_task_times-6f9118ff8aba02ef.d: crates/bench/src/bin/fig5_probe_task_times.rs

/root/repo/target/debug/deps/fig5_probe_task_times-6f9118ff8aba02ef: crates/bench/src/bin/fig5_probe_task_times.rs

crates/bench/src/bin/fig5_probe_task_times.rs:
