/root/repo/target/debug/deps/uot_baseline-1fdf327983b67c73.d: crates/baseline/src/lib.rs crates/baseline/src/engine.rs Cargo.toml

/root/repo/target/debug/deps/libuot_baseline-1fdf327983b67c73.rmeta: crates/baseline/src/lib.rs crates/baseline/src/engine.rs Cargo.toml

crates/baseline/src/lib.rs:
crates/baseline/src/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
