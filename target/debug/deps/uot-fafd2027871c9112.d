/root/repo/target/debug/deps/uot-fafd2027871c9112.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libuot-fafd2027871c9112.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
