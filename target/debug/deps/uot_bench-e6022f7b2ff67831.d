/root/repo/target/debug/deps/uot_bench-e6022f7b2ff67831.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/uot_bench-e6022f7b2ff67831: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
