/root/repo/target/debug/deps/fig6_chain_times-bec4161ccfd4ef80.d: crates/bench/src/bin/fig6_chain_times.rs

/root/repo/target/debug/deps/fig6_chain_times-bec4161ccfd4ef80: crates/bench/src/bin/fig6_chain_times.rs

crates/bench/src/bin/fig6_chain_times.rs:
