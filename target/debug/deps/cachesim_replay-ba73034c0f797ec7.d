/root/repo/target/debug/deps/cachesim_replay-ba73034c0f797ec7.d: crates/bench/benches/cachesim_replay.rs Cargo.toml

/root/repo/target/debug/deps/libcachesim_replay-ba73034c0f797ec7.rmeta: crates/bench/benches/cachesim_replay.rs Cargo.toml

crates/bench/benches/cachesim_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
