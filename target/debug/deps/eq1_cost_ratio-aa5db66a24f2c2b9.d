/root/repo/target/debug/deps/eq1_cost_ratio-aa5db66a24f2c2b9.d: crates/bench/src/bin/eq1_cost_ratio.rs Cargo.toml

/root/repo/target/debug/deps/libeq1_cost_ratio-aa5db66a24f2c2b9.rmeta: crates/bench/src/bin/eq1_cost_ratio.rs Cargo.toml

crates/bench/src/bin/eq1_cost_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
