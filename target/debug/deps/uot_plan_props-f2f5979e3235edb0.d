/root/repo/target/debug/deps/uot_plan_props-f2f5979e3235edb0.d: crates/core/tests/uot_plan_props.rs

/root/repo/target/debug/deps/uot_plan_props-f2f5979e3235edb0: crates/core/tests/uot_plan_props.rs

crates/core/tests/uot_plan_props.rs:
