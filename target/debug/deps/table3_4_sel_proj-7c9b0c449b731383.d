/root/repo/target/debug/deps/table3_4_sel_proj-7c9b0c449b731383.d: crates/bench/src/bin/table3_4_sel_proj.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_4_sel_proj-7c9b0c449b731383.rmeta: crates/bench/src/bin/table3_4_sel_proj.rs Cargo.toml

crates/bench/src/bin/table3_4_sel_proj.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
