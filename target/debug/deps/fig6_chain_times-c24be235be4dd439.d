/root/repo/target/debug/deps/fig6_chain_times-c24be235be4dd439.d: crates/bench/src/bin/fig6_chain_times.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_chain_times-c24be235be4dd439.rmeta: crates/bench/src/bin/fig6_chain_times.rs Cargo.toml

crates/bench/src/bin/fig6_chain_times.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
