/root/repo/target/debug/deps/chains_and_analysis-42d1e731c7d924ea.d: crates/tpch/tests/chains_and_analysis.rs

/root/repo/target/debug/deps/chains_and_analysis-42d1e731c7d924ea: crates/tpch/tests/chains_and_analysis.rs

crates/tpch/tests/chains_and_analysis.rs:
