/root/repo/target/debug/deps/platform_info-cd2ed4aeca1a5023.d: crates/bench/src/bin/platform_info.rs Cargo.toml

/root/repo/target/debug/deps/libplatform_info-cd2ed4aeca1a5023.rmeta: crates/bench/src/bin/platform_info.rs Cargo.toml

crates/bench/src/bin/platform_info.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
