/root/repo/target/debug/deps/uot_invariance-c0399fe3a0c07f84.d: crates/core/tests/uot_invariance.rs

/root/repo/target/debug/deps/uot_invariance-c0399fe3a0c07f84: crates/core/tests/uot_invariance.rs

crates/core/tests/uot_invariance.rs:
