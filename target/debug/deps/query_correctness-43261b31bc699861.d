/root/repo/target/debug/deps/query_correctness-43261b31bc699861.d: crates/tpch/tests/query_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libquery_correctness-43261b31bc699861.rmeta: crates/tpch/tests/query_correctness.rs Cargo.toml

crates/tpch/tests/query_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
