/root/repo/target/debug/deps/uot-37ebeadea1cbbec2.d: src/lib.rs

/root/repo/target/debug/deps/uot-37ebeadea1cbbec2: src/lib.rs

src/lib.rs:
