/root/repo/target/debug/deps/platform_info-faf52efda159daf2.d: crates/bench/src/bin/platform_info.rs Cargo.toml

/root/repo/target/debug/deps/libplatform_info-faf52efda159daf2.rmeta: crates/bench/src/bin/platform_info.rs Cargo.toml

crates/bench/src/bin/platform_info.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
