/root/repo/target/debug/deps/fig7_query_times-7bec10670e808773.d: crates/bench/src/bin/fig7_query_times.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_query_times-7bec10670e808773.rmeta: crates/bench/src/bin/fig7_query_times.rs Cargo.toml

crates/bench/src/bin/fig7_query_times.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
