/root/repo/target/debug/deps/ablation_uot_sweep-a59952d73b30d5b5.d: crates/bench/src/bin/ablation_uot_sweep.rs

/root/repo/target/debug/deps/ablation_uot_sweep-a59952d73b30d5b5: crates/bench/src/bin/ablation_uot_sweep.rs

crates/bench/src/bin/ablation_uot_sweep.rs:
