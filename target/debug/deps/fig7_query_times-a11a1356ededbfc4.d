/root/repo/target/debug/deps/fig7_query_times-a11a1356ededbfc4.d: crates/bench/src/bin/fig7_query_times.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_query_times-a11a1356ededbfc4.rmeta: crates/bench/src/bin/fig7_query_times.rs Cargo.toml

crates/bench/src/bin/fig7_query_times.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
