/root/repo/target/debug/deps/ablation_pool-e0a0be5d5f5e72ac.d: crates/bench/src/bin/ablation_pool.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pool-e0a0be5d5f5e72ac.rmeta: crates/bench/src/bin/ablation_pool.rs Cargo.toml

crates/bench/src/bin/ablation_pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
