/root/repo/target/debug/deps/probe_batch-5358b1d57def829c.d: crates/bench/benches/probe_batch.rs Cargo.toml

/root/repo/target/debug/deps/libprobe_batch-5358b1d57def829c.rmeta: crates/bench/benches/probe_batch.rs Cargo.toml

crates/bench/benches/probe_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
