/root/repo/target/debug/deps/fig9_scalability-4c5f473c5a1d514f.d: crates/bench/src/bin/fig9_scalability.rs

/root/repo/target/debug/deps/fig9_scalability-4c5f473c5a1d514f: crates/bench/src/bin/fig9_scalability.rs

crates/bench/src/bin/fig9_scalability.rs:
