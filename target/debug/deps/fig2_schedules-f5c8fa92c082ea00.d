/root/repo/target/debug/deps/fig2_schedules-f5c8fa92c082ea00.d: crates/bench/src/bin/fig2_schedules.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_schedules-f5c8fa92c082ea00.rmeta: crates/bench/src/bin/fig2_schedules.rs Cargo.toml

crates/bench/src/bin/fig2_schedules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
