/root/repo/target/debug/deps/uot_expr-5b76c9ad115f0e21.d: crates/expr/src/lib.rs crates/expr/src/aggregate.rs crates/expr/src/error.rs crates/expr/src/predicate.rs crates/expr/src/scalar.rs

/root/repo/target/debug/deps/uot_expr-5b76c9ad115f0e21: crates/expr/src/lib.rs crates/expr/src/aggregate.rs crates/expr/src/error.rs crates/expr/src/predicate.rs crates/expr/src/scalar.rs

crates/expr/src/lib.rs:
crates/expr/src/aggregate.rs:
crates/expr/src/error.rs:
crates/expr/src/predicate.rs:
crates/expr/src/scalar.rs:
