/root/repo/target/debug/deps/sched_dispatch-b193241ca846b6dd.d: crates/bench/src/bin/sched_dispatch.rs Cargo.toml

/root/repo/target/debug/deps/libsched_dispatch-b193241ca846b6dd.rmeta: crates/bench/src/bin/sched_dispatch.rs Cargo.toml

crates/bench/src/bin/sched_dispatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
