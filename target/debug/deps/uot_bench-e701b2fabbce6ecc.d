/root/repo/target/debug/deps/uot_bench-e701b2fabbce6ecc.d: crates/bench/src/lib.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libuot_bench-e701b2fabbce6ecc.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
