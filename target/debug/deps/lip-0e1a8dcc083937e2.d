/root/repo/target/debug/deps/lip-0e1a8dcc083937e2.d: crates/core/tests/lip.rs Cargo.toml

/root/repo/target/debug/deps/liblip-0e1a8dcc083937e2.rmeta: crates/core/tests/lip.rs Cargo.toml

crates/core/tests/lip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
