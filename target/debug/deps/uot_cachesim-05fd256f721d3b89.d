/root/repo/target/debug/deps/uot_cachesim-05fd256f721d3b89.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/trace.rs

/root/repo/target/debug/deps/uot_cachesim-05fd256f721d3b89: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/trace.rs

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/prefetch.rs:
crates/cachesim/src/trace.rs:
