/root/repo/target/debug/deps/structure_props-6c4033b120c0480c.d: crates/core/tests/structure_props.rs Cargo.toml

/root/repo/target/debug/deps/libstructure_props-6c4033b120c0480c.rmeta: crates/core/tests/structure_props.rs Cargo.toml

crates/core/tests/structure_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
