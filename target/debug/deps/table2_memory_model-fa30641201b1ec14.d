/root/repo/target/debug/deps/table2_memory_model-fa30641201b1ec14.d: crates/bench/src/bin/table2_memory_model.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_memory_model-fa30641201b1ec14.rmeta: crates/bench/src/bin/table2_memory_model.rs Cargo.toml

crates/bench/src/bin/table2_memory_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
