/root/repo/target/debug/deps/ablation_pool-afa5989d49f200dc.d: crates/bench/src/bin/ablation_pool.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pool-afa5989d49f200dc.rmeta: crates/bench/src/bin/ablation_pool.rs Cargo.toml

crates/bench/src/bin/ablation_pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
