/root/repo/target/debug/deps/fig2_schedules-749e94a1b409b4ca.d: crates/bench/src/bin/fig2_schedules.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_schedules-749e94a1b409b4ca.rmeta: crates/bench/src/bin/fig2_schedules.rs Cargo.toml

crates/bench/src/bin/fig2_schedules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
