/root/repo/target/debug/deps/table2_memory_model-1b0e2aa52b99891e.d: crates/bench/src/bin/table2_memory_model.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_memory_model-1b0e2aa52b99891e.rmeta: crates/bench/src/bin/table2_memory_model.rs Cargo.toml

crates/bench/src/bin/table2_memory_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
