/root/repo/target/debug/deps/uot_bench-d63931d777bfaa4d.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libuot_bench-d63931d777bfaa4d.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libuot_bench-d63931d777bfaa4d.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
