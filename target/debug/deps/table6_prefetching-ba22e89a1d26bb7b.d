/root/repo/target/debug/deps/table6_prefetching-ba22e89a1d26bb7b.d: crates/bench/src/bin/table6_prefetching.rs

/root/repo/target/debug/deps/table6_prefetching-ba22e89a1d26bb7b: crates/bench/src/bin/table6_prefetching.rs

crates/bench/src/bin/table6_prefetching.rs:
