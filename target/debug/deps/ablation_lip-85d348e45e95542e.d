/root/repo/target/debug/deps/ablation_lip-85d348e45e95542e.d: crates/bench/src/bin/ablation_lip.rs

/root/repo/target/debug/deps/ablation_lip-85d348e45e95542e: crates/bench/src/bin/ablation_lip.rs

crates/bench/src/bin/ablation_lip.rs:
