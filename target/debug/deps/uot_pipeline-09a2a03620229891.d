/root/repo/target/debug/deps/uot_pipeline-09a2a03620229891.d: crates/bench/benches/uot_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libuot_pipeline-09a2a03620229891.rmeta: crates/bench/benches/uot_pipeline.rs Cargo.toml

crates/bench/benches/uot_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
