/root/repo/target/debug/deps/fig3_time_distribution-e37d5981771cbb00.d: crates/bench/src/bin/fig3_time_distribution.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_time_distribution-e37d5981771cbb00.rmeta: crates/bench/src/bin/fig3_time_distribution.rs Cargo.toml

crates/bench/src/bin/fig3_time_distribution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
