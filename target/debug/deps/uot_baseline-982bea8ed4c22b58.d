/root/repo/target/debug/deps/uot_baseline-982bea8ed4c22b58.d: crates/baseline/src/lib.rs crates/baseline/src/engine.rs

/root/repo/target/debug/deps/libuot_baseline-982bea8ed4c22b58.rlib: crates/baseline/src/lib.rs crates/baseline/src/engine.rs

/root/repo/target/debug/deps/libuot_baseline-982bea8ed4c22b58.rmeta: crates/baseline/src/lib.rs crates/baseline/src/engine.rs

crates/baseline/src/lib.rs:
crates/baseline/src/engine.rs:
