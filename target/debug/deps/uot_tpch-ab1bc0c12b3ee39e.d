/root/repo/target/debug/deps/uot_tpch-ab1bc0c12b3ee39e.d: crates/tpch/src/lib.rs crates/tpch/src/analysis.rs crates/tpch/src/chains.rs crates/tpch/src/dbgen.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/q01.rs crates/tpch/src/queries/q03.rs crates/tpch/src/queries/q04.rs crates/tpch/src/queries/q05.rs crates/tpch/src/queries/q06.rs crates/tpch/src/queries/q07.rs crates/tpch/src/queries/q08.rs crates/tpch/src/queries/q09.rs crates/tpch/src/queries/q10.rs crates/tpch/src/queries/q12.rs crates/tpch/src/queries/q14.rs crates/tpch/src/queries/q17.rs crates/tpch/src/queries/q18.rs crates/tpch/src/queries/q19.rs crates/tpch/src/queries/util.rs crates/tpch/src/schema.rs

/root/repo/target/debug/deps/libuot_tpch-ab1bc0c12b3ee39e.rlib: crates/tpch/src/lib.rs crates/tpch/src/analysis.rs crates/tpch/src/chains.rs crates/tpch/src/dbgen.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/q01.rs crates/tpch/src/queries/q03.rs crates/tpch/src/queries/q04.rs crates/tpch/src/queries/q05.rs crates/tpch/src/queries/q06.rs crates/tpch/src/queries/q07.rs crates/tpch/src/queries/q08.rs crates/tpch/src/queries/q09.rs crates/tpch/src/queries/q10.rs crates/tpch/src/queries/q12.rs crates/tpch/src/queries/q14.rs crates/tpch/src/queries/q17.rs crates/tpch/src/queries/q18.rs crates/tpch/src/queries/q19.rs crates/tpch/src/queries/util.rs crates/tpch/src/schema.rs

/root/repo/target/debug/deps/libuot_tpch-ab1bc0c12b3ee39e.rmeta: crates/tpch/src/lib.rs crates/tpch/src/analysis.rs crates/tpch/src/chains.rs crates/tpch/src/dbgen.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/q01.rs crates/tpch/src/queries/q03.rs crates/tpch/src/queries/q04.rs crates/tpch/src/queries/q05.rs crates/tpch/src/queries/q06.rs crates/tpch/src/queries/q07.rs crates/tpch/src/queries/q08.rs crates/tpch/src/queries/q09.rs crates/tpch/src/queries/q10.rs crates/tpch/src/queries/q12.rs crates/tpch/src/queries/q14.rs crates/tpch/src/queries/q17.rs crates/tpch/src/queries/q18.rs crates/tpch/src/queries/q19.rs crates/tpch/src/queries/util.rs crates/tpch/src/schema.rs

crates/tpch/src/lib.rs:
crates/tpch/src/analysis.rs:
crates/tpch/src/chains.rs:
crates/tpch/src/dbgen.rs:
crates/tpch/src/queries/mod.rs:
crates/tpch/src/queries/q01.rs:
crates/tpch/src/queries/q03.rs:
crates/tpch/src/queries/q04.rs:
crates/tpch/src/queries/q05.rs:
crates/tpch/src/queries/q06.rs:
crates/tpch/src/queries/q07.rs:
crates/tpch/src/queries/q08.rs:
crates/tpch/src/queries/q09.rs:
crates/tpch/src/queries/q10.rs:
crates/tpch/src/queries/q12.rs:
crates/tpch/src/queries/q14.rs:
crates/tpch/src/queries/q17.rs:
crates/tpch/src/queries/q18.rs:
crates/tpch/src/queries/q19.rs:
crates/tpch/src/queries/util.rs:
crates/tpch/src/schema.rs:
