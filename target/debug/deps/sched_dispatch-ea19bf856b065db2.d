/root/repo/target/debug/deps/sched_dispatch-ea19bf856b065db2.d: crates/bench/src/bin/sched_dispatch.rs Cargo.toml

/root/repo/target/debug/deps/libsched_dispatch-ea19bf856b065db2.rmeta: crates/bench/src/bin/sched_dispatch.rs Cargo.toml

crates/bench/src/bin/sched_dispatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
