/root/repo/target/debug/deps/ablation_pool-08465e7e38e53f16.d: crates/bench/src/bin/ablation_pool.rs

/root/repo/target/debug/deps/ablation_pool-08465e7e38e53f16: crates/bench/src/bin/ablation_pool.rs

crates/bench/src/bin/ablation_pool.rs:
