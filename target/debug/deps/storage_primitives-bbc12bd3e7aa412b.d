/root/repo/target/debug/deps/storage_primitives-bbc12bd3e7aa412b.d: crates/bench/benches/storage_primitives.rs Cargo.toml

/root/repo/target/debug/deps/libstorage_primitives-bbc12bd3e7aa412b.rmeta: crates/bench/benches/storage_primitives.rs Cargo.toml

crates/bench/benches/storage_primitives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
