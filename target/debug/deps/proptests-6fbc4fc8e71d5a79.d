/root/repo/target/debug/deps/proptests-6fbc4fc8e71d5a79.d: crates/storage/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6fbc4fc8e71d5a79: crates/storage/tests/proptests.rs

crates/storage/tests/proptests.rs:
