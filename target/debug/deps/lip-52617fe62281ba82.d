/root/repo/target/debug/deps/lip-52617fe62281ba82.d: crates/core/tests/lip.rs

/root/repo/target/debug/deps/lip-52617fe62281ba82: crates/core/tests/lip.rs

crates/core/tests/lip.rs:
