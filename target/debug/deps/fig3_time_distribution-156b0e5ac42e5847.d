/root/repo/target/debug/deps/fig3_time_distribution-156b0e5ac42e5847.d: crates/bench/src/bin/fig3_time_distribution.rs

/root/repo/target/debug/deps/fig3_time_distribution-156b0e5ac42e5847: crates/bench/src/bin/fig3_time_distribution.rs

crates/bench/src/bin/fig3_time_distribution.rs:
