/root/repo/target/debug/deps/fig8_row_store-cbdcc3b0bff263a7.d: crates/bench/src/bin/fig8_row_store.rs

/root/repo/target/debug/deps/fig8_row_store-cbdcc3b0bff263a7: crates/bench/src/bin/fig8_row_store.rs

crates/bench/src/bin/fig8_row_store.rs:
