/root/repo/target/debug/deps/fig7_query_times-06cc3799f5b968f2.d: crates/bench/src/bin/fig7_query_times.rs

/root/repo/target/debug/deps/fig7_query_times-06cc3799f5b968f2: crates/bench/src/bin/fig7_query_times.rs

crates/bench/src/bin/fig7_query_times.rs:
