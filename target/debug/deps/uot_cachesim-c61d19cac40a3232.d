/root/repo/target/debug/deps/uot_cachesim-c61d19cac40a3232.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libuot_cachesim-c61d19cac40a3232.rmeta: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/trace.rs Cargo.toml

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/prefetch.rs:
crates/cachesim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
