/root/repo/target/debug/deps/uot_model-244b635aa526d346.d: crates/model/src/lib.rs crates/model/src/cost.rs crates/model/src/memory.rs

/root/repo/target/debug/deps/uot_model-244b635aa526d346: crates/model/src/lib.rs crates/model/src/cost.rs crates/model/src/memory.rs

crates/model/src/lib.rs:
crates/model/src/cost.rs:
crates/model/src/memory.rs:
