/root/repo/target/debug/deps/fig10_scalability_uot-b3e8d2053325187f.d: crates/bench/src/bin/fig10_scalability_uot.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_scalability_uot-b3e8d2053325187f.rmeta: crates/bench/src/bin/fig10_scalability_uot.rs Cargo.toml

crates/bench/src/bin/fig10_scalability_uot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
