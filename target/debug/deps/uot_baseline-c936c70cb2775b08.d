/root/repo/target/debug/deps/uot_baseline-c936c70cb2775b08.d: crates/baseline/src/lib.rs crates/baseline/src/engine.rs

/root/repo/target/debug/deps/uot_baseline-c936c70cb2775b08: crates/baseline/src/lib.rs crates/baseline/src/engine.rs

crates/baseline/src/lib.rs:
crates/baseline/src/engine.rs:
