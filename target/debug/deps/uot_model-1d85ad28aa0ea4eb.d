/root/repo/target/debug/deps/uot_model-1d85ad28aa0ea4eb.d: crates/model/src/lib.rs crates/model/src/cost.rs crates/model/src/memory.rs

/root/repo/target/debug/deps/libuot_model-1d85ad28aa0ea4eb.rlib: crates/model/src/lib.rs crates/model/src/cost.rs crates/model/src/memory.rs

/root/repo/target/debug/deps/libuot_model-1d85ad28aa0ea4eb.rmeta: crates/model/src/lib.rs crates/model/src/cost.rs crates/model/src/memory.rs

crates/model/src/lib.rs:
crates/model/src/cost.rs:
crates/model/src/memory.rs:
