/root/repo/target/debug/deps/table2_memory_model-b66e0967776d116d.d: crates/bench/src/bin/table2_memory_model.rs

/root/repo/target/debug/deps/table2_memory_model-b66e0967776d116d: crates/bench/src/bin/table2_memory_model.rs

crates/bench/src/bin/table2_memory_model.rs:
