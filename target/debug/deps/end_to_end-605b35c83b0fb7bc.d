/root/repo/target/debug/deps/end_to_end-605b35c83b0fb7bc.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-605b35c83b0fb7bc: tests/end_to_end.rs

tests/end_to_end.rs:
