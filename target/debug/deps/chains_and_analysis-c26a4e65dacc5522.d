/root/repo/target/debug/deps/chains_and_analysis-c26a4e65dacc5522.d: crates/tpch/tests/chains_and_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libchains_and_analysis-c26a4e65dacc5522.rmeta: crates/tpch/tests/chains_and_analysis.rs Cargo.toml

crates/tpch/tests/chains_and_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
