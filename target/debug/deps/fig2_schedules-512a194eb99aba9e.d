/root/repo/target/debug/deps/fig2_schedules-512a194eb99aba9e.d: crates/bench/src/bin/fig2_schedules.rs

/root/repo/target/debug/deps/fig2_schedules-512a194eb99aba9e: crates/bench/src/bin/fig2_schedules.rs

crates/bench/src/bin/fig2_schedules.rs:
