/root/repo/target/debug/deps/ablation_uot_sweep-074eb3f3e6427707.d: crates/bench/src/bin/ablation_uot_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libablation_uot_sweep-074eb3f3e6427707.rmeta: crates/bench/src/bin/ablation_uot_sweep.rs Cargo.toml

crates/bench/src/bin/ablation_uot_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
