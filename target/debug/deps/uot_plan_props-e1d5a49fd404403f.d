/root/repo/target/debug/deps/uot_plan_props-e1d5a49fd404403f.d: crates/core/tests/uot_plan_props.rs Cargo.toml

/root/repo/target/debug/deps/libuot_plan_props-e1d5a49fd404403f.rmeta: crates/core/tests/uot_plan_props.rs Cargo.toml

crates/core/tests/uot_plan_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
