/root/repo/target/debug/deps/fig10_scalability_uot-d06da504030ca8d2.d: crates/bench/src/bin/fig10_scalability_uot.rs

/root/repo/target/debug/deps/fig10_scalability_uot-d06da504030ca8d2: crates/bench/src/bin/fig10_scalability_uot.rs

crates/bench/src/bin/fig10_scalability_uot.rs:
