/root/repo/target/debug/deps/fig9_scalability-329a151259d27830.d: crates/bench/src/bin/fig9_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_scalability-329a151259d27830.rmeta: crates/bench/src/bin/fig9_scalability.rs Cargo.toml

crates/bench/src/bin/fig9_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
