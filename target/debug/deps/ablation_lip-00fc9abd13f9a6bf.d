/root/repo/target/debug/deps/ablation_lip-00fc9abd13f9a6bf.d: crates/bench/src/bin/ablation_lip.rs Cargo.toml

/root/repo/target/debug/deps/libablation_lip-00fc9abd13f9a6bf.rmeta: crates/bench/src/bin/ablation_lip.rs Cargo.toml

crates/bench/src/bin/ablation_lip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
