/root/repo/target/debug/deps/fig9_scalability-b4093e566683853b.d: crates/bench/src/bin/fig9_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_scalability-b4093e566683853b.rmeta: crates/bench/src/bin/fig9_scalability.rs Cargo.toml

crates/bench/src/bin/fig9_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
