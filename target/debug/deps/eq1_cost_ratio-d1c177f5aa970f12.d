/root/repo/target/debug/deps/eq1_cost_ratio-d1c177f5aa970f12.d: crates/bench/src/bin/eq1_cost_ratio.rs

/root/repo/target/debug/deps/eq1_cost_ratio-d1c177f5aa970f12: crates/bench/src/bin/eq1_cost_ratio.rs

crates/bench/src/bin/eq1_cost_ratio.rs:
