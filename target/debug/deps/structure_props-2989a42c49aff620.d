/root/repo/target/debug/deps/structure_props-2989a42c49aff620.d: crates/core/tests/structure_props.rs

/root/repo/target/debug/deps/structure_props-2989a42c49aff620: crates/core/tests/structure_props.rs

crates/core/tests/structure_props.rs:
