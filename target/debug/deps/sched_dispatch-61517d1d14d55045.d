/root/repo/target/debug/deps/sched_dispatch-61517d1d14d55045.d: crates/bench/src/bin/sched_dispatch.rs

/root/repo/target/debug/deps/sched_dispatch-61517d1d14d55045: crates/bench/src/bin/sched_dispatch.rs

crates/bench/src/bin/sched_dispatch.rs:
