/root/repo/target/debug/deps/uot_invariance-10265de06687ba04.d: crates/core/tests/uot_invariance.rs Cargo.toml

/root/repo/target/debug/deps/libuot_invariance-10265de06687ba04.rmeta: crates/core/tests/uot_invariance.rs Cargo.toml

crates/core/tests/uot_invariance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
