/root/repo/target/debug/deps/ablation_lip-6dfd3103f7a2de97.d: crates/bench/src/bin/ablation_lip.rs Cargo.toml

/root/repo/target/debug/deps/libablation_lip-6dfd3103f7a2de97.rmeta: crates/bench/src/bin/ablation_lip.rs Cargo.toml

crates/bench/src/bin/ablation_lip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
