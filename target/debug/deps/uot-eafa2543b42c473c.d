/root/repo/target/debug/deps/uot-eafa2543b42c473c.d: src/lib.rs

/root/repo/target/debug/deps/libuot-eafa2543b42c473c.rlib: src/lib.rs

/root/repo/target/debug/deps/libuot-eafa2543b42c473c.rmeta: src/lib.rs

src/lib.rs:
