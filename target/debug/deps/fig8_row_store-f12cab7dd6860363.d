/root/repo/target/debug/deps/fig8_row_store-f12cab7dd6860363.d: crates/bench/src/bin/fig8_row_store.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_row_store-f12cab7dd6860363.rmeta: crates/bench/src/bin/fig8_row_store.rs Cargo.toml

crates/bench/src/bin/fig8_row_store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
