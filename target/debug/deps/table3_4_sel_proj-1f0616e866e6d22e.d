/root/repo/target/debug/deps/table3_4_sel_proj-1f0616e866e6d22e.d: crates/bench/src/bin/table3_4_sel_proj.rs

/root/repo/target/debug/deps/table3_4_sel_proj-1f0616e866e6d22e: crates/bench/src/bin/table3_4_sel_proj.rs

crates/bench/src/bin/table3_4_sel_proj.rs:
