/root/repo/target/debug/deps/proptests-392e7795b5c26fac.d: crates/expr/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-392e7795b5c26fac.rmeta: crates/expr/tests/proptests.rs Cargo.toml

crates/expr/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
