/root/repo/target/debug/deps/table3_4_sel_proj-f7ab16655acedbba.d: crates/bench/src/bin/table3_4_sel_proj.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_4_sel_proj-f7ab16655acedbba.rmeta: crates/bench/src/bin/table3_4_sel_proj.rs Cargo.toml

crates/bench/src/bin/table3_4_sel_proj.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
