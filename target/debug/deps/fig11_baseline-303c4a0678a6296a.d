/root/repo/target/debug/deps/fig11_baseline-303c4a0678a6296a.d: crates/bench/src/bin/fig11_baseline.rs

/root/repo/target/debug/deps/fig11_baseline-303c4a0678a6296a: crates/bench/src/bin/fig11_baseline.rs

crates/bench/src/bin/fig11_baseline.rs:
