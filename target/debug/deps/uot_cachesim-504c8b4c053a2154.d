/root/repo/target/debug/deps/uot_cachesim-504c8b4c053a2154.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/trace.rs

/root/repo/target/debug/deps/libuot_cachesim-504c8b4c053a2154.rlib: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/trace.rs

/root/repo/target/debug/deps/libuot_cachesim-504c8b4c053a2154.rmeta: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/trace.rs

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/prefetch.rs:
crates/cachesim/src/trace.rs:
