/root/repo/target/debug/deps/operator_primitives-5a933f72040488cd.d: crates/bench/benches/operator_primitives.rs Cargo.toml

/root/repo/target/debug/deps/liboperator_primitives-5a933f72040488cd.rmeta: crates/bench/benches/operator_primitives.rs Cargo.toml

crates/bench/benches/operator_primitives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
