/root/repo/target/debug/deps/probe_batch_props-14d7291643ffc768.d: crates/core/tests/probe_batch_props.rs Cargo.toml

/root/repo/target/debug/deps/libprobe_batch_props-14d7291643ffc768.rmeta: crates/core/tests/probe_batch_props.rs Cargo.toml

crates/core/tests/probe_batch_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
