/root/repo/target/debug/deps/platform_info-48bacdfbbfa982a4.d: crates/bench/src/bin/platform_info.rs

/root/repo/target/debug/deps/platform_info-48bacdfbbfa982a4: crates/bench/src/bin/platform_info.rs

crates/bench/src/bin/platform_info.rs:
