/root/repo/target/debug/deps/fig11_baseline-3efebf22ee7b0d0d.d: crates/bench/src/bin/fig11_baseline.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_baseline-3efebf22ee7b0d0d.rmeta: crates/bench/src/bin/fig11_baseline.rs Cargo.toml

crates/bench/src/bin/fig11_baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
