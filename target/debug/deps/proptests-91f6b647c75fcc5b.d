/root/repo/target/debug/deps/proptests-91f6b647c75fcc5b.d: crates/expr/tests/proptests.rs

/root/repo/target/debug/deps/proptests-91f6b647c75fcc5b: crates/expr/tests/proptests.rs

crates/expr/tests/proptests.rs:
