/root/repo/target/debug/deps/uot_expr-d1eed0d3cedb3f94.d: crates/expr/src/lib.rs crates/expr/src/aggregate.rs crates/expr/src/error.rs crates/expr/src/predicate.rs crates/expr/src/scalar.rs Cargo.toml

/root/repo/target/debug/deps/libuot_expr-d1eed0d3cedb3f94.rmeta: crates/expr/src/lib.rs crates/expr/src/aggregate.rs crates/expr/src/error.rs crates/expr/src/predicate.rs crates/expr/src/scalar.rs Cargo.toml

crates/expr/src/lib.rs:
crates/expr/src/aggregate.rs:
crates/expr/src/error.rs:
crates/expr/src/predicate.rs:
crates/expr/src/scalar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
