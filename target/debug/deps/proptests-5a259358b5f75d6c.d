/root/repo/target/debug/deps/proptests-5a259358b5f75d6c.d: crates/storage/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-5a259358b5f75d6c.rmeta: crates/storage/tests/proptests.rs Cargo.toml

crates/storage/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
