/root/repo/target/debug/deps/uot_bench-c360460c0def61cc.d: crates/bench/src/lib.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libuot_bench-c360460c0def61cc.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
