/root/repo/target/debug/deps/uot_baseline-ac292a49bcdbc55b.d: crates/baseline/src/lib.rs crates/baseline/src/engine.rs Cargo.toml

/root/repo/target/debug/deps/libuot_baseline-ac292a49bcdbc55b.rmeta: crates/baseline/src/lib.rs crates/baseline/src/engine.rs Cargo.toml

crates/baseline/src/lib.rs:
crates/baseline/src/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
