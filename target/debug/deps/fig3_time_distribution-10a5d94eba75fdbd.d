/root/repo/target/debug/deps/fig3_time_distribution-10a5d94eba75fdbd.d: crates/bench/src/bin/fig3_time_distribution.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_time_distribution-10a5d94eba75fdbd.rmeta: crates/bench/src/bin/fig3_time_distribution.rs Cargo.toml

crates/bench/src/bin/fig3_time_distribution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
