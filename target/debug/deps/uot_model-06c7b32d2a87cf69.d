/root/repo/target/debug/deps/uot_model-06c7b32d2a87cf69.d: crates/model/src/lib.rs crates/model/src/cost.rs crates/model/src/memory.rs Cargo.toml

/root/repo/target/debug/deps/libuot_model-06c7b32d2a87cf69.rmeta: crates/model/src/lib.rs crates/model/src/cost.rs crates/model/src/memory.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/cost.rs:
crates/model/src/memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
