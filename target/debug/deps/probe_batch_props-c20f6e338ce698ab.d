/root/repo/target/debug/deps/probe_batch_props-c20f6e338ce698ab.d: crates/core/tests/probe_batch_props.rs

/root/repo/target/debug/deps/probe_batch_props-c20f6e338ce698ab: crates/core/tests/probe_batch_props.rs

crates/core/tests/probe_batch_props.rs:
